//! Crash-recovery of the disk backend under fault injection: failed
//! fsyncs keep the write-back cache authoritative and retry cleanly;
//! torn writes are detected by the segment checksums and refuse the
//! fast recovery path (forcing the caller's safe fallback).

use stellar_buckets::BucketList;
use stellar_crypto::sign::PublicKey;
use stellar_ledger::entry::{AccountEntry, AccountId};
use stellar_ledger::header::LedgerHeader;
use stellar_ledger::LedgerStore;
use stellar_store::{open, recover_node, BackendKind, DiskConfig};

fn acct(n: u64) -> AccountId {
    AccountId(PublicKey(n))
}

fn small_cfg() -> DiskConfig {
    DiskConfig {
        cache_capacity: 16,
        segment_target_bytes: 512,
        compact_dead_ratio_pct: 50,
    }
}

/// Commits one close putting `accounts` with `balance`, returns flush
/// success.
fn close(store: &mut LedgerStore, seq: u64, accounts: std::ops::Range<u64>, balance: i64) -> bool {
    let mut delta = store.begin();
    for a in accounts {
        delta.put_account(AccountEntry::new(acct(a), balance));
    }
    let changes = delta.into_changes();
    store.commit(changes);
    store.flush(seq)
}

#[test]
fn failed_fsync_retries_and_loses_nothing() {
    let mut store = open(&LedgerStore::new(), BackendKind::Disk, &small_cfg());
    assert!(close(&mut store, 1, 0..10, 100));

    // Next two flushes fail at the device.
    store.disk().unwrap().borrow_mut().fail_next_fsyncs(2);
    assert!(!close(&mut store, 2, 0..10, 200));
    assert!(!close(&mut store, 3, 0..10, 300));
    // Reads still see the latest writes (served from the dirty cache).
    assert_eq!(store.account(acct(3)).unwrap().balance, 300);
    let stats = store.io_stats();
    assert_eq!(stats.failed_fsyncs, 2);

    // The retry drains everything.
    assert!(close(&mut store, 4, 0..10, 400));
    assert_eq!(store.account(acct(3)).unwrap().balance, 400);

    // Crash + recover: durable state is the last synced flush.
    let disk = store.disk().unwrap();
    disk.borrow_mut().crash();
    let (back, seq) =
        stellar_store::DiskBackend::recover(disk, small_cfg()).expect("manifest intact");
    assert_eq!(seq, 4);
    let store2 = LedgerStore::with_backend(Box::new(back));
    for a in 0..10 {
        assert_eq!(store2.account(acct(a)).unwrap().balance, 400);
    }
    assert_eq!(store2.account_count(), 10);
}

#[test]
fn crash_between_failed_syncs_reverts_to_last_durable_flush() {
    let mut store = open(&LedgerStore::new(), BackendKind::Disk, &small_cfg());
    assert!(close(&mut store, 1, 0..8, 111));

    store.disk().unwrap().borrow_mut().fail_next_fsyncs(1);
    assert!(!close(&mut store, 2, 0..8, 222));

    // Crash with the seq-2 batch still staged: it never becomes durable.
    let disk = store.disk().unwrap();
    disk.borrow_mut().crash();
    let (back, seq) =
        stellar_store::DiskBackend::recover(disk, small_cfg()).expect("seq-1 state intact");
    assert_eq!(seq, 1);
    let store2 = LedgerStore::with_backend(Box::new(back));
    assert_eq!(store2.account(acct(0)).unwrap().balance, 111);
}

#[test]
fn torn_write_is_detected_and_refuses_fast_recovery() {
    let mut store = open(&LedgerStore::new(), BackendKind::Disk, &small_cfg());
    assert!(close(&mut store, 1, 0..8, 50));

    // Stage a batch, then crash mid-write: the first staged record lands
    // torn (checksum cannot verify).
    {
        let mut delta = store.begin();
        for a in 0..8u64 {
            delta.put_account(AccountEntry::new(acct(a), 99));
        }
        let changes = delta.into_changes();
        store.commit(changes);
    }
    let disk = store.disk().unwrap();
    // Stage without syncing by injecting a failing fsync through flush.
    disk.borrow_mut().fail_next_fsyncs(1);
    assert!(!store.flush(2));
    disk.borrow_mut().tear_next_crash();
    disk.borrow_mut().crash();

    // The torn segment is unreadable; the manifest still points at the
    // seq-1 world, whose segments are intact, so recovery lands there —
    // unless the torn record was the manifest itself, in which case
    // recovery refuses entirely. Either way: no corrupt state.
    match stellar_store::DiskBackend::recover(disk.clone(), small_cfg()) {
        Some((back, seq)) => {
            assert_eq!(seq, 1);
            let store2 = LedgerStore::with_backend(Box::new(back));
            assert_eq!(store2.account(acct(5)).unwrap().balance, 50);
        }
        None => { /* detected corruption: safe fallback */ }
    }
}

#[test]
fn recover_node_cross_checks_store_buckets_and_header() {
    // Build a coupled store + bucket list on one disk, the way a herder
    // runs them: bucket blobs staged first, one store flush syncs both.
    let mut store = open(&LedgerStore::new(), BackendKind::Disk, &small_cfg());
    let disk = store.disk().unwrap();
    let mut buckets = BucketList::seed(store.all_entries());
    buckets.attach_disk(disk.clone(), 0);

    let mut header = LedgerHeader::genesis(stellar_crypto::Hash256::ZERO);
    for seq in 1..=5u64 {
        let mut delta = store.begin();
        for a in 0..6u64 {
            delta.put_account(AccountEntry::new(acct(a), (seq * 10 + a) as i64));
        }
        let changes = delta.into_changes();
        let feed = store.commit(changes);
        buckets.add_batch(seq, &feed);
        buckets.persist_levels(seq);
        assert!(store.flush(seq));
        buckets.note_synced();
        header.ledger_seq = seq;
        header.snapshot_hash = buckets.hash();
    }
    let hashes = buckets.level_hashes();

    disk.borrow_mut().crash();
    let (store2, mut buckets2) =
        recover_node(disk.clone(), &header, &hashes, &small_cfg()).expect("coherent disk");
    assert_eq!(buckets2.hash(), header.snapshot_hash);
    assert_eq!(store2.account(acct(2)).unwrap().balance, 52);
    assert_eq!(store2.account_count(), 6);

    // A header one ledger ahead (data disk lost the last close) refuses.
    let mut ahead = header.clone();
    ahead.ledger_seq += 1;
    assert!(recover_node(disk.clone(), &ahead, &hashes, &small_cfg()).is_none());

    // Divergent bucket expectations refuse.
    let mut wrong = hashes.clone();
    wrong[0] = stellar_crypto::Hash256::ZERO;
    assert!(recover_node(disk, &header, &wrong, &small_cfg()).is_none());
}

//! MemBackend ≡ DiskBackend: the same operation sequence must yield
//! identical reads, identical iteration, and — the bar that matters for
//! consensus — identical bucket hashes. The disk store runs with a tiny
//! cache and tiny segments so every sequence exercises eviction, segment
//! rollover, and compaction.

use proptest::prelude::*;
use stellar_buckets::BucketList;
use stellar_crypto::sign::PublicKey;
use stellar_ledger::amount::Price;
use stellar_ledger::entry::{AccountEntry, AccountId, DataEntry, OfferEntry, TrustLineEntry};
use stellar_ledger::{Asset, LedgerStore};
use stellar_store::{open, BackendKind, DiskConfig};

fn acct(n: u64) -> AccountId {
    AccountId(PublicKey(n))
}

fn asset(n: u64) -> Asset {
    match n % 3 {
        0 => Asset::issued(acct(1000), "USD"),
        1 => Asset::issued(acct(1001), "EUR"),
        _ => Asset::issued(acct(1002), "MXN"),
    }
}

/// One abstract store operation over a small key space.
#[derive(Clone, Debug)]
enum Op {
    PutAccount(u64, i64),
    DeleteAccount(u64),
    PutTrustline(u64, u64, i64),
    DeleteTrustline(u64, u64),
    PutOffer(u64, u64, u64, i64, u32, u32),
    DeleteNthOffer(u64),
    PutData(u64, u64, u8),
    DeleteData(u64, u64),
    Commit,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12, 1i64..1_000_000).prop_map(|(a, b)| Op::PutAccount(a, b)),
        (0u64..12).prop_map(Op::DeleteAccount),
        (0u64..12, 0u64..3, 0i64..1000).prop_map(|(a, s, b)| Op::PutTrustline(a, s, b)),
        (0u64..12, 0u64..3).prop_map(|(a, s)| Op::DeleteTrustline(a, s)),
        (0u64..12, 0u64..3, 0u64..3, 1i64..500, 1u32..8, 1u32..8)
            .prop_map(|(a, s, b, amt, n, d)| Op::PutOffer(a, s, b, amt, n, d)),
        (0u64..64).prop_map(Op::DeleteNthOffer),
        (0u64..12, 0u64..4, any::<u8>()).prop_map(|(a, n, v)| Op::PutData(a, n, v)),
        (0u64..12, 0u64..4).prop_map(|(a, n)| Op::DeleteData(a, n)),
        Just(Op::Commit),
    ]
}

/// Replays `ops` against a store through the delta/commit path, flushing
/// after every commit. Returns the ids of offers created, in order.
fn replay(store: &mut LedgerStore, ops: &[Op]) -> Vec<u64> {
    let mut offer_ids = Vec::new();
    let mut delta = store.begin();
    let mut seq = 0u64;
    for op in ops {
        match op {
            Op::PutAccount(a, bal) => delta.put_account(AccountEntry::new(acct(*a), *bal)),
            Op::DeleteAccount(a) => delta.delete_account(acct(*a)),
            Op::PutTrustline(a, s, bal) => delta.put_trustline(TrustLineEntry {
                account: acct(*a),
                asset: asset(*s),
                balance: *bal,
                limit: i64::MAX / 2,
                authorized: true,
            }),
            Op::DeleteTrustline(a, s) => delta.delete_trustline(acct(*a), &asset(*s)),
            Op::PutOffer(a, s, b, amt, n, d) => {
                if s % 3 == b % 3 {
                    continue; // no self-pairs
                }
                let id = delta.allocate_offer_id();
                offer_ids.push(id);
                delta.put_offer(OfferEntry {
                    id,
                    account: acct(*a),
                    selling: asset(*s),
                    buying: asset(*b),
                    amount: *amt,
                    price: Price { n: *n, d: *d },
                    passive: false,
                });
            }
            Op::DeleteNthOffer(n) => {
                if let Some(id) = offer_ids.get(*n as usize % offer_ids.len().max(1)) {
                    delta.delete_offer(*id);
                }
            }
            Op::PutData(a, n, v) => delta.put_data(DataEntry {
                account: acct(*a),
                name: format!("k{n}"),
                value: vec![*v; 4],
            }),
            Op::DeleteData(a, n) => delta.delete_data(acct(*a), &format!("k{n}")),
            Op::Commit => {
                let changes = delta.into_changes();
                store.commit(changes);
                seq += 1;
                assert!(store.flush(seq), "no fault injection in this test");
                delta = store.begin();
            }
        }
    }
    let changes = delta.into_changes();
    store.commit(changes);
    assert!(store.flush(seq + 1));
    offer_ids
}

fn tiny_disk_cfg() -> DiskConfig {
    DiskConfig {
        cache_capacity: 8,
        segment_target_bytes: 256,
        compact_dead_ratio_pct: 50,
    }
}

proptest! {
    #[test]
    fn mem_and_disk_backends_are_equivalent(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut mem = LedgerStore::new();
        let mut disk = open(&LedgerStore::new(), BackendKind::Disk, &tiny_disk_cfg());
        prop_assert_eq!(mem.backend_name(), "mem");
        prop_assert_eq!(disk.backend_name(), "disk");

        let ids_mem = replay(&mut mem, &ops);
        let ids_disk = replay(&mut disk, &ops);
        prop_assert_eq!(&ids_mem, &ids_disk);

        // Point reads across the whole key space.
        for a in 0..12u64 {
            prop_assert_eq!(mem.account(acct(a)), disk.account(acct(a)));
            prop_assert_eq!(mem.trustlines_of(acct(a)), disk.trustlines_of(acct(a)));
            for s in 0..3u64 {
                prop_assert_eq!(
                    mem.trustline(acct(a), &asset(s)),
                    disk.trustline(acct(a), &asset(s))
                );
            }
            for n in 0..4u64 {
                prop_assert_eq!(
                    mem.data(acct(a), &format!("k{n}")),
                    disk.data(acct(a), &format!("k{n}"))
                );
            }
        }
        for id in &ids_mem {
            prop_assert_eq!(mem.offer(*id), disk.offer(*id));
        }
        for s in 0..3u64 {
            for b in 0..3u64 {
                prop_assert_eq!(
                    mem.offers_for_pair(&asset(s), &asset(b)),
                    disk.offers_for_pair(&asset(s), &asset(b))
                );
            }
        }
        prop_assert_eq!(mem.account_count(), disk.account_count());
        prop_assert_eq!(mem.offer_count(), disk.offer_count());
        prop_assert_eq!(mem.next_offer_id(), disk.next_offer_id());

        // Iteration order and contents must match exactly: bucket
        // seeding hashes whatever this yields.
        let mem_entries: Vec<_> = mem.all_entries().collect();
        let disk_entries: Vec<_> = disk.all_entries().collect();
        prop_assert_eq!(&mem_entries, &disk_entries);

        // And therefore the snapshot hash — what consensus signs.
        prop_assert_eq!(
            BucketList::seed(mem_entries).hash(),
            BucketList::seed(disk_entries).hash()
        );
    }
}

#[test]
fn disk_backend_compacts_and_survives_reads() {
    // Overwrite a small key set many times: dead bytes accumulate and
    // compaction must fire without disturbing reads.
    let mut disk = open(&LedgerStore::new(), BackendKind::Disk, &tiny_disk_cfg());
    for round in 0..50u64 {
        let mut delta = disk.begin();
        for a in 0..6u64 {
            delta.put_account(AccountEntry::new(acct(a), (round * 10 + a) as i64));
        }
        let changes = delta.into_changes();
        disk.commit(changes);
        assert!(disk.flush(round + 1));
    }
    let stats = disk.io_stats();
    assert!(
        stats.compactions > 0,
        "dead-byte churn must trigger compaction"
    );
    for a in 0..6u64 {
        assert_eq!(disk.account(acct(a)).unwrap().balance, (490 + a) as i64);
    }
    assert_eq!(disk.account_count(), 6);
    // Compaction keeps disk usage proportional to live data, not churn.
    assert!(stats.segments < 8, "stale segments not retired: {stats:?}");
}

//! The log-structured disk backend.
//!
//! Layout on the data disk (one [`DurableStore`]):
//!
//! * `seg/<n>` — immutable segment files: a concatenation of records
//!   `tag(u8) ‖ key ‖ [entry]` where tag 0 is a live entry and tag 1 a
//!   tombstone. Segment ids are monotonic and never reused, so scanning
//!   segments in id order replays history oldest-first.
//! * `store/meta` — the manifest: ledger sequence of the last durable
//!   flush, the offer-id allocator, the next segment id, and the list of
//!   live segments. A flush stages its new segments *and* the manifest
//!   and syncs once, so the manifest never references a segment the same
//!   sync did not land (the simulated disk drains staged writes in order
//!   and atomically per sync).
//!
//! In RAM the backend keeps a sparse index `key → (segment, offset,
//! len)` — a few dozen bytes per entry instead of the whole entry — plus
//! a bounded **write-back cache**: per-close deltas stay dirty (pinned)
//! until `flush`, clean read results are LRU-evicted beyond the cap.
//! This is the Sui-style writeback-cache arrangement: reads overlay
//! dirty state over committed segments, and the commit path drains the
//! dirty set in one batch.
//!
//! Failed fsyncs leave everything staged: the dirty cache, the index,
//! and the manifest are untouched, and the next flush retries with fresh
//! segment ids (staging removals for the ids the failed attempt may
//! still land — the in-order drain makes insert-then-remove correct).
//! Compaction rewrites live records into fresh segments when the dead
//! ratio passes the configured threshold and retires the old ones.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use stellar_crypto::codec::{Decode, Encode};
use stellar_ledger::backend::{
    approx_entry_bytes, book_apply, book_range, BookCursor, BookIndex, LedgerBackend, StoreIoStats,
};
use stellar_ledger::entry::{
    AccountEntry, AccountId, DataEntry, LedgerEntry, LedgerKey, OfferEntry, TrustLineEntry,
};
use stellar_ledger::Asset;
use stellar_persist::DurableStore;

/// Disk key of the store manifest.
const META_KEY: &str = "store/meta";

/// Version stamp of the manifest format.
const STORE_META_VERSION: u32 = 1;

/// Decoded segment payloads kept around for locality of reads.
const SEG_CACHE_CAP: usize = 8;

/// Approximate RAM cost of one sparse-index entry (key + location +
/// node overhead).
const INDEX_ENTRY_BYTES: u64 = 72;

fn seg_key(id: u64) -> String {
    format!("seg/{id}")
}

/// Tuning for the disk backend.
#[derive(Clone, Debug)]
pub struct DiskConfig {
    /// Maximum entries resident in the write-back cache. Dirty entries
    /// are pinned regardless (bounded by one close's delta); clean ones
    /// are LRU-evicted beyond this.
    pub cache_capacity: usize,
    /// Target payload size at which a segment under construction is
    /// sealed.
    pub segment_target_bytes: usize,
    /// Compact when dead bytes exceed this percentage of total segment
    /// bytes.
    pub compact_dead_ratio_pct: u8,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            cache_capacity: 65_536,
            segment_target_bytes: 1 << 20,
            compact_dead_ratio_pct: 50,
        }
    }
}

/// Where an entry's bytes live: segment id, offset and length of the
/// entry encoding within the segment payload.
#[derive(Clone, Copy, Debug)]
struct EntryLoc {
    seg: u64,
    off: u32,
    len: u32,
}

/// Live/dead byte accounting per segment, for the compaction trigger.
#[derive(Clone, Copy, Debug, Default)]
struct SegInfo {
    total: u64,
    dead: u64,
}

/// A cached entry. `entry == None` means "deleted" (only ever dirty —
/// negative read results are not cached).
#[derive(Clone, Debug)]
struct CacheSlot {
    entry: Option<LedgerEntry>,
    dirty: bool,
    /// LRU generation; meaningful only for clean slots (dirty slots are
    /// pinned and absent from the LRU).
    gen: u64,
}

/// Interior-mutable half of the backend: reads go through `&self` but
/// populate the cache and bump counters.
#[derive(Clone, Debug, Default)]
struct CacheState {
    entries: BTreeMap<LedgerKey, CacheSlot>,
    /// Clean slots by LRU generation (oldest first).
    lru: BTreeMap<u64, LedgerKey>,
    gen: u64,
    /// Recently read segment payloads, by segment id.
    seg_cache: BTreeMap<u64, (u64, Rc<Vec<u8>>)>,
    seg_gen: u64,
    /// Approximate bytes held by cached entries.
    resident: u64,
    stats: StoreIoStats,
}

/// The log-structured, write-back-cached ledger backend.
#[derive(Debug)]
pub struct DiskBackend {
    disk: Rc<RefCell<DurableStore>>,
    cfg: DiskConfig,
    /// Sparse index over durable segments.
    index: BTreeMap<LedgerKey, EntryLoc>,
    segs: BTreeMap<u64, SegInfo>,
    /// The in-RAM order-book side index (small: one cursor per offer).
    book: BookIndex,
    /// Live counts: accounts, trustlines, offers, data.
    counts: [usize; 4],
    next_offer_id: u64,
    next_seg_id: u64,
    /// Segment ids a failed or superseded sync may have left (or leave)
    /// on disk unreferenced; their removal is staged at the start of the
    /// next flush.
    orphans: Vec<u64>,
    state: RefCell<CacheState>,
}

impl Clone for DiskBackend {
    fn clone(&self) -> Self {
        // Deep-copies the disk: a cloned backend gets an independent
        // simulated device (sim restarts re-share disks explicitly).
        DiskBackend {
            disk: Rc::new(RefCell::new(self.disk.borrow().clone())),
            cfg: self.cfg.clone(),
            index: self.index.clone(),
            segs: self.segs.clone(),
            book: self.book.clone(),
            counts: self.counts,
            next_offer_id: self.next_offer_id,
            next_seg_id: self.next_seg_id,
            orphans: self.orphans.clone(),
            state: RefCell::new(self.state.borrow().clone()),
        }
    }
}

fn kind_idx(key: &LedgerKey) -> usize {
    match key {
        LedgerKey::Account(_) => 0,
        LedgerKey::TrustLine(..) => 1,
        LedgerKey::Offer(_) => 2,
        LedgerKey::Data(..) => 3,
    }
}

fn key_enc_len(key: &LedgerKey) -> u64 {
    let mut scratch = Vec::new();
    key.encode(&mut scratch);
    scratch.len() as u64
}

/// A record sealed into a new segment during flush/compaction:
/// `live = Some((off, len))` of the entry encoding, `None` = tombstone.
struct NewRec {
    key: LedgerKey,
    live: Option<(u32, u32)>,
}

impl DiskBackend {
    /// A fresh backend on a fresh simulated disk.
    pub fn new(cfg: DiskConfig) -> DiskBackend {
        DiskBackend::with_disk(Rc::new(RefCell::new(DurableStore::new())), cfg)
    }

    /// A fresh backend around an existing disk (recovery, tests).
    pub fn with_disk(disk: Rc<RefCell<DurableStore>>, cfg: DiskConfig) -> DiskBackend {
        DiskBackend {
            disk,
            cfg,
            index: BTreeMap::new(),
            segs: BTreeMap::new(),
            book: BookIndex::new(),
            counts: [0; 4],
            next_offer_id: 1,
            next_seg_id: 0,
            orphans: Vec::new(),
            state: RefCell::new(CacheState::default()),
        }
    }

    /// Reads a segment payload through the small segment cache.
    fn seg_payload(&self, st: &mut CacheState, seg: u64) -> Rc<Vec<u8>> {
        if let Some((_, payload)) = st.seg_cache.get(&seg) {
            return payload.clone();
        }
        let payload = Rc::new(
            self.disk
                .borrow()
                .read(&seg_key(seg))
                .expect("indexed segment must be durable and intact"),
        );
        st.stats.bytes_read += payload.len() as u64;
        st.seg_gen += 1;
        st.seg_cache.insert(seg, (st.seg_gen, payload.clone()));
        while st.seg_cache.len() > SEG_CACHE_CAP {
            let oldest = st
                .seg_cache
                .iter()
                .min_by_key(|(_, (g, _))| *g)
                .map(|(id, _)| *id)
                .expect("nonempty");
            st.seg_cache.remove(&oldest);
        }
        payload
    }

    /// Decodes the entry at `loc` (no cache interaction beyond the
    /// segment cache).
    fn read_at(&self, st: &mut CacheState, loc: EntryLoc) -> LedgerEntry {
        let payload = self.seg_payload(st, loc.seg);
        let mut slice = &payload[loc.off as usize..(loc.off + loc.len) as usize];
        LedgerEntry::decode(&mut slice).expect("durable record decodes")
    }

    /// Moves a clean slot to the LRU front.
    fn touch(st: &mut CacheState, key: &LedgerKey) {
        let Some(slot) = st.entries.get(key) else {
            return;
        };
        if slot.dirty {
            return;
        }
        let old = slot.gen;
        st.lru.remove(&old);
        st.gen += 1;
        let gen = st.gen;
        if let Some(slot) = st.entries.get_mut(key) {
            slot.gen = gen;
        }
        st.lru.insert(gen, key.clone());
    }

    /// Evicts clean slots (oldest first) until the cache is within
    /// `cap`. Dirty slots are pinned and never evicted.
    fn evict_to_cap(st: &mut CacheState, cap: usize) {
        while st.entries.len() > cap {
            let Some((&gen, _)) = st.lru.iter().next() else {
                break; // everything left is dirty
            };
            let key = st.lru.remove(&gen).expect("just observed");
            if st.entries.remove(&key).is_some() {
                st.resident = st.resident.saturating_sub(approx_entry_bytes(&key));
                st.stats.cache_evicts += 1;
            }
        }
    }

    /// The point-read path: cache overlay first, then the sparse index
    /// and a segment read (populating the cache).
    fn fetch(&self, key: &LedgerKey) -> Option<LedgerEntry> {
        let mut st = self.state.borrow_mut();
        if let Some(entry) = st.entries.get(key).map(|slot| slot.entry.clone()) {
            st.stats.cache_hits += 1;
            Self::touch(&mut st, key);
            return entry;
        }
        st.stats.cache_misses += 1;
        let loc = *self.index.get(key)?;
        let entry = self.read_at(&mut st, loc);
        st.gen += 1;
        let gen = st.gen;
        st.entries.insert(
            key.clone(),
            CacheSlot {
                entry: Some(entry.clone()),
                dirty: false,
                gen,
            },
        );
        st.lru.insert(gen, key.clone());
        st.resident += approx_entry_bytes(key);
        Self::evict_to_cap(&mut st, self.cfg.cache_capacity);
        Some(entry)
    }

    /// Whether `key` currently exists (cache overlay over index), with
    /// no segment read.
    fn exists(&self, key: &LedgerKey) -> bool {
        let st = self.state.borrow();
        match st.entries.get(key) {
            Some(slot) => slot.entry.is_some(),
            None => self.index.contains_key(key),
        }
    }

    fn encode_meta(&self, ledger_seq: u64, extra_segs: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        STORE_META_VERSION.encode(&mut out);
        ledger_seq.encode(&mut out);
        self.next_offer_id.encode(&mut out);
        self.next_seg_id.encode(&mut out);
        let ids: Vec<u64> = self
            .segs
            .keys()
            .copied()
            .chain(extra_segs.iter().copied())
            .collect();
        (ids.len() as u64).encode(&mut out);
        for id in ids {
            id.encode(&mut out);
        }
        out
    }

    /// Packs `(key, entry)` records into target-sized segments, taking
    /// ids from the allocator.
    fn seal_records<'a>(
        &mut self,
        items: impl Iterator<Item = (&'a LedgerKey, Option<&'a LedgerEntry>)>,
    ) -> Vec<(u64, Vec<u8>, Vec<NewRec>)> {
        let mut out = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut recs: Vec<NewRec> = Vec::new();
        for (key, entry) in items {
            match entry {
                Some(e) => {
                    0u8.encode(&mut buf);
                    key.encode(&mut buf);
                    let off = buf.len();
                    e.encode(&mut buf);
                    recs.push(NewRec {
                        key: key.clone(),
                        live: Some((off as u32, (buf.len() - off) as u32)),
                    });
                }
                None => {
                    1u8.encode(&mut buf);
                    key.encode(&mut buf);
                    recs.push(NewRec {
                        key: key.clone(),
                        live: None,
                    });
                }
            }
            if buf.len() >= self.cfg.segment_target_bytes {
                let id = self.next_seg_id;
                self.next_seg_id += 1;
                out.push((id, std::mem::take(&mut buf), std::mem::take(&mut recs)));
            }
        }
        if !buf.is_empty() {
            let id = self.next_seg_id;
            self.next_seg_id += 1;
            out.push((id, buf, recs));
        }
        out
    }

    /// Applies a successful flush's records to the sparse index, with
    /// dead-byte accounting for the versions they supersede.
    fn index_new_segs(&mut self, new_segs: &[(u64, Vec<u8>, Vec<NewRec>)]) {
        for (seg_id, buf, recs) in new_segs {
            self.segs.insert(
                *seg_id,
                SegInfo {
                    total: buf.len() as u64,
                    dead: 0,
                },
            );
            for rec in recs {
                let key_overhead = 1 + key_enc_len(&rec.key);
                match rec.live {
                    Some((off, len)) => {
                        let loc = EntryLoc {
                            seg: *seg_id,
                            off,
                            len,
                        };
                        if let Some(old) = self.index.insert(rec.key.clone(), loc) {
                            if let Some(si) = self.segs.get_mut(&old.seg) {
                                si.dead += u64::from(old.len) + key_overhead;
                            }
                        }
                    }
                    None => {
                        if let Some(old) = self.index.remove(&rec.key) {
                            if let Some(si) = self.segs.get_mut(&old.seg) {
                                si.dead += u64::from(old.len) + key_overhead;
                            }
                        }
                        // The tombstone record itself is dead weight
                        // from birth; it exists only for replay.
                        if let Some(si) = self.segs.get_mut(seg_id) {
                            si.dead += key_overhead;
                        }
                    }
                }
            }
        }
    }

    /// Rewrites all live records into fresh segments and retires the old
    /// ones. Runs after a flush whose dead ratio crossed the threshold.
    fn compact(&mut self, ledger_seq: u64) {
        let old_ids: Vec<u64> = self.segs.keys().copied().collect();
        // Copy each live record's bytes verbatim (no decode round-trip).
        let mut records: Vec<(LedgerKey, Vec<u8>)> = Vec::with_capacity(self.index.len());
        {
            let mut st = self.state.borrow_mut();
            for (key, loc) in &self.index {
                let payload = self.seg_payload(&mut st, loc.seg);
                let enc = payload[loc.off as usize..(loc.off + loc.len) as usize].to_vec();
                records.push((key.clone(), enc));
            }
        }
        let mut out: Vec<(u64, Vec<u8>, Vec<NewRec>)> = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut recs: Vec<NewRec> = Vec::new();
        for (key, enc) in records {
            0u8.encode(&mut buf);
            key.encode(&mut buf);
            let off = buf.len();
            buf.extend_from_slice(&enc);
            recs.push(NewRec {
                key,
                live: Some((off as u32, enc.len() as u32)),
            });
            if buf.len() >= self.cfg.segment_target_bytes {
                let id = self.next_seg_id;
                self.next_seg_id += 1;
                out.push((id, std::mem::take(&mut buf), std::mem::take(&mut recs)));
            }
        }
        if !buf.is_empty() {
            let id = self.next_seg_id;
            self.next_seg_id += 1;
            out.push((id, buf, recs));
        }

        let new_ids: Vec<u64> = out.iter().map(|(id, _, _)| *id).collect();
        {
            let mut disk = self.disk.borrow_mut();
            for (id, buf, _) in &out {
                disk.write(&seg_key(*id), buf);
            }
        }
        // Manifest listing only the fresh segments.
        let meta = {
            let saved = std::mem::take(&mut self.segs);
            let meta = self.encode_meta(ledger_seq, &new_ids);
            self.segs = saved;
            meta
        };
        self.disk.borrow_mut().write(META_KEY, &meta);
        {
            let mut st = self.state.borrow_mut();
            st.stats.bytes_written +=
                out.iter().map(|(_, b, _)| b.len() as u64).sum::<u64>() + meta.len() as u64;
        }
        let ok = self.disk.borrow_mut().sync();
        let mut st = self.state.borrow_mut();
        if ok {
            st.stats.fsyncs += 1;
            st.stats.compactions += 1;
            drop(st);
            // Old segments are durable garbage now; reclaim at the next
            // flush (their blobs stay readable until then, which keeps
            // any in-flight segment-cache payloads harmless).
            self.orphans.extend(old_ids);
            self.segs.clear();
            for (seg_id, buf, recs) in &out {
                self.segs.insert(
                    *seg_id,
                    SegInfo {
                        total: buf.len() as u64,
                        dead: 0,
                    },
                );
                for rec in recs {
                    let (off, len) = rec.live.expect("compaction writes live records only");
                    self.index.insert(
                        rec.key.clone(),
                        EntryLoc {
                            seg: *seg_id,
                            off,
                            len,
                        },
                    );
                }
            }
            // Drop cached payloads of retired segments.
            self.state.borrow_mut().seg_cache.clear();
        } else {
            st.stats.failed_fsyncs += 1;
            drop(st);
            // The staged batch (new segs + manifest) stays pending; if a
            // later sync lands it, the next flush's manifest supersedes
            // it in the same drain. Schedule the fresh ids for removal.
            self.orphans.extend(new_ids);
        }
    }

    /// Rebuilds a backend from a data disk's manifest and segments.
    /// Returns the backend and the ledger sequence of its last durable
    /// flush, or `None` if the manifest or any referenced segment is
    /// missing, torn, or malformed.
    pub fn recover(disk: Rc<RefCell<DurableStore>>, cfg: DiskConfig) -> Option<(DiskBackend, u64)> {
        let meta = disk.borrow().read(META_KEY)?;
        let mut input = meta.as_slice();
        let version = u32::decode(&mut input).ok()?;
        if version != STORE_META_VERSION {
            return None;
        }
        let ledger_seq = u64::decode(&mut input).ok()?;
        let next_offer_id = u64::decode(&mut input).ok()?;
        let next_seg_id = u64::decode(&mut input).ok()?;
        let n = u64::decode(&mut input).ok()? as usize;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(u64::decode(&mut input).ok()?);
        }

        let mut backend = DiskBackend::with_disk(disk.clone(), cfg);
        backend.next_offer_id = next_offer_id;
        backend.next_seg_id = next_seg_id;
        // Replay segments oldest-first: within the manifest, ids are
        // ascending and ids are never reused, so the last record seen
        // for a key is its latest version.
        for id in ids {
            let payload = disk.borrow().read(&seg_key(id))?;
            backend.segs.insert(
                id,
                SegInfo {
                    total: payload.len() as u64,
                    dead: 0,
                },
            );
            let mut input = payload.as_slice();
            while !input.is_empty() {
                let tag = u8::decode(&mut input).ok()?;
                let key = LedgerKey::decode(&mut input).ok()?;
                let key_overhead = 1 + key_enc_len(&key);
                match tag {
                    0 => {
                        let off = (payload.len() - input.len()) as u32;
                        LedgerEntry::decode(&mut input).ok()?;
                        let len = (payload.len() - input.len()) as u32 - off;
                        if let Some(old) = backend.index.insert(key, EntryLoc { seg: id, off, len })
                        {
                            if let Some(si) = backend.segs.get_mut(&old.seg) {
                                si.dead += u64::from(old.len) + key_overhead;
                            }
                        }
                    }
                    1 => {
                        if let Some(old) = backend.index.remove(&key) {
                            if let Some(si) = backend.segs.get_mut(&old.seg) {
                                si.dead += u64::from(old.len) + key_overhead;
                            }
                        }
                        if let Some(si) = backend.segs.get_mut(&id) {
                            si.dead += key_overhead;
                        }
                    }
                    _ => return None,
                }
            }
        }

        // Counts from the index; book index by decoding live offers.
        let mut offers: Vec<EntryLoc> = Vec::new();
        for (key, loc) in &backend.index {
            backend.counts[kind_idx(key)] += 1;
            if matches!(key, LedgerKey::Offer(_)) {
                offers.push(*loc);
            }
        }
        {
            let mut st = backend.state.borrow_mut();
            for loc in offers {
                let LedgerEntry::Offer(o) = backend.read_at(&mut st, loc) else {
                    return None;
                };
                book_apply(&mut backend.book, None, Some(&o));
            }
        }
        Some((backend, ledger_seq))
    }
}

impl LedgerBackend for DiskBackend {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn account(&self, id: AccountId) -> Option<AccountEntry> {
        match self.fetch(&LedgerKey::Account(id))? {
            LedgerEntry::Account(a) => Some(a),
            _ => None,
        }
    }

    fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        match self.fetch(&LedgerKey::TrustLine(id, asset.clone()))? {
            LedgerEntry::TrustLine(t) => Some(t),
            _ => None,
        }
    }

    fn offer(&self, id: u64) -> Option<OfferEntry> {
        match self.fetch(&LedgerKey::Offer(id))? {
            LedgerEntry::Offer(o) => Some(o),
            _ => None,
        }
    }

    fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        match self.fetch(&LedgerKey::Data(id, name.to_owned()))? {
            LedgerEntry::Data(d) => Some(d),
            _ => None,
        }
    }

    fn trustlines_of(&self, id: AccountId) -> Vec<TrustLineEntry> {
        // Asset::Native is the minimum asset, so this is the lower bound
        // of the account's trustline key range.
        let lo = LedgerKey::TrustLine(id, Asset::Native);
        let in_range = |k: &LedgerKey| matches!(k, LedgerKey::TrustLine(a, _) if *a == id);
        let mut keys: std::collections::BTreeSet<LedgerKey> = self
            .index
            .range(lo.clone()..)
            .take_while(|(k, _)| in_range(k))
            .map(|(k, _)| k.clone())
            .collect();
        {
            let st = self.state.borrow();
            for (k, slot) in st.entries.range(lo..).take_while(|(k, _)| in_range(k)) {
                if slot.entry.is_some() {
                    keys.insert(k.clone());
                } else {
                    keys.remove(k);
                }
            }
        }
        keys.into_iter()
            .filter_map(|k| match self.fetch(&k) {
                Some(LedgerEntry::TrustLine(t)) => Some(t),
                _ => None,
            })
            .collect()
    }

    fn book_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<BookCursor> {
        book_range(&self.book, selling, buying, after, limit)
    }

    fn apply(&mut self, feed: &[(LedgerKey, Option<LedgerEntry>)]) {
        for (key, slot) in feed {
            // Offers need the previous version for book maintenance;
            // other kinds only an existence check (no segment read).
            let existed = if let LedgerKey::Offer(_) = key {
                let prev = match self.fetch(key) {
                    Some(LedgerEntry::Offer(o)) => Some(o),
                    _ => None,
                };
                let new = match slot {
                    Some(LedgerEntry::Offer(o)) => Some(o),
                    _ => None,
                };
                book_apply(&mut self.book, prev.as_ref(), new);
                prev.is_some()
            } else {
                self.exists(key)
            };

            if slot.is_none() && !existed {
                continue; // deleting nothing: skip the tombstone
            }
            let k = kind_idx(key);
            if slot.is_some() && !existed {
                self.counts[k] += 1;
            } else if slot.is_none() && existed {
                self.counts[k] -= 1;
            }

            let mut st = self.state.borrow_mut();
            if let Some(old) = st.entries.get(key) {
                let gen = old.gen;
                if !old.dirty {
                    st.lru.remove(&gen);
                }
            } else {
                st.resident += approx_entry_bytes(key);
            }
            st.entries.insert(
                key.clone(),
                CacheSlot {
                    entry: slot.clone(),
                    dirty: true,
                    gen: 0,
                },
            );
        }
    }

    fn next_offer_id(&self) -> u64 {
        self.next_offer_id
    }

    fn set_next_offer_id(&mut self, id: u64) {
        self.next_offer_id = id;
    }

    fn account_count(&self) -> usize {
        self.counts[0]
    }

    fn offer_count(&self) -> usize {
        self.counts[2]
    }

    fn all_entries(&self) -> Vec<LedgerEntry> {
        // Overlay snapshot first (bounded by the cache), then a merged
        // sweep over the sparse index. `LedgerKey`'s ordering groups
        // kinds exactly like the in-RAM backend's per-kind maps, so the
        // output order matches MemBackend byte for byte.
        let overlay: Vec<(LedgerKey, Option<LedgerEntry>)> = {
            let st = self.state.borrow();
            st.entries
                .iter()
                .map(|(k, s)| (k.clone(), s.entry.clone()))
                .collect()
        };
        let mut ov = overlay.into_iter().peekable();
        let mut st = self.state.borrow_mut();
        let mut out = Vec::with_capacity(self.index.len());
        for (key, loc) in &self.index {
            while let Some((k, _)) = ov.peek() {
                if k < key {
                    let (_, e) = ov.next().expect("just peeked");
                    out.extend(e);
                } else {
                    break;
                }
            }
            if let Some((k, _)) = ov.peek() {
                if k == key {
                    let (_, e) = ov.next().expect("just peeked");
                    out.extend(e);
                    continue;
                }
            }
            out.push(self.read_at(&mut st, *loc));
        }
        for (_, e) in ov {
            out.extend(e);
        }
        out
    }

    fn flush(&mut self, ledger_seq: u64) -> bool {
        // Reclaim segments a failed (or superseding) sync left behind.
        let orphans = std::mem::take(&mut self.orphans);
        {
            let mut disk = self.disk.borrow_mut();
            for id in &orphans {
                disk.remove(&seg_key(*id));
            }
        }

        // Drain the dirty set, in key order, into fresh segments.
        let dirty: Vec<(LedgerKey, Option<LedgerEntry>)> = {
            let st = self.state.borrow();
            st.entries
                .iter()
                .filter(|(_, s)| s.dirty)
                .map(|(k, s)| (k.clone(), s.entry.clone()))
                .collect()
        };
        let new_segs = self.seal_records(dirty.iter().map(|(k, e)| (k, e.as_ref())));
        let new_ids: Vec<u64> = new_segs.iter().map(|(id, _, _)| *id).collect();

        let meta = self.encode_meta(ledger_seq, &new_ids);
        {
            let mut disk = self.disk.borrow_mut();
            for (id, buf, _) in &new_segs {
                disk.write(&seg_key(*id), buf);
            }
            disk.write(META_KEY, &meta);
        }
        {
            let mut st = self.state.borrow_mut();
            st.stats.bytes_written +=
                new_segs.iter().map(|(_, b, _)| b.len() as u64).sum::<u64>() + meta.len() as u64;
        }

        let ok = self.disk.borrow_mut().sync();
        if !ok {
            self.state.borrow_mut().stats.failed_fsyncs += 1;
            // Everything stays staged on the disk and dirty in the
            // cache; the next flush re-encodes under fresh ids and
            // removes these (whether or not a later sync lands them).
            self.orphans = orphans;
            self.orphans.extend(new_ids);
            return false;
        }
        self.state.borrow_mut().stats.fsyncs += 1;
        self.index_new_segs(&new_segs);

        // Dirty slots become clean (deletions leave the cache — negative
        // results are not cached), then trim to capacity.
        {
            let mut st = self.state.borrow_mut();
            for (key, entry) in dirty {
                if entry.is_none() {
                    st.entries.remove(&key);
                    st.resident = st.resident.saturating_sub(approx_entry_bytes(&key));
                } else {
                    st.gen += 1;
                    let gen = st.gen;
                    if let Some(slot) = st.entries.get_mut(&key) {
                        slot.dirty = false;
                        slot.gen = gen;
                    }
                    st.lru.insert(gen, key);
                }
            }
            Self::evict_to_cap(&mut st, self.cfg.cache_capacity);
        }

        let total: u64 = self.segs.values().map(|s| s.total).sum();
        let dead: u64 = self.segs.values().map(|s| s.dead).sum();
        if self.segs.len() > 1
            && total > 0
            && dead * 100 > total * u64::from(self.cfg.compact_dead_ratio_pct)
        {
            self.compact(ledger_seq);
        }
        true
    }

    fn disk(&self) -> Option<Rc<RefCell<DurableStore>>> {
        Some(self.disk.clone())
    }

    fn io_stats(&self) -> StoreIoStats {
        let mut s = self.state.borrow().stats;
        s.segments = self.segs.len() as u64;
        s.disk_bytes = self.disk.borrow().durable_bytes();
        s
    }

    fn resident_bytes(&self) -> u64 {
        let st = self.state.borrow();
        let seg_cache: u64 = st.seg_cache.values().map(|(_, p)| p.len() as u64).sum();
        st.resident + self.index.len() as u64 * INDEX_ENTRY_BYTES + seg_cache
    }

    fn boxed_clone(&self) -> Box<dyn LedgerBackend> {
        Box::new(self.clone())
    }
}

//! Disk-backed ledger storage: the pluggable backend layer.
//!
//! The paper's nodes keep the ledger in RAM; at 10M+ accounts that stops
//! being free. This crate provides the alternative: [`DiskBackend`], a
//! log-structured store over the simulated durable disk in
//! `crates/persist`, with a sparse in-memory key index and a bounded
//! write-back cache — dirty per-close deltas layered over committed,
//! checksummed segment files (see [`disk`] for the format).
//!
//! The backend choice threads through `sim`/`herder`/`horizon` behind
//! one constructor, [`open`]: every node runs identically — and produces
//! byte-identical ledger header and bucket hashes — on either backend.
//! [`BackendKind::from_env`] lets `STELLAR_STORE_BACKEND=disk` flip an
//! entire test run onto the disk backend.
//!
//! [`recover_node`] is the durable-restart path: it rebuilds the ledger
//! store *and* the bucket list from the data disk, cross-checking the
//! store manifest, the bucket manifest, and the caller's write-ahead LCL
//! record (header + bucket hashes) against each other. Any mismatch —
//! torn manifest, divergent sequence, wrong snapshot hash — returns
//! `None` and the caller falls back to genesis replay + catch-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;

pub use disk::{DiskBackend, DiskConfig};

use std::cell::RefCell;
use std::rc::Rc;
use stellar_buckets::BucketList;
use stellar_crypto::Hash256;
use stellar_ledger::entry::LedgerEntry;
use stellar_ledger::header::LedgerHeader;
use stellar_ledger::{LedgerBackend, LedgerStore};
use stellar_persist::DurableStore;

/// Which storage backend a node runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// The original in-RAM maps.
    #[default]
    Mem,
    /// The log-structured disk backend.
    Disk,
}

impl BackendKind {
    /// Reads `STELLAR_STORE_BACKEND` ("disk" selects [`BackendKind::Disk`];
    /// anything else, or unset, selects [`BackendKind::Mem`]). This is how
    /// the CI harness runs the whole suite once per backend.
    pub fn from_env() -> BackendKind {
        match std::env::var("STELLAR_STORE_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("disk") => BackendKind::Disk,
            _ => BackendKind::Mem,
        }
    }

    /// The backend's short name ("mem" / "disk").
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Mem => "mem",
            BackendKind::Disk => "disk",
        }
    }
}

/// Entries applied per batch while streaming a genesis state onto disk —
/// bounds the transient dirty set (each chunk is flushed before the
/// next).
const GENESIS_CHUNK: usize = 8192;

/// Builds a node's ledger store from a genesis template on the chosen
/// backend. `Mem` clones the template; `Disk` streams its entries onto a
/// fresh simulated disk in flushed chunks, so even a 10M-account genesis
/// never holds more than a chunk of dirty state plus the configured
/// cache.
pub fn open(genesis: &LedgerStore, kind: BackendKind, cfg: &DiskConfig) -> LedgerStore {
    match kind {
        BackendKind::Mem => genesis.clone(),
        BackendKind::Disk => open_streaming(genesis.all_entries(), genesis.next_offer_id(), cfg),
    }
}

/// Disk-backed [`open`] from a raw entry stream (large benchmarks build
/// entries on the fly instead of materializing a RAM store first).
pub fn open_streaming(
    entries: impl IntoIterator<Item = LedgerEntry>,
    next_offer_id: u64,
    cfg: &DiskConfig,
) -> LedgerStore {
    let mut backend = DiskBackend::new(cfg.clone());
    let mut feed = Vec::with_capacity(GENESIS_CHUNK);
    for e in entries {
        feed.push((e.key(), Some(e)));
        if feed.len() == GENESIS_CHUNK {
            backend.apply(&feed);
            feed.clear();
            assert!(backend.flush(0), "genesis flush cannot fail");
        }
    }
    if !feed.is_empty() {
        backend.apply(&feed);
    }
    backend.set_next_offer_id(next_offer_id);
    assert!(backend.flush(0), "genesis flush cannot fail");
    LedgerStore::with_backend(Box::new(backend))
}

/// Rebuilds a node's ledger store and bucket list from its data disk
/// after a crash, verified end to end against the write-ahead LCL record
/// (`header` + `bucket_hashes`):
///
/// * the store manifest, the bucket manifest, and the header must agree
///   on the ledger sequence (the data disk syncs before the LCL record,
///   so a mismatch means the crash split them);
/// * every bucket blob must hash to its expected level hash, and the
///   resulting bucket list must reproduce `header.snapshot_hash`.
///
/// Returns `None` on any discrepancy — the caller falls back to genesis
/// replay plus archive catch-up, which is always correct, just slower.
pub fn recover_node(
    disk: Rc<RefCell<DurableStore>>,
    header: &LedgerHeader,
    bucket_hashes: &[Hash256],
    cfg: &DiskConfig,
) -> Option<(LedgerStore, BucketList)> {
    let (backend, store_seq) = DiskBackend::recover(disk.clone(), cfg.clone())?;
    if store_seq != header.ledger_seq {
        return None;
    }
    let (mut buckets, bucket_seq) = BucketList::recover(disk, bucket_hashes)?;
    if bucket_seq != header.ledger_seq {
        return None;
    }
    if buckets.hash() != header.snapshot_hash {
        return None;
    }
    Some((LedgerStore::with_backend(Box::new(backend)), buckets))
}

//! Signed statement envelopes.
//!
//! Every statement travels wrapped in an [`Envelope`] signed by its
//! originating node, so Byzantine peers cannot forge votes on behalf of
//! honest ones. Verification keys are resolved through the
//! [`Driver`](crate::Driver), keeping SCP independent of key distribution.

use crate::statement::Statement;
use stellar_crypto::codec::{Decode, DecodeError, Encode};
use stellar_crypto::sign::{self, KeyPair, PublicKey, Signature};
use stellar_crypto::Hash256;

/// A signed protocol statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// The statement being asserted.
    pub statement: Statement,
    /// Signature by `statement.node` over the statement's encoding.
    pub signature: Signature,
}

impl Envelope {
    /// Signs `statement` with `keys`, producing a verifiable envelope.
    pub fn sign(statement: Statement, keys: &KeyPair) -> Envelope {
        let signature = sign::sign_xdr(keys, &statement);
        Envelope {
            statement,
            signature,
        }
    }

    /// Verifies the signature against the claimed sender's public key.
    pub fn verify(&self, public: PublicKey) -> bool {
        sign::verify_xdr(public, &self.statement, &self.signature)
    }

    /// Content hash of the envelope (statement + signature).
    pub fn hash(&self) -> Hash256 {
        stellar_crypto::hash_xdr(self)
    }

    /// Encoded size in bytes, used by the overlay for traffic accounting.
    pub fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }
}

impl Encode for Envelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.statement.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for Envelope {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Envelope {
            statement: Statement::decode(input)?,
            signature: Signature::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::StatementKind;
    use crate::{NodeId, QuorumSet, Value};
    use std::collections::BTreeSet;

    fn sample_statement(node: NodeId) -> Statement {
        Statement {
            node,
            slot: 3,
            quorum_set: QuorumSet::threshold_of(1, vec![node]),
            kind: StatementKind::Nominate {
                voted: [Value::new(b"v".to_vec())].into(),
                accepted: BTreeSet::new(),
            },
        }
    }

    #[test]
    fn sign_and_verify() {
        let keys = KeyPair::from_seed(5);
        let env = Envelope::sign(sample_statement(NodeId(5)), &keys);
        assert!(env.verify(keys.public()));
        let other = KeyPair::from_seed(6);
        assert!(!env.verify(other.public()));
    }

    #[test]
    fn tampering_breaks_verification() {
        let keys = KeyPair::from_seed(5);
        let mut env = Envelope::sign(sample_statement(NodeId(5)), &keys);
        env.statement.slot = 4;
        assert!(!env.verify(keys.public()));
    }

    #[test]
    fn codec_roundtrip() {
        let keys = KeyPair::from_seed(5);
        let env = Envelope::sign(sample_statement(NodeId(5)), &keys);
        let back = Envelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(back, env);
        assert!(back.verify(keys.public()));
    }

    #[test]
    fn wire_size_is_positive_and_stable() {
        let keys = KeyPair::from_seed(5);
        let env = Envelope::sign(sample_statement(NodeId(5)), &keys);
        assert!(env.wire_size() > 0);
        assert_eq!(env.wire_size(), env.to_bytes().len());
    }
}

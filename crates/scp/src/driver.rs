//! The [`Driver`] trait: how SCP talks to the application and the outside
//! world.
//!
//! SCP is a pure state machine; everything with a side effect — sending
//! envelopes, arming timers, validating and combining application values,
//! learning public keys, delivering decisions — is delegated to a `Driver`
//! supplied by the embedder (in this workspace, `stellar-herder` for the
//! payment network and in-process harnesses for tests and simulations).

use crate::{Envelope, NodeId, SlotIndex, Value};
use std::time::Duration;

/// Application verdict on a candidate value (paper §3.2: only *valid*
/// values may be voted for).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Validity {
    /// The value is fully valid and may be voted for in nomination.
    FullyValidated,
    /// The value cannot be fully checked locally (e.g. unknown tx set) but
    /// is not known-bad; it may be accepted but not voted for.
    MaybeValid,
    /// The value is malformed or violates application rules.
    Invalid,
}

/// Kinds of timers SCP asks the embedder to run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TimerKind {
    /// Nomination leader-selection round timeout (§3.2.5).
    Nomination,
    /// Ballot timeout (§3.2.4); fires only if armed and not re-armed.
    Ballot,
}

/// Observable protocol milestones, surfaced for metrics and tests.
///
/// These power the paper's evaluation: nomination/balloting latency splits
/// (Fig. 9–11), timeout counts (Fig. 8), and message accounting (§7.2).
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // Variant fields (`slot`, `counter`, `value`, `kind`) are uniform and documented on the variants.
pub enum ScpEvent {
    /// Nomination began for a slot.
    NominationStarted { slot: SlotIndex },
    /// A nomination round began (round 1 fires with
    /// [`ScpEvent::NominationStarted`]; later rounds follow timeouts).
    /// Telemetry derives per-round durations from consecutive events.
    NominationRoundStarted { slot: SlotIndex, round: u32 },
    /// A verified peer envelope was routed to its slot. `kind` is the
    /// statement family ([`crate::StatementKind::class_name`]) — the
    /// per-statement-type message accounting of §7.2.
    EnvelopeProcessed {
        slot: SlotIndex,
        from: NodeId,
        kind: &'static str,
    },
    /// A new composite candidate value emerged from nomination.
    NewCandidate { slot: SlotIndex, value: Value },
    /// The node moved to a new ballot (counter reported).
    BallotBumped { slot: SlotIndex, counter: u32 },
    /// The node accepted `prepare(b)` for the first time at this ballot.
    AcceptedPrepared { slot: SlotIndex, counter: u32 },
    /// The node confirmed `prepare(b)` — the first `prepare` confirmation
    /// marks the nomination→balloting latency boundary used in §7.3.
    ConfirmedPrepared { slot: SlotIndex, counter: u32 },
    /// The node accepted `commit` for a range of ballots.
    AcceptedCommit { slot: SlotIndex, counter: u32 },
    /// A nomination-round or ballot timeout fired (Fig. 8 counters).
    TimeoutFired { slot: SlotIndex, kind: TimerKind },
    /// The node externalized (decided) a value.
    Externalized { slot: SlotIndex, value: Value },
}

/// Connects the SCP state machine to the embedding application.
pub trait Driver {
    /// Checks whether `value` is acceptable at `slot`.
    ///
    /// `nomination` is true when the check guards a nomination vote (strict)
    /// rather than ballot-protocol participation (lenient).
    fn validate_value(&mut self, slot: SlotIndex, value: &Value, nomination: bool) -> Validity;

    /// Combines confirmed-nominated candidates into the composite value
    /// balloting should propose (paper §5.3; e.g. "take the transaction set
    /// with the most operations, the union of upgrades, the highest close
    /// time"). Returning `None` leaves balloting waiting for candidates.
    fn combine_candidates(
        &mut self,
        slot: SlotIndex,
        candidates: &std::collections::BTreeSet<Value>,
    ) -> Option<Value>;

    /// Broadcasts an envelope to the network (the embedder floods it).
    fn emit_envelope(&mut self, envelope: &Envelope);

    /// Arms (or re-arms) a timer; a later call with the same `(slot, kind)`
    /// replaces the earlier deadline. `None` cancels.
    fn set_timer(&mut self, slot: SlotIndex, kind: TimerKind, delay: Option<Duration>);

    /// Delivers the decision for `slot`. Called exactly once per slot.
    fn externalized(&mut self, slot: SlotIndex, value: &Value);

    /// Resolves a node's signature-verification key.
    ///
    /// Returning `None` causes envelopes from that node to be dropped.
    fn public_key(&self, node: NodeId) -> Option<stellar_crypto::sign::PublicKey>;

    /// Observability hook; default ignores events.
    fn on_event(&mut self, _event: ScpEvent) {}

    /// Ballot timeout schedule (§3.2.4): "timeouts of increasing duration".
    ///
    /// Default mirrors production `stellar-core`: `counter + 1` seconds.
    fn ballot_timeout(&self, counter: u32) -> Duration {
        Duration::from_secs(u64::from(counter) + 1)
    }

    /// Nomination round timeout; production uses 1 s, growing per round.
    fn nomination_timeout(&self, round: u32) -> Duration {
        Duration::from_secs(u64::from(round))
    }
}

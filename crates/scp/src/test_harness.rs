//! A deterministic in-process harness for running small SCP networks.
//!
//! This module exists for tests, documentation examples, and
//! micro-benchmarks: it wires N [`ScpNode`]s together with instantaneous
//! flooding and a virtual clock, with optional crash and equivocation
//! faults. The full discrete-event simulator with latency models lives in
//! the `stellar-sim` crate; this harness trades realism for simplicity and
//! speed.

use crate::driver::{Driver, ScpEvent, TimerKind, Validity};
use crate::{Envelope, NodeId, QuorumSet, ScpNode, SlotIndex, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Driver used by the harness: records everything, answers keys from a
/// shared seed-derived registry.
pub struct HarnessDriver {
    /// Seed namespace for key derivation (shared across the network).
    key_seed: u64,
    /// Envelopes emitted by the node this driver belongs to.
    pub outbox: Vec<Envelope>,
    /// Timers requested: (slot, kind) → absolute virtual deadline (ms).
    pub timers: BTreeMap<(SlotIndex, TimerKind), u64>,
    /// Current virtual time (ms), maintained by the network.
    pub now_ms: u64,
    /// Decisions delivered, by slot.
    pub decisions: BTreeMap<SlotIndex, Value>,
    /// All protocol events observed.
    pub events: Vec<ScpEvent>,
}

/// Derives the well-known keypair for a node in a harness network.
pub fn harness_keys(key_seed: u64, node: NodeId) -> stellar_crypto::sign::KeyPair {
    stellar_crypto::sign::KeyPair::from_seed(key_seed ^ (u64::from(node.0) << 16))
}

impl HarnessDriver {
    fn new(key_seed: u64) -> Self {
        HarnessDriver {
            key_seed,
            outbox: Vec::new(),
            timers: BTreeMap::new(),
            now_ms: 0,
            decisions: BTreeMap::new(),
            events: Vec::new(),
        }
    }
}

impl Driver for HarnessDriver {
    fn validate_value(&mut self, _slot: SlotIndex, _value: &Value, _nomination: bool) -> Validity {
        Validity::FullyValidated
    }

    fn combine_candidates(
        &mut self,
        _slot: SlotIndex,
        candidates: &BTreeSet<Value>,
    ) -> Option<Value> {
        // Deterministic combiner: the lexicographically largest candidate.
        candidates.iter().next_back().cloned()
    }

    fn emit_envelope(&mut self, envelope: &Envelope) {
        self.outbox.push(envelope.clone());
    }

    fn set_timer(&mut self, slot: SlotIndex, kind: TimerKind, delay: Option<Duration>) {
        match delay {
            Some(d) => {
                self.timers
                    .insert((slot, kind), self.now_ms + d.as_millis() as u64);
            }
            None => {
                self.timers.remove(&(slot, kind));
            }
        }
    }

    fn externalized(&mut self, slot: SlotIndex, value: &Value) {
        let prev = self.decisions.insert(slot, value.clone());
        assert!(prev.is_none(), "double externalize on slot {slot}");
    }

    fn public_key(&self, node: NodeId) -> Option<stellar_crypto::sign::PublicKey> {
        Some(harness_keys(self.key_seed, node).public())
    }

    fn on_event(&mut self, event: ScpEvent) {
        self.events.push(event);
    }
}

/// An N-node SCP network with instantaneous flooding and a virtual clock.
pub struct InMemoryNetwork {
    nodes: Vec<ScpNode>,
    drivers: Vec<HarnessDriver>,
    crashed: BTreeSet<NodeId>,
    /// Virtual time in milliseconds.
    now_ms: u64,
    /// Total envelopes delivered (message-count metric).
    pub delivered: u64,
}

impl InMemoryNetwork {
    /// Builds a network where every node uses the same quorum set.
    pub fn new(ids: &[NodeId], qset: &QuorumSet, key_seed: u64) -> InMemoryNetwork {
        Self::with_qsets(ids.iter().map(|id| (*id, qset.clone())).collect(), key_seed)
    }

    /// Builds a network with per-node quorum sets.
    pub fn with_qsets(config: Vec<(NodeId, QuorumSet)>, key_seed: u64) -> InMemoryNetwork {
        let mut nodes = Vec::new();
        let mut drivers = Vec::new();
        for (id, qset) in config {
            nodes.push(ScpNode::new(id, harness_keys(key_seed, id), qset));
            drivers.push(HarnessDriver::new(key_seed));
        }
        InMemoryNetwork {
            nodes,
            drivers,
            crashed: BTreeSet::new(),
            now_ms: 0,
            delivered: 0,
        }
    }

    /// Marks a node as crashed: it stops sending and receiving.
    pub fn crash(&mut self, id: NodeId) {
        self.crashed.insert(id);
    }

    /// Revives a crashed node.
    pub fn revive(&mut self, id: NodeId) {
        self.crashed.remove(&id);
    }

    fn index_of(&self, id: NodeId) -> usize {
        self.nodes
            .iter()
            .position(|n| n.id() == id)
            .unwrap_or_else(|| panic!("unknown node {id}"))
    }

    /// Proposes `value` at `slot` on node `id`.
    pub fn propose(&mut self, id: NodeId, slot: SlotIndex, value: Value) {
        let i = self.index_of(id);
        if self.crashed.contains(&id) {
            return;
        }
        self.nodes[i].propose(&mut self.drivers[i], slot, value);
    }

    /// Floods all pending envelopes until quiescent. Returns the number of
    /// envelopes delivered.
    pub fn flood(&mut self) -> u64 {
        let mut delivered = 0;
        loop {
            let mut batch: Vec<Envelope> = Vec::new();
            for (i, d) in self.drivers.iter_mut().enumerate() {
                if self.crashed.contains(&self.nodes[i].id()) {
                    d.outbox.clear();
                    continue;
                }
                batch.append(&mut d.outbox);
            }
            if batch.is_empty() {
                return delivered;
            }
            for env in batch {
                for i in 0..self.nodes.len() {
                    let id = self.nodes[i].id();
                    if self.crashed.contains(&id) || env.statement.node == id {
                        continue;
                    }
                    self.nodes[i].receive(&mut self.drivers[i], &env);
                    delivered += 1;
                    self.delivered += 1;
                }
            }
        }
    }

    /// Fires the earliest pending timer (advancing the virtual clock).
    /// Returns `false` when no timers are pending.
    pub fn fire_next_timer(&mut self) -> bool {
        let mut best: Option<(u64, usize, SlotIndex, TimerKind)> = None;
        for (i, d) in self.drivers.iter().enumerate() {
            if self.crashed.contains(&self.nodes[i].id()) {
                continue;
            }
            for ((slot, kind), deadline) in &d.timers {
                if best.is_none() || *deadline < best.as_ref().unwrap().0 {
                    best = Some((*deadline, i, *slot, *kind));
                }
            }
        }
        let Some((deadline, i, slot, kind)) = best else {
            return false;
        };
        self.now_ms = self.now_ms.max(deadline);
        for d in &mut self.drivers {
            d.now_ms = self.now_ms;
        }
        self.drivers[i].timers.remove(&(slot, kind));
        self.nodes[i].on_timeout(&mut self.drivers[i], slot, kind);
        true
    }

    /// Runs floods and timers until every live node decides `slot` or no
    /// activity remains. Returns the per-node decisions.
    pub fn run_to_quiescence(&mut self, slot: SlotIndex) -> BTreeMap<NodeId, Value> {
        // Bounded loop: SCP without faults decides in a handful of rounds;
        // the bound only guards against blocked configurations (it limits
        // how long we keep firing nomination-round timers into the void).
        for _ in 0..300 {
            self.flood();
            let undecided = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, n)| {
                    !self.crashed.contains(&n.id())
                        && !self.drivers[*i].decisions.contains_key(&slot)
                })
                .count();
            if undecided == 0 {
                break;
            }
            if !self.fire_next_timer() {
                break;
            }
        }
        self.decisions(slot)
    }

    /// Current decisions for `slot` across live nodes.
    pub fn decisions(&self, slot: SlotIndex) -> BTreeMap<NodeId, Value> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                self.drivers[i]
                    .decisions
                    .get(&slot)
                    .map(|v| (n.id(), v.clone()))
            })
            .collect()
    }

    /// Replaces a node's quorum slices mid-run (§3.1.1 unilateral
    /// reconfiguration).
    pub fn set_quorum_set(&mut self, id: NodeId, qset: QuorumSet) {
        let i = self.index_of(id);
        self.nodes[i].set_quorum_set(qset);
    }

    /// Access a node (for inspection).
    pub fn node(&self, id: NodeId) -> &ScpNode {
        &self.nodes[self.index_of(id)]
    }

    /// Access a node's driver (events, decisions, timers).
    pub fn driver(&self, id: NodeId) -> &HarnessDriver {
        &self.drivers[self.index_of(id)]
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Injects a raw envelope as if sent by a (possibly Byzantine) peer.
    pub fn inject(&mut self, env: &Envelope) {
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id();
            if self.crashed.contains(&id) || env.statement.node == id {
                continue;
            }
            self.nodes[i].receive(&mut self.drivers[i], env);
        }
        self.flood();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn four_nodes_reach_consensus() {
        let nodes = ids(4);
        let qset = QuorumSet::majority(nodes.clone());
        let mut net = InMemoryNetwork::new(&nodes, &qset, 1);
        for n in &nodes {
            net.propose(*n, 1, Value::new(b"v".to_vec()));
        }
        let decided = net.run_to_quiescence(1);
        assert_eq!(decided.len(), 4);
        let vals: BTreeSet<_> = decided.values().collect();
        assert_eq!(vals.len(), 1, "all nodes must agree");
    }

    #[test]
    fn divergent_proposals_converge() {
        let nodes = ids(4);
        let qset = QuorumSet::majority(nodes.clone());
        let mut net = InMemoryNetwork::new(&nodes, &qset, 2);
        for (i, n) in nodes.iter().enumerate() {
            net.propose(*n, 1, Value::new(format!("proposal-{i}").into_bytes()));
        }
        let decided = net.run_to_quiescence(1);
        assert_eq!(decided.len(), 4);
        let vals: BTreeSet<_> = decided.values().collect();
        assert_eq!(vals.len(), 1, "agreement despite divergent proposals");
    }

    #[test]
    fn survives_one_crash_with_byzantine_threshold() {
        let nodes = ids(4);
        let qset = QuorumSet::byzantine(nodes.clone()); // 3-of-4
        let mut net = InMemoryNetwork::new(&nodes, &qset, 3);
        net.crash(NodeId(3));
        for n in &nodes[..3] {
            net.propose(*n, 1, Value::new(b"v".to_vec()));
        }
        let decided = net.run_to_quiescence(1);
        assert_eq!(
            decided.len(),
            3,
            "three live nodes decide without the fourth"
        );
    }

    #[test]
    fn blocked_without_quorum() {
        let nodes = ids(4);
        let qset = QuorumSet::byzantine(nodes.clone()); // threshold 3
        let mut net = InMemoryNetwork::new(&nodes, &qset, 4);
        net.crash(NodeId(2));
        net.crash(NodeId(3));
        for n in &nodes[..2] {
            net.propose(*n, 1, Value::new(b"v".to_vec()));
        }
        let decided = net.run_to_quiescence(1);
        assert!(decided.is_empty(), "no quorum of 3 exists, must not decide");
    }

    #[test]
    fn multiple_slots_decide_independently() {
        let nodes = ids(4);
        let qset = QuorumSet::majority(nodes.clone());
        let mut net = InMemoryNetwork::new(&nodes, &qset, 5);
        for slot in 1..=3u64 {
            for n in &nodes {
                net.propose(*n, slot, Value::new(format!("ledger-{slot}").into_bytes()));
            }
            let decided = net.run_to_quiescence(slot);
            assert_eq!(decided.len(), 4, "slot {slot}");
        }
    }
}

#[cfg(test)]
mod reconfiguration_tests {
    use super::*;

    /// §3.1.1: "any node can unilaterally adjust its quorum slices at any
    /// time" — here survivors retune mid-run to recover liveness for the
    /// *next* slot after two peers die.
    #[test]
    fn unilateral_slice_retuning_restores_liveness() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let qset = QuorumSet::byzantine(nodes.clone()); // 3-of-4
        let mut net = InMemoryNetwork::new(&nodes, &qset, 42);

        // Slot 1 decides normally.
        for n in &nodes {
            net.propose(*n, 1, Value::new(b"one".to_vec()));
        }
        assert_eq!(net.run_to_quiescence(1).len(), 4);

        // Two nodes die; slot 2 blocks under the old slices.
        net.crash(NodeId(2));
        net.crash(NodeId(3));
        for n in &nodes[..2] {
            net.propose(*n, 2, Value::new(b"two".to_vec()));
        }
        assert!(
            net.run_to_quiescence(2).is_empty(),
            "3-of-4 with 2 dead must block"
        );

        // Survivors retune to 2-of-2 — no global reconfiguration round.
        let live: Vec<NodeId> = nodes[..2].to_vec();
        let retuned = QuorumSet::threshold_of(2, live.clone());
        for n in &live {
            net.set_quorum_set(*n, retuned.clone());
        }
        for n in &live {
            net.propose(*n, 3, Value::new(b"three".to_vec()));
        }
        let decided = net.run_to_quiescence(3);
        assert_eq!(decided.len(), 2, "retuned survivors decide slot 3");
        let vals: std::collections::BTreeSet<_> = decided.values().collect();
        assert_eq!(vals.len(), 1);
    }
}

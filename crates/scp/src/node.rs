//! A multi-slot SCP node: the crate's main entry point.
//!
//! [`ScpNode`] owns one [`crate::slot::Slot`] per consensus instance
//! and handles envelope verification, slot routing, quorum-set updates
//! (nodes may retune slices at any time, §3.1.1), and old-slot pruning.

use crate::driver::{Driver, ScpEvent, TimerKind};
use crate::slot::{Ctx, Slot, SlotSnapshot};
use crate::{Envelope, NodeId, QuorumSet, SlotIndex, Value};
use std::collections::BTreeMap;
use stellar_crypto::sign::KeyPair;

/// A validator participating in SCP across many slots.
pub struct ScpNode {
    id: NodeId,
    keys: KeyPair,
    qset: QuorumSet,
    slots: BTreeMap<SlotIndex, Slot>,
    /// Envelopes dropped due to bad signatures (metric / test hook).
    bad_signatures: u64,
}

impl ScpNode {
    /// Creates a node with the given identity, signing keys, and slices.
    ///
    /// # Panics
    ///
    /// Panics if `qset` is not well-formed (zero or unsatisfiable
    /// thresholds) — such configurations are always bugs.
    pub fn new(id: NodeId, keys: KeyPair, qset: QuorumSet) -> ScpNode {
        assert!(qset.is_well_formed(), "malformed quorum set for {id}");
        ScpNode {
            id,
            keys,
            qset,
            slots: BTreeMap::new(),
            bad_signatures: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's current quorum set.
    pub fn quorum_set(&self) -> &QuorumSet {
        &self.qset
    }

    /// Replaces this node's quorum slices (takes effect for subsequent
    /// messages; "any node can unilaterally adjust its quorum slices at
    /// any time", §3.1.1).
    ///
    /// # Panics
    ///
    /// Panics if `qset` is malformed.
    pub fn set_quorum_set(&mut self, qset: QuorumSet) {
        assert!(
            qset.is_well_formed(),
            "malformed quorum set for {}",
            self.id
        );
        self.qset = qset;
    }

    /// Count of envelopes rejected for bad signatures.
    pub fn bad_signature_count(&self) -> u64 {
        self.bad_signatures
    }

    /// Access a slot's state (for metrics and tests).
    pub fn slot(&self, index: SlotIndex) -> Option<&Slot> {
        self.slots.get(&index)
    }

    /// The decided value for `index`, if externalized.
    pub fn decision(&self, index: SlotIndex) -> Option<&Value> {
        self.slots.get(&index).and_then(Slot::decision)
    }

    /// Proposes `value` for slot `index`, starting nomination there.
    pub fn propose<D: Driver>(&mut self, driver: &mut D, index: SlotIndex, value: Value) {
        let slot = self.slots.entry(index).or_insert_with(|| Slot::new(index));
        let mut ctx = Ctx {
            node: self.id,
            slot: index,
            qset: &self.qset,
            keys: &self.keys,
            driver,
        };
        slot.propose(&mut ctx, value);
    }

    /// Handles an incoming envelope: verifies the signature and routes it
    /// to its slot. Returns `false` if the envelope was rejected.
    pub fn receive<D: Driver>(&mut self, driver: &mut D, envelope: &Envelope) -> bool {
        let st = &envelope.statement;
        if st.node == self.id {
            return false; // our own flooding echo
        }
        let verified = match driver.public_key(st.node) {
            Some(pk) => envelope.verify(pk),
            None => false,
        };
        if !verified {
            self.bad_signatures += 1;
            return false;
        }
        if !st.quorum_set.is_well_formed() {
            return false;
        }
        driver.on_event(ScpEvent::EnvelopeProcessed {
            slot: st.slot,
            from: st.node,
            kind: st.kind.class_name(),
        });
        let slot = self
            .slots
            .entry(st.slot)
            .or_insert_with(|| Slot::new(st.slot));
        let mut ctx = Ctx {
            node: self.id,
            slot: st.slot,
            qset: &self.qset,
            keys: &self.keys,
            driver,
        };
        slot.process(&mut ctx, st);
        true
    }

    /// This node's own latest statements for slot `index`, re-signed into
    /// envelopes. Peers exchange these when a connection is (re)established
    /// — naïve flooding has no retransmission, so without this state
    /// exchange two healed partitions would never learn what the other
    /// side voted while the link was down (stellar-core's `GET_SCP_STATE`
    /// serves the same purpose).
    pub fn own_latest_envelopes(&self, index: SlotIndex) -> Vec<Envelope> {
        let Some(slot) = self.slots.get(&index) else {
            return Vec::new();
        };
        let mut envelopes = Vec::new();
        if let Some(st) = slot.nomination().latest_statements().get(&self.id) {
            envelopes.push(Envelope::sign(st.clone(), &self.keys));
        }
        if let Some(st) = slot.ballot().latest_statements().get(&self.id) {
            envelopes.push(Envelope::sign(st.clone(), &self.keys));
        }
        envelopes
    }

    /// Replaces this node's quorum slices and re-evaluates the given
    /// slot against them. A slot stalled for want of a satisfiable slice
    /// produces no further envelopes or timeouts, so without this
    /// explicit re-step a runtime reconfiguration (the halt-and-
    /// reconfigure healing path) would never be acted upon.
    pub fn set_quorum_set_and_reevaluate<D: Driver>(
        &mut self,
        driver: &mut D,
        qset: QuorumSet,
        index: SlotIndex,
    ) {
        self.set_quorum_set(qset);
        if let Some(slot) = self.slots.get_mut(&index) {
            let mut ctx = Ctx {
                node: self.id,
                slot: index,
                qset: &self.qset,
                keys: &self.keys,
                driver,
            };
            slot.reevaluate(&mut ctx);
        }
    }

    /// Re-runs nomination for `index` after the application learned state
    /// that may unblock value validation (e.g. a tx set arrived).
    pub fn retry_nomination<D: Driver>(&mut self, driver: &mut D, index: SlotIndex) {
        if let Some(slot) = self.slots.get_mut(&index) {
            let mut ctx = Ctx {
                node: self.id,
                slot: index,
                qset: &self.qset,
                keys: &self.keys,
                driver,
            };
            slot.retry_nomination(&mut ctx);
        }
    }

    /// Handles a timer expiry previously requested through the driver.
    pub fn on_timeout<D: Driver>(&mut self, driver: &mut D, index: SlotIndex, kind: TimerKind) {
        if let Some(slot) = self.slots.get_mut(&index) {
            let mut ctx = Ctx {
                node: self.id,
                slot: index,
                qset: &self.qset,
                keys: &self.keys,
                driver,
            };
            slot.on_timeout(&mut ctx, kind);
        }
    }

    /// Snapshots every live slot, for write-ahead persistence: the
    /// embedder serializes these to its durable store *before* releasing
    /// any outbound envelope, so a crash-restarted node can never
    /// contradict a vote it already published (§3, §5.4).
    pub fn snapshot_slots(&self) -> Vec<SlotSnapshot> {
        self.slots.values().map(Slot::snapshot).collect()
    }

    /// Restores one slot from a durable snapshot (crash recovery),
    /// replacing any in-memory state for that index. Timers are re-armed
    /// through the driver and a decided slot re-notifies
    /// [`Driver::externalized`].
    pub fn restore_slot<D: Driver>(&mut self, driver: &mut D, snap: SlotSnapshot) {
        let index = snap.index;
        let mut ctx = Ctx {
            node: self.id,
            slot: index,
            qset: &self.qset,
            keys: &self.keys,
            driver,
        };
        let slot = Slot::restore(&mut ctx, snap);
        self.slots.insert(index, slot);
    }

    /// Drops state for slots below `keep_from` (ledger history is the
    /// application's job; old SCP state is only needed to help stragglers,
    /// which Stellar bounds to a small window).
    pub fn prune_slots_below(&mut self, keep_from: SlotIndex) {
        self.slots = self.slots.split_off(&keep_from);
    }

    /// Number of live slots.
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }
}

//! Emergent quorums and the generic federated-voting predicates.
//!
//! In FBA a quorum is "a non-empty set S of nodes encompassing at least one
//! quorum slice of each non-faulty member" (paper §3.1). Nodes only learn
//! other nodes' slices from the envelopes those nodes send, so quorum
//! discovery operates over whatever map of `NodeId → QuorumSet` the caller
//! has assembled from its latest messages.
//!
//! The two primitives the whole protocol rests on:
//!
//! * [`find_quorum`] — the maximal quorum inside a candidate set, found by
//!   pruning members without a satisfied slice until a fixpoint.
//! * v-blocking checks (via [`crate::QuorumSet::is_v_blocking`]) — whether a
//!   set intersects every slice of a given node.
//!
//! [`federated_accept`] and [`federated_confirm`] combine them into the
//! three-stage voting of Fig. 1: *accept* on (quorum votes-or-accepts) ∨
//! (v-blocking accepts); *confirm* on quorum accepts.

use crate::{NodeId, QuorumSet};
use std::collections::BTreeSet;

/// Source of quorum-set declarations, typically backed by the latest
/// envelope received from each node.
pub trait QuorumSetMap {
    /// The quorum set declared by `node`, if any message from it was seen.
    fn quorum_set(&self, node: NodeId) -> Option<&QuorumSet>;
}

impl QuorumSetMap for std::collections::BTreeMap<NodeId, QuorumSet> {
    fn quorum_set(&self, node: NodeId) -> Option<&QuorumSet> {
        self.get(&node)
    }
}

impl QuorumSetMap for std::collections::HashMap<NodeId, QuorumSet> {
    fn quorum_set(&self, node: NodeId) -> Option<&QuorumSet> {
        self.get(&node)
    }
}

/// Adapter exposing the quorum sets advertised inside a map of latest
/// statements (every envelope carries its sender's slices).
pub struct StatementQSets<'a>(
    pub &'a std::collections::BTreeMap<NodeId, crate::statement::Statement>,
);

impl QuorumSetMap for StatementQSets<'_> {
    fn quorum_set(&self, node: NodeId) -> Option<&QuorumSet> {
        self.0.get(&node).map(|st| &st.quorum_set)
    }
}

/// Finds the maximal quorum contained in `candidates`.
///
/// Repeatedly removes any node whose quorum set is unknown or has no slice
/// inside the current set; what survives (if non-empty) is a quorum, and it
/// is the unique maximal one (the union of two quorums inside `candidates`
/// also survives pruning).
///
/// Returns an empty set when no quorum exists inside `candidates`.
pub fn find_quorum(qsets: &impl QuorumSetMap, candidates: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    let mut current: BTreeSet<NodeId> = candidates.clone();
    loop {
        let next: BTreeSet<NodeId> = current
            .iter()
            .copied()
            .filter(|n| match qsets.quorum_set(*n) {
                Some(q) => q.is_quorum_slice(&current),
                None => false,
            })
            .collect();
        if next.len() == current.len() {
            return next;
        }
        current = next;
    }
}

/// Tests whether `nodes` is a quorum: non-empty and every member has a
/// slice inside it.
pub fn is_quorum(qsets: &impl QuorumSetMap, nodes: &BTreeSet<NodeId>) -> bool {
    !nodes.is_empty()
        && nodes.iter().all(|n| {
            qsets
                .quorum_set(*n)
                .is_some_and(|q| q.is_quorum_slice(nodes))
        })
}

/// Federated-voting *accept* check for node `self_id` (Fig. 1).
///
/// `self_id` accepts a statement iff:
/// 1. a set of nodes that all **accept** it is v-blocking for `self_id`
///    (this path can overrule `self_id`'s own contrary votes), or
/// 2. `self_id` belongs to a quorum whose members all **vote for or
///    accept** it.
///
/// `voted` and `accepted` report, from the latest statement of a given
/// node, whether that statement carries a vote for / acceptance of the
/// statement being evaluated (including implied statements — e.g. a vote
/// for `prepare⟨n,x⟩` implies votes for all `prepare⟨n′,x⟩`, `n′ ≤ n`).
pub fn federated_accept(
    self_id: NodeId,
    self_qset: &QuorumSet,
    qsets: &impl QuorumSetMap,
    known_nodes: &BTreeSet<NodeId>,
    voted: &dyn Fn(NodeId) -> bool,
    accepted: &dyn Fn(NodeId) -> bool,
) -> bool {
    // Path 1: v-blocking set of accepters.
    let accepters: BTreeSet<NodeId> = known_nodes
        .iter()
        .copied()
        .filter(|n| accepted(*n))
        .collect();
    if self_qset.is_v_blocking(&accepters) {
        return true;
    }
    // Path 2: quorum of vote-or-accept, containing self.
    let vote_or_accept: BTreeSet<NodeId> = known_nodes
        .iter()
        .copied()
        .filter(|n| voted(*n) || accepted(*n))
        .collect();
    let quorum = find_quorum(qsets, &vote_or_accept);
    quorum.contains(&self_id)
}

/// Federated-voting *confirm* check: `self_id` is in a quorum whose members
/// all accept the statement.
pub fn federated_confirm(
    self_id: NodeId,
    qsets: &impl QuorumSetMap,
    known_nodes: &BTreeSet<NodeId>,
    accepted: &dyn Fn(NodeId) -> bool,
) -> bool {
    let accepters: BTreeSet<NodeId> = known_nodes
        .iter()
        .copied()
        .filter(|n| accepted(*n))
        .collect();
    let quorum = find_quorum(qsets, &accepters);
    quorum.contains(&self_id)
}

/// Computes the transitive closure of nodes reachable from `root`'s quorum
/// set by following quorum-set references.
///
/// This is the node set a validator can "see" — the input to the
/// quorum-intersection checker of §6.2 and to Fig. 7-style topology maps.
pub fn transitive_closure(qsets: &impl QuorumSetMap, root: NodeId) -> BTreeSet<NodeId> {
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut frontier = vec![root];
    while let Some(n) = frontier.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Some(q) = qsets.quorum_set(n) {
            for v in q.all_validators() {
                if !seen.contains(&v) {
                    frontier.push(v);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn set(v: &[u32]) -> BTreeSet<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    /// All nodes share one flat qset.
    fn uniform(qset: &QuorumSet, nodes: &[u32]) -> BTreeMap<NodeId, QuorumSet> {
        nodes.iter().map(|&n| (NodeId(n), qset.clone())).collect()
    }

    #[test]
    fn find_quorum_uniform_majority() {
        let q = QuorumSet::majority(ids(&[0, 1, 2, 3]));
        let m = uniform(&q, &[0, 1, 2, 3]);
        // Any 3 of 4 nodes form a quorum.
        assert_eq!(find_quorum(&m, &set(&[0, 1, 2])), set(&[0, 1, 2]));
        // 2 nodes do not.
        assert!(find_quorum(&m, &set(&[0, 1])).is_empty());
    }

    #[test]
    fn find_quorum_prunes_unsupported_members() {
        // Node 4's slice {5} is outside the candidate set: 4 gets pruned,
        // and the remaining 3-of-4 majority survives.
        let q = QuorumSet::majority(ids(&[0, 1, 2, 3]));
        let mut m = uniform(&q, &[0, 1, 2, 3]);
        m.insert(NodeId(4), QuorumSet::threshold_of(1, ids(&[5])));
        assert_eq!(find_quorum(&m, &set(&[0, 1, 2, 4])), set(&[0, 1, 2]));
    }

    #[test]
    fn find_quorum_unknown_qset_prevents_membership() {
        let q = QuorumSet::majority(ids(&[0, 1, 2]));
        let mut m = uniform(&q, &[0, 1]);
        m.remove(&NodeId(1));
        // Node 1's qset is unknown so it cannot be in a quorum, and without
        // it node 0 has no majority slice.
        assert!(find_quorum(&m, &set(&[0, 1])).is_empty());
    }

    #[test]
    fn is_quorum_matches_definition() {
        let q = QuorumSet::majority(ids(&[0, 1, 2, 3]));
        let m = uniform(&q, &[0, 1, 2, 3]);
        assert!(is_quorum(&m, &set(&[0, 1, 2])));
        assert!(is_quorum(&m, &set(&[0, 1, 2, 3])));
        assert!(!is_quorum(&m, &set(&[0, 1])));
        assert!(!is_quorum(&m, &set(&[])));
    }

    #[test]
    fn heterogeneous_chain_quorum() {
        // v1 requires v2, v2 requires v3, v3 requires itself only:
        // {v1,v2,v3} is a quorum; {v1} alone is not.
        let mut m = BTreeMap::new();
        m.insert(NodeId(1), QuorumSet::threshold_of(2, ids(&[1, 2])));
        m.insert(NodeId(2), QuorumSet::threshold_of(2, ids(&[2, 3])));
        m.insert(NodeId(3), QuorumSet::threshold_of(1, ids(&[3])));
        assert!(is_quorum(&m, &set(&[1, 2, 3])));
        assert!(!is_quorum(&m, &set(&[1, 2])));
        // {3} alone is a quorum of node 3.
        assert!(is_quorum(&m, &set(&[3])));
        assert_eq!(find_quorum(&m, &set(&[1, 2])), set(&[]));
    }

    #[test]
    fn federated_accept_via_quorum() {
        let q = QuorumSet::majority(ids(&[0, 1, 2, 3]));
        let m = uniform(&q, &[0, 1, 2, 3]);
        let known = set(&[0, 1, 2, 3]);
        // 0,1,2 vote — that's a quorum containing 0.
        let voted = |n: NodeId| n.0 <= 2;
        let accepted = |_: NodeId| false;
        assert!(federated_accept(
            NodeId(0),
            &q,
            &m,
            &known,
            &voted,
            &accepted
        ));
        // 3 never voted and is not in the voting quorum, but the voters are
        // not unanimous accepters, so 3 cannot accept (not v-blocked, and
        // 3's quorum requires itself… actually {0,1,2,3} needs 3 to vote).
        assert!(!federated_accept(
            NodeId(3),
            &q,
            &m,
            &known,
            &|n| n.0 <= 1,
            &accepted
        ));
    }

    #[test]
    fn federated_accept_via_v_blocking_overrules() {
        // 2-of-3 qset: any 2 accepters are v-blocking, no vote needed.
        let q = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        let m = uniform(&q, &[0, 1, 2]);
        let known = set(&[0, 1, 2]);
        let accepted = |n: NodeId| n.0 >= 1;
        assert!(federated_accept(
            NodeId(0),
            &q,
            &m,
            &known,
            &|_| false,
            &accepted
        ));
    }

    #[test]
    fn federated_confirm_needs_quorum_of_accepts() {
        let q = QuorumSet::majority(ids(&[0, 1, 2, 3]));
        let m = uniform(&q, &[0, 1, 2, 3]);
        let known = set(&[0, 1, 2, 3]);
        assert!(federated_confirm(NodeId(0), &m, &known, &|n| n.0 <= 2));
        assert!(!federated_confirm(NodeId(0), &m, &known, &|n| n.0 <= 1));
        // A quorum of accepters that does not include self confirms nothing.
        assert!(!federated_confirm(NodeId(3), &m, &known, &|n| n.0 <= 2));
    }

    #[test]
    fn transitive_closure_follows_references() {
        let mut m = BTreeMap::new();
        m.insert(NodeId(0), QuorumSet::threshold_of(1, ids(&[1])));
        m.insert(NodeId(1), QuorumSet::threshold_of(1, ids(&[2])));
        m.insert(NodeId(2), QuorumSet::threshold_of(1, ids(&[2])));
        m.insert(NodeId(9), QuorumSet::threshold_of(1, ids(&[9])));
        assert_eq!(transitive_closure(&m, NodeId(0)), set(&[0, 1, 2]));
    }
}

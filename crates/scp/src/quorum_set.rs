//! Nested quorum sets: how a node declares its quorum slices.
//!
//! Stellar expresses a node's slices as a *nested quorum set* (paper §6.1):
//! a threshold `k` over `n` entries, where each entry is either a validator
//! or, recursively, another quorum set. Any choice of `k` satisfied entries
//! constitutes one quorum slice. This compact representation is what nodes
//! gossip inside every envelope, and what the quorum-intersection checker
//! in `stellar-quorum` analyzes.

use crate::NodeId;
use std::collections::BTreeSet;
use stellar_crypto::codec::{Decode, DecodeError, Encode};
use stellar_crypto::{hash_xdr, Hash256};

/// A node's declaration of its quorum slices.
///
/// `threshold` of the `validators.len() + inner.len()` entries must be
/// satisfied for a set of nodes to contain one of this node's slices.
///
/// # Examples
///
/// "Any 2 of {a, b, c}":
///
/// ```
/// use stellar_scp::{NodeId, QuorumSet};
/// let q = QuorumSet::threshold_of(2, vec![NodeId(0), NodeId(1), NodeId(2)]);
/// assert!(q.is_quorum_slice_fn(&|n| n.0 <= 1));
/// assert!(!q.is_quorum_slice_fn(&|n| n.0 == 0));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct QuorumSet {
    /// How many entries must be satisfied for a slice.
    pub threshold: u32,
    /// Direct validator entries.
    pub validators: Vec<NodeId>,
    /// Nested quorum-set entries (e.g. one per organization, Fig. 6).
    pub inner: Vec<QuorumSet>,
}

impl Encode for QuorumSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threshold.encode(out);
        self.validators.encode(out);
        self.inner.encode(out);
    }
}

impl Decode for QuorumSet {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(QuorumSet {
            threshold: u32::decode(input)?,
            validators: Vec::decode(input)?,
            inner: Vec::decode(input)?,
        })
    }
}

impl QuorumSet {
    /// Builds a flat `threshold`-of-`validators` quorum set.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` exceeds the number of validators (such a set
    /// could never be satisfied and is always a configuration bug).
    pub fn threshold_of(threshold: u32, validators: Vec<NodeId>) -> QuorumSet {
        assert!(
            threshold as usize <= validators.len(),
            "threshold {} exceeds {} entries",
            threshold,
            validators.len()
        );
        QuorumSet {
            threshold,
            validators,
            inner: Vec::new(),
        }
    }

    /// Builds a simple-majority (`⌊n/2⌋+1`) quorum set over `validators`.
    pub fn majority(validators: Vec<NodeId>) -> QuorumSet {
        let t = validators.len() as u32 / 2 + 1;
        QuorumSet::threshold_of(t, validators)
    }

    /// Builds the classic BFT threshold `n - f` where `f = ⌊(n-1)/3⌋`.
    ///
    /// For `n = 3f + 1` this is the `2f + 1` threshold the paper cites for
    /// traditional closed-membership Byzantine agreement.
    pub fn byzantine(validators: Vec<NodeId>) -> QuorumSet {
        let n = validators.len() as u32;
        let f = n.saturating_sub(1) / 3;
        QuorumSet::threshold_of(n - f, validators)
    }

    /// Number of entries (validators plus inner sets).
    pub fn num_entries(&self) -> usize {
        self.validators.len() + self.inner.len()
    }

    /// Content hash of the quorum set (used to identify qsets on the wire).
    pub fn hash(&self) -> Hash256 {
        hash_xdr(self)
    }

    /// Tests whether the nodes satisfying `pred` contain one of this set's
    /// slices: at least `threshold` entries must be satisfied.
    pub fn is_quorum_slice_fn(&self, pred: &dyn Fn(NodeId) -> bool) -> bool {
        let mut satisfied = 0u32;
        for v in &self.validators {
            if pred(*v) {
                satisfied += 1;
                if satisfied >= self.threshold {
                    return true;
                }
            }
        }
        for q in &self.inner {
            if q.is_quorum_slice_fn(pred) {
                satisfied += 1;
                if satisfied >= self.threshold {
                    return true;
                }
            }
        }
        satisfied >= self.threshold
    }

    /// Tests whether `nodes` contains one of this set's slices.
    pub fn is_quorum_slice(&self, nodes: &BTreeSet<NodeId>) -> bool {
        self.is_quorum_slice_fn(&|n| nodes.contains(&n))
    }

    /// Tests whether the nodes satisfying `pred` are **v-blocking** for the
    /// node owning this quorum set: they intersect every one of its slices.
    ///
    /// A set blocks when it hits more than `n - threshold` entries, since
    /// only `n - threshold` entries may be lost while still leaving a slice.
    pub fn is_v_blocking_fn(&self, pred: &dyn Fn(NodeId) -> bool) -> bool {
        // A threshold of 0 means "satisfied by anything": nothing blocks it.
        if self.threshold == 0 {
            return false;
        }
        let need = self.num_entries() as u32 - self.threshold + 1;
        let mut blocked = 0u32;
        for v in &self.validators {
            if pred(*v) {
                blocked += 1;
                if blocked >= need {
                    return true;
                }
            }
        }
        for q in &self.inner {
            if q.is_v_blocking_fn(pred) {
                blocked += 1;
                if blocked >= need {
                    return true;
                }
            }
        }
        blocked >= need
    }

    /// Tests whether `nodes` is v-blocking for this quorum set's owner.
    pub fn is_v_blocking(&self, nodes: &BTreeSet<NodeId>) -> bool {
        self.is_v_blocking_fn(&|n| nodes.contains(&n))
    }

    /// Fraction of this set's quorum slices that contain `v` (paper §3.2.5).
    ///
    /// Computed compositionally: a direct validator entry appears in
    /// `threshold / n` of the slices; membership via an inner set multiplies
    /// by the inner fraction. Returns a value in `[0, 1]`.
    pub fn weight(&self, v: NodeId) -> f64 {
        let n = self.num_entries() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let frac = self.threshold as f64 / n;
        for validator in &self.validators {
            if *validator == v {
                return frac;
            }
        }
        for q in &self.inner {
            let w = q.weight(v);
            if w > 0.0 {
                return frac * w;
            }
        }
        0.0
    }

    /// All validators mentioned anywhere in the nested structure.
    pub fn all_validators(&self) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        self.collect_validators(&mut out);
        out
    }

    fn collect_validators(&self, out: &mut BTreeSet<NodeId>) {
        out.extend(self.validators.iter().copied());
        for q in &self.inner {
            q.collect_validators(out);
        }
    }

    /// Structural sanity check: thresholds within range at every level and
    /// at least one entry wherever a threshold demands one.
    pub fn is_well_formed(&self) -> bool {
        if self.threshold == 0 || self.threshold as usize > self.num_entries() {
            return false;
        }
        self.inner.iter().all(QuorumSet::is_well_formed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn set(v: &[u32]) -> BTreeSet<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn flat_slice_checks() {
        let q = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        assert!(q.is_quorum_slice(&set(&[0, 1])));
        assert!(q.is_quorum_slice(&set(&[0, 1, 2])));
        assert!(!q.is_quorum_slice(&set(&[2])));
        assert!(!q.is_quorum_slice(&set(&[])));
    }

    #[test]
    fn flat_v_blocking() {
        // 2-of-3: lose 2 entries and no slice survives, so any 2 block.
        let q = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        assert!(q.is_v_blocking(&set(&[0, 1])));
        assert!(!q.is_v_blocking(&set(&[0])));
        // 3-of-3: a single node blocks.
        let q3 = QuorumSet::threshold_of(3, ids(&[0, 1, 2]));
        assert!(q3.is_v_blocking(&set(&[1])));
    }

    #[test]
    fn nested_org_structure() {
        // The paper's canonical example: agreement with 2 organizations,
        // each an inner 2-of-3 set; require both orgs.
        let org_a = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        let org_b = QuorumSet::threshold_of(2, ids(&[3, 4, 5]));
        let q = QuorumSet {
            threshold: 2,
            validators: vec![],
            inner: vec![org_a, org_b],
        };
        assert!(q.is_quorum_slice(&set(&[0, 1, 3, 4])));
        assert!(!q.is_quorum_slice(&set(&[0, 1, 2]))); // only one org
                                                       // Two nodes of one org block (org can no longer reach 2-of-3 …
                                                       // actually blocking needs to hit *every* slice: 2 nodes of org A
                                                       // block org A, and since both orgs are required, that blocks all).
        assert!(q.is_v_blocking(&set(&[0, 1])));
        assert!(!q.is_v_blocking(&set(&[0, 3])));
    }

    #[test]
    fn weight_flat_and_nested() {
        let q = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        assert!((q.weight(NodeId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.weight(NodeId(9)), 0.0);

        let org_a = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        let nested = QuorumSet {
            threshold: 1,
            validators: vec![NodeId(7)],
            inner: vec![org_a],
        };
        // Entry fraction 1/2, times inner 2/3.
        assert!((nested.weight(NodeId(0)) - 0.5 * 2.0 / 3.0).abs() < 1e-12);
        assert!((nested.weight(NodeId(7)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byzantine_threshold() {
        let q = QuorumSet::byzantine(ids(&[0, 1, 2, 3]));
        assert_eq!(q.threshold, 3); // n=4 → f=1 → 2f+1=3
        let q7 = QuorumSet::byzantine(ids(&[0, 1, 2, 3, 4, 5, 6]));
        assert_eq!(q7.threshold, 5); // n=7 → f=2 → 5
    }

    #[test]
    fn well_formedness() {
        assert!(QuorumSet::threshold_of(1, ids(&[0])).is_well_formed());
        let zero = QuorumSet {
            threshold: 0,
            validators: vec![NodeId(0)],
            inner: vec![],
        };
        assert!(!zero.is_well_formed());
        let hollow = QuorumSet {
            threshold: 1,
            validators: vec![NodeId(0)],
            inner: vec![QuorumSet {
                threshold: 5,
                validators: ids(&[1, 2]),
                inner: vec![],
            }],
        };
        assert!(!hollow.is_well_formed());
    }

    #[test]
    fn hash_distinguishes_structures() {
        let a = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        let b = QuorumSet::threshold_of(3, ids(&[0, 1, 2]));
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), a.clone().hash());
    }

    #[test]
    fn codec_roundtrip() {
        use stellar_crypto::codec::{Decode, Encode};
        let org_a = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        let q = QuorumSet {
            threshold: 2,
            validators: ids(&[9]),
            inner: vec![org_a],
        };
        assert_eq!(QuorumSet::from_bytes(&q.to_bytes()).unwrap(), q);
    }

    #[test]
    fn all_validators_transitive() {
        let org_a = QuorumSet::threshold_of(2, ids(&[0, 1, 2]));
        let q = QuorumSet {
            threshold: 2,
            validators: ids(&[9]),
            inner: vec![org_a],
        };
        assert_eq!(q.all_validators(), set(&[0, 1, 2, 9]));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn unsatisfiable_threshold_panics() {
        let _ = QuorumSet::threshold_of(4, ids(&[0, 1, 2]));
    }
}

//! Federated leader selection for nomination (paper §3.2.5).
//!
//! Round-robin leader rotation is impossible with open membership, so SCP
//! picks nomination leaders probabilistically, weighted by how much of a
//! node's quorum slices a candidate appears in:
//!
//! * `weight(u, v)` — the fraction of `u`'s slices containing `v`;
//! * `neighbors(u)` — `{ v | H0(v) < hmax · weight(u, v) }`, so heavily
//!   trusted nodes are (probabilistically) eligible and a node running
//!   1,000 validators gains no advantage over one running 4 (the paper's
//!   Europe/China example);
//! * `priority(v) = H1(v)` — the per-round lottery among neighbors.
//!
//! Each round adds the highest-priority neighbor to the leader set, so
//! leader failure is healed by timeout-driven round advancement. The hash
//! family is `Hi(m) = SHA256(i ∥ slot ∥ round ∥ m)` exactly as in the
//! paper, with the 2²⁵⁶ range mapped to `u64` prefixes.

use crate::{NodeId, QuorumSet, SlotIndex};
use std::collections::BTreeSet;
use stellar_crypto::hash_concat;

/// `Hi(node)` from the paper, reduced to a `u64`: SHA-256 over
/// `(i, slot, round, node)`.
fn h(i: u8, slot: SlotIndex, round: u32, node: NodeId) -> u64 {
    hash_concat(&[
        &[i],
        &slot.to_be_bytes(),
        &round.to_be_bytes(),
        &node.0.to_be_bytes(),
    ])
    .prefix_u64()
}

/// `weight(u, v)` where `u` owns `qset`: the fraction of `u`'s slices
/// containing `v`. A node always fully trusts itself (`weight = 1`).
pub fn node_weight(self_id: NodeId, qset: &QuorumSet, v: NodeId) -> f64 {
    if v == self_id {
        1.0
    } else {
        qset.weight(v)
    }
}

/// Tests `H0(v) < hmax · weight(u, v)`: is `v` one of `u`'s neighbors for
/// this `(slot, round)`?
pub fn is_neighbor(
    self_id: NodeId,
    qset: &QuorumSet,
    slot: SlotIndex,
    round: u32,
    v: NodeId,
) -> bool {
    let w = node_weight(self_id, qset, v);
    if w <= 0.0 {
        return false;
    }
    // hmax = 2⁶⁴ here; compare in f64, which is exact enough for a lottery.
    (h(0, slot, round, v) as f64) < w * (u64::MAX as f64)
}

/// `priority(v) = H1(v)` for this `(slot, round)`.
pub fn priority(slot: SlotIndex, round: u32, v: NodeId) -> u64 {
    h(1, slot, round, v)
}

/// The candidate pool for leader selection: every validator named in the
/// quorum set, plus the node itself.
pub fn candidate_pool(self_id: NodeId, qset: &QuorumSet) -> BTreeSet<NodeId> {
    let mut pool = qset.all_validators();
    pool.insert(self_id);
    pool
}

/// Picks the leader added in `round`: the highest-priority neighbor, or —
/// if the neighbor lottery came up empty — the node minimizing
/// `H0(v) / weight(u, v)` (the paper's fallback).
pub fn round_leader(self_id: NodeId, qset: &QuorumSet, slot: SlotIndex, round: u32) -> NodeId {
    let pool = candidate_pool(self_id, qset);
    let neighbors: Vec<NodeId> = pool
        .iter()
        .copied()
        .filter(|v| is_neighbor(self_id, qset, slot, round, *v))
        .collect();
    if let Some(best) = neighbors
        .iter()
        .copied()
        .max_by_key(|v| (priority(slot, round, *v), *v))
    {
        return best;
    }
    // Fallback: minimize H0(v)/weight(u,v) over nodes with positive weight.
    pool.iter()
        .copied()
        .filter(|v| node_weight(self_id, qset, *v) > 0.0)
        .min_by(|a, b| {
            let ka = h(0, slot, round, *a) as f64 / node_weight(self_id, qset, *a);
            let kb = h(0, slot, round, *b) as f64 / node_weight(self_id, qset, *b);
            ka.partial_cmp(&kb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        })
        .unwrap_or(self_id)
}

/// The cumulative leader set after `round` rounds (rounds are 1-based).
///
/// "To accommodate failure, the set of leaders keeps growing as timeouts
/// occur" — the set is the union of each round's pick.
pub fn leaders_up_to(
    self_id: NodeId,
    qset: &QuorumSet,
    slot: SlotIndex,
    round: u32,
) -> BTreeSet<NodeId> {
    (1..=round)
        .map(|r| round_leader(self_id, qset, slot, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn self_is_always_full_weight() {
        let q = QuorumSet::threshold_of(2, ids(&[1, 2, 3]));
        assert_eq!(node_weight(NodeId(0), &q, NodeId(0)), 1.0);
        assert!(node_weight(NodeId(0), &q, NodeId(1)) < 1.0);
        assert_eq!(node_weight(NodeId(0), &q, NodeId(99)), 0.0);
    }

    #[test]
    fn round_leader_is_deterministic_and_in_pool() {
        let q = QuorumSet::threshold_of(3, ids(&[0, 1, 2, 3]));
        let pool = candidate_pool(NodeId(0), &q);
        for round in 1..20 {
            let l1 = round_leader(NodeId(0), &q, 7, round);
            let l2 = round_leader(NodeId(0), &q, 7, round);
            assert_eq!(l1, l2);
            assert!(pool.contains(&l1));
        }
    }

    #[test]
    fn leaders_accumulate_over_rounds() {
        let q = QuorumSet::threshold_of(3, ids(&[0, 1, 2, 3, 4]));
        let l1 = leaders_up_to(NodeId(0), &q, 3, 1);
        let l5 = leaders_up_to(NodeId(0), &q, 3, 5);
        assert_eq!(l1.len(), 1);
        assert!(l5.is_superset(&l1));
        assert!(l5.len() <= 5);
    }

    #[test]
    fn identical_qsets_agree_on_leaders() {
        // Nodes sharing the same slot/round/qset compute overlapping leader
        // choices for nodes they both weight equally — with a full-mesh
        // symmetric qset the leader is identical across nodes except for
        // the self-weight boost; verify the common case where the elected
        // leader is weighted 3/4 for everyone.
        let all = ids(&[0, 1, 2, 3]);
        let q = QuorumSet::threshold_of(3, all.clone());
        // Count distinct per-node leader picks; they should rarely diverge.
        let mut distinct: BTreeSet<NodeId> = BTreeSet::new();
        for me in &all {
            distinct.insert(round_leader(*me, &q, 11, 1));
        }
        assert!(
            distinct.len() <= 2,
            "leader choice should mostly coincide: {distinct:?}"
        );
    }

    #[test]
    fn different_slots_rotate_leaders() {
        let q = QuorumSet::threshold_of(4, ids(&[0, 1, 2, 3, 4, 5, 6]));
        let mut seen = BTreeSet::new();
        for slot in 0..50 {
            seen.insert(round_leader(NodeId(0), &q, slot, 1));
        }
        assert!(
            seen.len() > 2,
            "leader should rotate across slots, got {seen:?}"
        );
    }

    #[test]
    fn weight_zero_nodes_never_lead() {
        let q = QuorumSet::threshold_of(1, ids(&[1]));
        for slot in 0..50 {
            let l = round_leader(NodeId(0), &q, slot, 1);
            assert!(l == NodeId(0) || l == NodeId(1));
        }
    }
}

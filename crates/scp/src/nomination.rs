//! The nomination protocol (paper §3.2.2).
//!
//! Nomination runs federated voting on `nominate x` statements. Unlike
//! ballot statements, nominations never contradict each other — any number
//! of values can be (and usually are) confirmed nominated. The guarantees
//! that matter:
//!
//! * once a node confirms any nominate statement it **stops voting for new
//!   values**, so the confirmed set stays finite;
//! * confirmed statements spread through intact sets (cascade theorem), so
//!   intact nodes eventually converge on the same candidate set and hence
//!   the same composite value.
//!
//! To keep the number of distinct nominated values small, only *leaders*
//! (chosen by [`crate::leader`]) introduce new values; everyone else echoes
//! their leaders' votes. Leader-set growth on timeout tolerates leader
//! failure.

use crate::driver::{Driver, ScpEvent, TimerKind, Validity};
use crate::leader;
use crate::quorum::{federated_accept, federated_confirm, StatementQSets};
use crate::slot::Ctx;
use crate::statement::{Statement, StatementKind};
use crate::{Envelope, NodeId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Durable image of a [`NominationProtocol`], serialized via the
/// hand-rolled codec for write-ahead persistence (§5.4): a node must be
/// able to rebuild its nomination votes after a crash, or a restart could
/// make it vote for new values it already stopped voting for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NominationSnapshot {
    /// See [`NominationProtocol::started`].
    pub started: bool,
    /// Whether balloting already shut nomination down.
    pub stopped: bool,
    /// Current nomination round.
    pub round: u32,
    /// Leader set accumulated so far.
    pub leaders: BTreeSet<NodeId>,
    /// Values voted `nominate x`.
    pub voted: BTreeSet<Value>,
    /// Values accepted as nominated.
    pub accepted: BTreeSet<Value>,
    /// Confirmed-nominated candidate set.
    pub candidates: BTreeSet<Value>,
    /// Latest nominate statement per node (including our own).
    pub latest: BTreeMap<NodeId, Statement>,
    /// Our proposed value, if any.
    pub proposed: Option<Value>,
    /// Round-timeout count.
    pub timeouts: u64,
}

stellar_crypto::impl_codec_struct!(NominationSnapshot {
    started,
    stopped,
    round,
    leaders,
    voted,
    accepted,
    candidates,
    latest,
    proposed,
    timeouts,
});

/// Per-slot nomination state machine.
#[derive(Debug, Default)]
pub struct NominationProtocol {
    started: bool,
    stopped: bool,
    round: u32,
    leaders: BTreeSet<NodeId>,
    /// Values this node voted `nominate x` for.
    voted: BTreeSet<Value>,
    /// Values accepted as nominated.
    accepted: BTreeSet<Value>,
    /// Values confirmed nominated — the candidate set fed to balloting.
    candidates: BTreeSet<Value>,
    /// Latest nominate statement per node (including our own).
    latest: BTreeMap<NodeId, Statement>,
    /// The locally proposed value (from the application), if we lead.
    proposed: Option<Value>,
    /// Counts round timeouts, for Fig. 8-style metrics.
    timeouts: u64,
}

impl NominationProtocol {
    /// Creates an idle nomination protocol.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current confirmed-nominated candidate set.
    pub fn candidates(&self) -> &BTreeSet<Value> {
        &self.candidates
    }

    /// Current leader set (grows with rounds).
    pub fn leaders(&self) -> &BTreeSet<NodeId> {
        &self.leaders
    }

    /// Number of round timeouts experienced so far on this slot.
    pub fn timeout_count(&self) -> u64 {
        self.timeouts
    }

    /// Whether nomination has begun.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Latest nomination statements seen, keyed by node.
    pub fn latest_statements(&self) -> &BTreeMap<NodeId, Statement> {
        &self.latest
    }

    /// Captures the full nomination state for durable storage.
    pub fn snapshot(&self) -> NominationSnapshot {
        NominationSnapshot {
            started: self.started,
            stopped: self.stopped,
            round: self.round,
            leaders: self.leaders.clone(),
            voted: self.voted.clone(),
            accepted: self.accepted.clone(),
            candidates: self.candidates.clone(),
            latest: self.latest.clone(),
            proposed: self.proposed.clone(),
            timeouts: self.timeouts,
        }
    }

    /// Rebuilds nomination state from a durable snapshot after a restart,
    /// re-arming the round timer (timers are process-local and do not
    /// survive a crash).
    pub fn restore<D: Driver>(ctx: &mut Ctx<'_, D>, snap: NominationSnapshot) -> Self {
        let np = NominationProtocol {
            started: snap.started,
            stopped: snap.stopped,
            round: snap.round,
            leaders: snap.leaders,
            voted: snap.voted,
            accepted: snap.accepted,
            candidates: snap.candidates,
            latest: snap.latest,
            proposed: snap.proposed,
            timeouts: snap.timeouts,
        };
        if np.started && !np.stopped {
            let delay = ctx.driver.nomination_timeout(np.round);
            ctx.driver
                .set_timer(ctx.slot, TimerKind::Nomination, Some(delay));
        }
        np
    }

    /// Begins nominating `proposed` (round 1).
    ///
    /// Returns `true` if the candidate set changed (it can, if statements
    /// from peers arrived before we started).
    pub fn start<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, proposed: Value) -> bool {
        if self.started {
            // A fresh proposal can still be adopted if we lead and haven't
            // confirmed candidates yet.
            self.proposed = Some(proposed);
            let changed = self.add_leader_votes(ctx);
            if changed {
                self.emit(ctx);
            }
            return self.run_federated_voting(ctx);
        }
        self.started = true;
        self.round = 1;
        self.proposed = Some(proposed);
        self.leaders.insert(leader::round_leader(
            ctx.node, ctx.qset, ctx.slot, self.round,
        ));
        ctx.driver
            .on_event(ScpEvent::NominationStarted { slot: ctx.slot });
        ctx.driver.on_event(ScpEvent::NominationRoundStarted {
            slot: ctx.slot,
            round: self.round,
        });
        self.add_leader_votes(ctx);
        self.emit(ctx);
        let delay = ctx.driver.nomination_timeout(self.round);
        ctx.driver
            .set_timer(ctx.slot, TimerKind::Nomination, Some(delay));
        self.run_federated_voting(ctx)
    }

    /// Handles a nomination round timeout: widen the leader set and re-arm.
    ///
    /// Returns `true` if the candidate set changed.
    pub fn on_timeout<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if !self.started || self.stopped {
            return false;
        }
        self.timeouts += 1;
        ctx.driver.on_event(ScpEvent::TimeoutFired {
            slot: ctx.slot,
            kind: TimerKind::Nomination,
        });
        self.round += 1;
        ctx.driver.on_event(ScpEvent::NominationRoundStarted {
            slot: ctx.slot,
            round: self.round,
        });
        self.leaders.insert(leader::round_leader(
            ctx.node, ctx.qset, ctx.slot, self.round,
        ));
        if self.add_leader_votes(ctx) {
            self.emit(ctx);
        }
        let delay = ctx.driver.nomination_timeout(self.round);
        ctx.driver
            .set_timer(ctx.slot, TimerKind::Nomination, Some(delay));
        self.run_federated_voting(ctx)
    }

    /// Re-evaluates leader votes and federated voting after the embedder
    /// learned new application state (e.g. a transaction set arrived and a
    /// previously unvalidatable value can now be voted for).
    ///
    /// Returns `true` if the candidate set changed.
    pub fn retry<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if !self.started || self.stopped {
            return false;
        }
        if self.add_leader_votes(ctx) {
            self.emit(ctx);
        }
        self.run_federated_voting(ctx)
    }

    /// Stops nominating (called once balloting decides); cancels the round
    /// timer and suppresses further votes.
    pub fn stop<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        if !self.stopped {
            self.stopped = true;
            ctx.driver.set_timer(ctx.slot, TimerKind::Nomination, None);
        }
    }

    /// Processes a peer's nomination statement.
    ///
    /// Returns `true` if the candidate set changed (the slot then rebuilds
    /// the composite value).
    pub fn process<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, st: &Statement) -> bool {
        debug_assert!(st.kind.is_nomination());
        match self.latest.get(&st.node) {
            // Same kind + different quorum set = the sender retuned its
            // slices at runtime (§3.1.1); adopt the refresh or quorum
            // evaluation stays pinned to its abandoned configuration.
            Some(old)
                if !st.kind.is_newer_than(&old.kind)
                    && (old.kind != st.kind || old.quorum_set == st.quorum_set) =>
            {
                return false;
            }
            _ => {}
        }
        self.latest.insert(st.node, st.clone());
        let mut emitted_change = false;
        if self.started && self.leaders.contains(&st.node) {
            emitted_change = self.add_leader_votes(ctx);
        }
        if emitted_change {
            self.emit(ctx);
        }
        if self.started {
            self.run_federated_voting(ctx)
        } else {
            false
        }
    }

    /// Votes for our own value (if we lead) and echoes leaders' votes.
    ///
    /// Per §3.2.2, no new votes once a candidate is confirmed. Returns
    /// whether the vote set grew.
    fn add_leader_votes<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if !self.candidates.is_empty() || self.stopped {
            return false;
        }
        let mut new_votes: Vec<Value> = Vec::new();
        if self.leaders.contains(&ctx.node) {
            if let Some(v) = self.proposed.clone() {
                if !self.voted.contains(&v) {
                    new_votes.push(v);
                }
            }
        }
        for l in &self.leaders {
            if *l == ctx.node {
                continue;
            }
            if let Some(st) = self.latest.get(l) {
                if let StatementKind::Nominate { voted, accepted } = &st.kind {
                    for v in voted.iter().chain(accepted.iter()) {
                        if !self.voted.contains(v) {
                            new_votes.push(v.clone());
                        }
                    }
                }
            }
        }
        let mut grew = false;
        for v in new_votes {
            if ctx.driver.validate_value(ctx.slot, &v, true) == Validity::FullyValidated
                && self.voted.insert(v)
            {
                grew = true;
            }
        }
        grew
    }

    /// Runs federated voting over every value mentioned by anyone, to a
    /// fixpoint. Returns `true` if the candidate set changed.
    fn run_federated_voting<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        let mut candidates_changed = false;
        let mut state_changed = false;
        loop {
            let mut progressed = false;
            let known: BTreeSet<NodeId> = self.latest.keys().copied().collect();
            let mentioned: BTreeSet<Value> = self
                .latest
                .values()
                .filter_map(|st| match &st.kind {
                    StatementKind::Nominate { voted, accepted } => {
                        Some(voted.iter().chain(accepted.iter()).cloned())
                    }
                    _ => None,
                })
                .flatten()
                .collect();

            for v in &mentioned {
                if !self.accepted.contains(v) {
                    let qsets = StatementQSets(&self.latest);
                    let ok = federated_accept(
                        ctx.node,
                        ctx.qset,
                        &qsets,
                        &known,
                        &|n| {
                            self.latest
                                .get(&n)
                                .is_some_and(|s| s.kind.nominates_vote(v))
                        },
                        &|n| {
                            self.latest
                                .get(&n)
                                .is_some_and(|s| s.kind.nominates_accept(v))
                        },
                    );
                    if ok && ctx.driver.validate_value(ctx.slot, v, false) != Validity::Invalid {
                        self.accepted.insert(v.clone());
                        progressed = true;
                        state_changed = true;
                    }
                }
                if self.accepted.contains(v) && !self.candidates.contains(v) {
                    let qsets = StatementQSets(&self.latest);
                    let ok = federated_confirm(ctx.node, &qsets, &known, &|n| {
                        self.latest
                            .get(&n)
                            .is_some_and(|s| s.kind.nominates_accept(v))
                    });
                    if ok {
                        self.candidates.insert(v.clone());
                        progressed = true;
                        state_changed = true;
                        candidates_changed = true;
                        ctx.driver.on_event(ScpEvent::NewCandidate {
                            slot: ctx.slot,
                            value: v.clone(),
                        });
                    }
                }
            }
            if !progressed {
                break;
            }
            // Publish our new accepts immediately so they count toward the
            // confirmation quorum evaluated on the next pass.
            self.emit(ctx);
        }
        if state_changed {
            self.emit(ctx);
        }
        candidates_changed
    }

    /// Re-broadcasts our latest nomination statement under the node's
    /// *current* quorum set even though the vote sets are unchanged.
    /// Counterpart of the ballot-side refresh: after a runtime slice
    /// retune the new configuration only takes effect once a statement
    /// advertising it circulates.
    pub fn refresh_qset<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        if self.voted.is_empty() && self.accepted.is_empty() {
            return;
        }
        let st = Statement {
            node: ctx.node,
            slot: ctx.slot,
            quorum_set: ctx.qset.clone(),
            kind: StatementKind::Nominate {
                voted: self.voted.clone(),
                accepted: self.accepted.clone(),
            },
        };
        if self
            .latest
            .get(&ctx.node)
            .is_some_and(|old| old.quorum_set == st.quorum_set)
        {
            return;
        }
        self.latest.insert(ctx.node, st.clone());
        let env = Envelope::sign(st, ctx.keys);
        ctx.driver.emit_envelope(&env);
    }

    /// Broadcasts our current nomination statement if it carries anything,
    /// recording it in `latest` so our own votes count toward quorums.
    fn emit<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        if self.voted.is_empty() && self.accepted.is_empty() {
            return;
        }
        let st = Statement {
            node: ctx.node,
            slot: ctx.slot,
            quorum_set: ctx.qset.clone(),
            kind: StatementKind::Nominate {
                voted: self.voted.clone(),
                accepted: self.accepted.clone(),
            },
        };
        // Skip if identical to what we last sent.
        if self.latest.get(&ctx.node).map(|s| &s.kind) == Some(&st.kind) {
            return;
        }
        self.latest.insert(ctx.node, st.clone());
        let env = Envelope::sign(st, ctx.keys);
        ctx.driver.emit_envelope(&env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Validity;
    use crate::slot::Ctx;
    use crate::{QuorumSet, SlotIndex};
    use std::time::Duration;
    use stellar_crypto::sign::KeyPair;

    /// Driver that can mark chosen values invalid.
    #[derive(Default)]
    struct TestDriver {
        emitted: Vec<Envelope>,
        events: Vec<ScpEvent>,
        timers: Vec<(SlotIndex, TimerKind, Option<Duration>)>,
        invalid: BTreeSet<Value>,
    }

    impl Driver for TestDriver {
        fn validate_value(&mut self, _: SlotIndex, v: &Value, _: bool) -> Validity {
            if self.invalid.contains(v) {
                Validity::Invalid
            } else {
                Validity::FullyValidated
            }
        }
        fn combine_candidates(&mut self, _: SlotIndex, c: &BTreeSet<Value>) -> Option<Value> {
            c.iter().next_back().cloned()
        }
        fn emit_envelope(&mut self, envelope: &Envelope) {
            self.emitted.push(envelope.clone());
        }
        fn set_timer(&mut self, slot: SlotIndex, kind: TimerKind, delay: Option<Duration>) {
            self.timers.push((slot, kind, delay));
        }
        fn externalized(&mut self, _: SlotIndex, _: &Value) {}
        fn public_key(&self, node: NodeId) -> Option<stellar_crypto::sign::PublicKey> {
            Some(KeyPair::from_seed(u64::from(node.0)).public())
        }
        fn on_event(&mut self, event: ScpEvent) {
            self.events.push(event);
        }
    }

    fn val(s: &str) -> Value {
        Value::new(s.as_bytes().to_vec())
    }

    fn qset4() -> QuorumSet {
        QuorumSet::majority((0..4).map(NodeId).collect())
    }

    fn nominate_stmt(node: u32, voted: &[Value], accepted: &[Value]) -> Statement {
        Statement {
            node: NodeId(node),
            slot: 1,
            quorum_set: qset4(),
            kind: StatementKind::Nominate {
                voted: voted.iter().cloned().collect(),
                accepted: accepted.iter().cloned().collect(),
            },
        }
    }

    struct Fixture {
        np: NominationProtocol,
        driver: TestDriver,
        keys: KeyPair,
        qset: QuorumSet,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                np: NominationProtocol::new(),
                driver: TestDriver::default(),
                keys: KeyPair::from_seed(0),
                qset: qset4(),
            }
        }
        fn with_ctx<R>(
            &mut self,
            f: impl FnOnce(&mut NominationProtocol, &mut Ctx<'_, TestDriver>) -> R,
        ) -> R {
            let mut ctx = Ctx {
                node: NodeId(0),
                slot: 1,
                qset: &self.qset,
                keys: &self.keys,
                driver: &mut self.driver,
            };
            f(&mut self.np, &mut ctx)
        }
    }

    #[test]
    fn start_arms_round_timer_and_reports_event() {
        let mut fx = Fixture::new();
        fx.with_ctx(|np, ctx| np.start(ctx, val("v")));
        assert!(fx.np.started());
        assert!(fx
            .driver
            .events
            .iter()
            .any(|e| matches!(e, ScpEvent::NominationStarted { slot: 1 })));
        assert!(fx
            .driver
            .timers
            .iter()
            .any(|(_, k, d)| *k == TimerKind::Nomination && d.is_some()));
    }

    #[test]
    fn quorum_of_votes_confirms_candidate() {
        let mut fx = Fixture::new();
        let v = val("x");
        fx.with_ctx(|np, ctx| np.start(ctx, v.clone()));
        // Peers vote then accept; confirmation follows the quorum.
        fx.with_ctx(|np, ctx| {
            np.process(ctx, &nominate_stmt(1, std::slice::from_ref(&v), &[]));
            np.process(ctx, &nominate_stmt(2, std::slice::from_ref(&v), &[]));
            np.process(
                ctx,
                &nominate_stmt(1, std::slice::from_ref(&v), std::slice::from_ref(&v)),
            );
            np.process(
                ctx,
                &nominate_stmt(2, std::slice::from_ref(&v), std::slice::from_ref(&v)),
            );
        });
        assert!(
            fx.np.candidates().contains(&v),
            "candidates: {:?}",
            fx.np.candidates()
        );
        assert!(fx
            .driver
            .events
            .iter()
            .any(|e| matches!(e, ScpEvent::NewCandidate { .. })));
    }

    #[test]
    fn no_new_votes_after_first_candidate() {
        let mut fx = Fixture::new();
        let v = val("x");
        fx.with_ctx(|np, ctx| np.start(ctx, v.clone()));
        fx.with_ctx(|np, ctx| {
            np.process(
                ctx,
                &nominate_stmt(1, std::slice::from_ref(&v), std::slice::from_ref(&v)),
            );
            np.process(
                ctx,
                &nominate_stmt(2, std::slice::from_ref(&v), std::slice::from_ref(&v)),
            );
        });
        assert!(fx.np.candidates().contains(&v));
        // A leaderless new value arrives; even a retry must not vote it.
        let fresh = val("late");
        fx.with_ctx(|np, ctx| {
            np.process(ctx, &nominate_stmt(1, std::slice::from_ref(&fresh), &[]));
            np.retry(ctx);
        });
        let own = fx.np.latest_statements()[&NodeId(0)].clone();
        match own.kind {
            StatementKind::Nominate { voted, .. } => {
                assert!(
                    !voted.contains(&fresh),
                    "must not vote new values after confirming"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_values_never_voted_or_accepted() {
        let mut fx = Fixture::new();
        let bad = val("bad");
        fx.driver.invalid.insert(bad.clone());
        fx.with_ctx(|np, ctx| np.start(ctx, val("ok")));
        fx.with_ctx(|np, ctx| {
            np.process(ctx, &nominate_stmt(1, std::slice::from_ref(&bad), &[]));
            np.process(ctx, &nominate_stmt(2, std::slice::from_ref(&bad), &[]));
            np.process(ctx, &nominate_stmt(3, std::slice::from_ref(&bad), &[]));
        });
        let own = fx.np.latest_statements().get(&NodeId(0)).cloned();
        if let Some(st) = own {
            match st.kind {
                StatementKind::Nominate { voted, accepted } => {
                    assert!(!voted.contains(&bad));
                    assert!(!accepted.contains(&bad));
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(!fx.np.candidates().contains(&bad));
    }

    #[test]
    fn round_timeout_grows_leader_set() {
        let mut fx = Fixture::new();
        fx.with_ctx(|np, ctx| np.start(ctx, val("v")));
        let l1 = fx.np.leaders().len();
        for _ in 0..6 {
            fx.with_ctx(|np, ctx| np.on_timeout(ctx));
        }
        assert!(fx.np.leaders().len() >= l1, "leader set only grows");
        assert_eq!(fx.np.timeout_count(), 6);
        assert_eq!(
            fx.driver
                .events
                .iter()
                .filter(|e| matches!(
                    e,
                    ScpEvent::TimeoutFired {
                        kind: TimerKind::Nomination,
                        ..
                    }
                ))
                .count(),
            6
        );
    }

    #[test]
    fn stop_cancels_timer_and_freezes_votes() {
        let mut fx = Fixture::new();
        fx.with_ctx(|np, ctx| np.start(ctx, val("v")));
        fx.with_ctx(|np, ctx| np.stop(ctx));
        assert!(fx
            .driver
            .timers
            .iter()
            .any(|(_, k, d)| *k == TimerKind::Nomination && d.is_none()));
        let before = fx.np.latest_statements().get(&NodeId(0)).cloned();
        fx.with_ctx(|np, ctx| {
            assert!(!np.on_timeout(ctx));
            np.retry(ctx);
        });
        let after = fx.np.latest_statements().get(&NodeId(0)).cloned();
        assert_eq!(before.map(|s| s.kind), after.map(|s| s.kind));
    }

    #[test]
    fn v_blocking_accept_pulls_in_unvoted_value() {
        let mut fx = Fixture::new();
        fx.with_ctx(|np, ctx| np.start(ctx, val("mine")));
        let v = val("theirs");
        // {1,2} accepting is v-blocking for 3-of-4 slices.
        fx.with_ctx(|np, ctx| {
            np.process(
                ctx,
                &nominate_stmt(1, std::slice::from_ref(&v), std::slice::from_ref(&v)),
            );
            np.process(
                ctx,
                &nominate_stmt(2, std::slice::from_ref(&v), std::slice::from_ref(&v)),
            );
        });
        let own = fx.np.latest_statements()[&NodeId(0)].clone();
        match own.kind {
            StatementKind::Nominate { accepted, .. } => {
                assert!(accepted.contains(&v), "v-blocking accept must pull us in");
            }
            other => panic!("{other:?}"),
        }
    }
}

//! Envelope forgery for Byzantine-adversary testing (feature `forge`).
//!
//! Honest nodes only ever emit statements their protocol state machines
//! derived; an adversary needs to *construct* arbitrary — including
//! mutually contradictory — statements and sign them with its real key, so
//! that honest receivers exercise their full verification and federated
//! voting paths on well-formed but malicious input. This module is that
//! constructor set. It is compiled only under the `forge` cargo feature,
//! which `stellar-chaos` enables; production-shaped builds of the
//! consensus crate carry no forgery surface.
//!
//! Nothing here can break safety by itself: every forged envelope still
//! carries the adversary's own signature over its own node id, so honest
//! nodes attribute the statements correctly. Forgery of *other* nodes'
//! envelopes is impossible without their keys — exactly the paper's §3
//! threat model, where Byzantine nodes say arbitrary things but cannot
//! impersonate.

use crate::statement::{Ballot, Statement, StatementKind};
use crate::{Envelope, NodeId, QuorumSet, SlotIndex, Value};
use std::collections::BTreeSet;
use stellar_crypto::sign::KeyPair;

/// Signs an arbitrary nomination statement: the adversary claims to have
/// voted (and optionally accepted) exactly the given value sets.
pub fn nominate(
    keys: &KeyPair,
    node: NodeId,
    slot: SlotIndex,
    quorum_set: QuorumSet,
    voted: BTreeSet<Value>,
    accepted: BTreeSet<Value>,
) -> Envelope {
    Envelope::sign(
        Statement {
            node,
            slot,
            quorum_set,
            kind: StatementKind::Nominate { voted, accepted },
        },
        keys,
    )
}

/// Signs a prepare statement for an arbitrary ballot.
pub fn prepare(
    keys: &KeyPair,
    node: NodeId,
    slot: SlotIndex,
    quorum_set: QuorumSet,
    ballot: Ballot,
    prepared: Option<Ballot>,
) -> Envelope {
    let h_n = prepared.as_ref().map(|p| p.counter).unwrap_or(0);
    Envelope::sign(
        Statement {
            node,
            slot,
            quorum_set,
            kind: StatementKind::Prepare {
                ballot,
                prepared,
                prepared_prime: None,
                c_n: 0,
                h_n,
            },
        },
        keys,
    )
}

/// Signs a confirm statement claiming `commit⟨n, ballot.value⟩` was
/// accepted for `c_n ≤ n ≤ h_n` — the raw material of split-confirmation
/// attacks (different values confirmed toward different peers).
pub fn confirm(
    keys: &KeyPair,
    node: NodeId,
    slot: SlotIndex,
    quorum_set: QuorumSet,
    ballot: Ballot,
    c_n: u32,
    h_n: u32,
) -> Envelope {
    let p_n = h_n.max(ballot.counter);
    Envelope::sign(
        Statement {
            node,
            slot,
            quorum_set,
            kind: StatementKind::Confirm {
                ballot,
                p_n,
                c_n,
                h_n,
            },
        },
        keys,
    )
}

/// Signs an externalize statement claiming `commit` was confirmed.
pub fn externalize(
    keys: &KeyPair,
    node: NodeId,
    slot: SlotIndex,
    quorum_set: QuorumSet,
    commit: Ballot,
    h_n: u32,
) -> Envelope {
    Envelope::sign(
        Statement {
            node,
            slot,
            quorum_set,
            kind: StatementKind::Externalize { commit, h_n },
        },
        keys,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qset() -> QuorumSet {
        QuorumSet::threshold_of(2, (0..3).map(NodeId).collect())
    }

    #[test]
    fn forged_envelopes_verify_under_the_forgers_key() {
        let keys = KeyPair::from_seed(99);
        let v = Value::new(b"evil".to_vec());
        let env = nominate(
            &keys,
            NodeId(2),
            7,
            qset(),
            [v.clone()].into(),
            BTreeSet::new(),
        );
        assert!(env.verify(keys.public()), "own-key signature is genuine");
        assert!(
            !env.verify(KeyPair::from_seed(100).public()),
            "and does not verify under anyone else's key"
        );
        assert_eq!(env.statement.slot, 7);
    }

    #[test]
    fn equivocating_pair_differs_only_in_payload() {
        let keys = KeyPair::from_seed(7);
        let (va, vb) = (Value::new(b"a".to_vec()), Value::new(b"b".to_vec()));
        let a = confirm(&keys, NodeId(0), 3, qset(), Ballot::new(1, va), 1, 1);
        let b = confirm(&keys, NodeId(0), 3, qset(), Ballot::new(1, vb), 1, 1);
        assert_ne!(a.hash(), b.hash(), "conflicting statements, same slot");
        assert_eq!(a.statement.node, b.statement.node);
        assert_eq!(a.statement.slot, b.statement.slot);
    }
}

//! The Stellar Consensus Protocol (SCP).
//!
//! SCP is a quorum-based Byzantine agreement protocol with *open
//! membership* (paper §3). Instead of a global, fixed membership list, each
//! node unilaterally declares **quorum slices** — sets of nodes whose
//! unanimous word it trusts — and quorums *emerge* from the union of those
//! local declarations. Under the paper's "Internet hypothesis" (that
//! real-world agreement requirements transitively connect everyone who
//! matters), this yields global consensus without gatekeepers.
//!
//! This crate is a faithful, from-scratch implementation of §3 of the
//! paper, structured as a **sans-I/O state machine**: the protocol consumes
//! [`Envelope`]s and timer-expiry notifications, and produces outgoing
//! envelopes, timer requests, and externalized values through the
//! [`Driver`] trait. Nothing in here touches the network or the clock,
//! which is what makes the protocol directly testable and lets the
//! simulation crate drive thousands of nodes deterministically.
//!
//! Module tour:
//!
//! * [`quorum_set`] — nested quorum sets (threshold-of-N over validators
//!   and inner sets), slice/v-blocking predicates, and node weights.
//! * [`quorum`] — emergent-quorum discovery over a heterogeneous map of
//!   per-node quorum sets (the fixpoint "prune until everyone has a slice"
//!   computation), plus the generic federated-voting accept/confirm checks.
//! * [`statement`] — ballots and the four statement kinds (`Nominate`,
//!   `Prepare`, `Confirm`, `Externalize`) with their vote/accept semantics.
//! * [`envelope`] — signed statement envelopes.
//! * [`leader`] — federated leader selection for nomination (§3.2.5).
//! * [`nomination`] — the nomination protocol (§3.2.2).
//! * [`ballot`] — the ballot protocol: prepare/commit via federated voting,
//!   ballot synchronization, and timeout-driven ballot bumping (§3.2.1,
//!   §3.2.4).
//! * [`slot`] — one consensus instance (ledger) combining nomination and
//!   balloting.
//! * [`node`] — a multi-slot SCP node: the public entry point.
//! * [`driver`] — the [`Driver`] trait connecting SCP to the application.
//!
//! # Quick example
//!
//! Run four in-process nodes to agreement on a value (see
//! `tests/` for richer scenarios):
//!
//! ```
//! use stellar_scp::test_harness::InMemoryNetwork;
//! use stellar_scp::{NodeId, QuorumSet, Value};
//!
//! // Four nodes, each requiring 3-of-4 agreement (classic BFT f=1).
//! let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
//! let qset = QuorumSet::majority(nodes.clone());
//! let mut net = InMemoryNetwork::new(&nodes, &qset, 42);
//! for n in &nodes {
//!     net.propose(*n, 1, Value::new(b"ledger-1".to_vec()));
//! }
//! let decided = net.run_to_quiescence(1);
//! assert_eq!(decided.len(), 4, "all four nodes must externalize");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ballot;
pub mod driver;
pub mod envelope;
#[cfg(feature = "forge")]
pub mod forge;
pub mod leader;
pub mod node;
pub mod nomination;
pub mod quorum;
pub mod quorum_set;
pub mod slot;
pub mod statement;
pub mod test_harness;

pub use ballot::BallotPhase;
pub use driver::{Driver, ScpEvent, TimerKind, Validity};
pub use envelope::Envelope;
pub use node::ScpNode;
pub use quorum_set::QuorumSet;
pub use statement::{Ballot, Statement, StatementKind};

use stellar_crypto::codec::{Decode, DecodeError, Encode};

/// Identifies a validator node.
///
/// In production Stellar a node is named by its ed25519 public key; this
/// workspace keeps a compact numeric id on the wire and maps ids to
/// [`stellar_crypto::sign::PublicKey`]s through the [`Driver`], which keeps
/// simulated envelopes small and logs readable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl Encode for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for NodeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NodeId(u32::decode(input)?))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a consensus instance; one slot per ledger in Stellar.
pub type SlotIndex = u64;

/// An opaque consensus value.
///
/// SCP agrees on byte strings; their interpretation (in Stellar, a
/// transaction-set hash + close time + upgrades) belongs to the
/// application, which supplies validity checks and candidate combination
/// through the [`Driver`]. Values are ordered lexicographically so that
/// protocol-level tie-breaks are deterministic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(std::sync::Arc<Vec<u8>>);

impl Value {
    /// Wraps raw bytes as a consensus value.
    pub fn new(bytes: Vec<u8>) -> Value {
        Value(std::sync::Arc::new(bytes))
    }

    /// Returns the underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the underlying bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the value carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Values are frequently hashes; show a short hex prefix.
        let h = stellar_crypto::hex::encode(&self.0[..self.0.len().min(6)]);
        write!(f, "Value({h}…,{}B)", self.0.len())
    }
}

impl Encode for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.as_slice().encode(out);
    }
}

impl Decode for Value {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Value::new(Vec::<u8>::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_and_ordering() {
        let a = Value::new(vec![1, 2]);
        let b = Value::new(vec![1, 3]);
        assert!(a < b);
        assert_eq!(Value::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}

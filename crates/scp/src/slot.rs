//! A consensus slot: one instance of SCP (one ledger).
//!
//! The slot owns a [`NominationProtocol`] and a [`BallotProtocol`] and
//! routes envelopes, timeouts, and nomination output between them:
//! confirmed-nominated candidates are combined by the application
//! ([`Driver::combine_candidates`]) into the composite value balloting
//! proposes, and a decision shuts nomination down.

use crate::ballot::{BallotPhase, BallotProtocol, BallotSnapshot};
use crate::driver::{Driver, TimerKind};
use crate::nomination::{NominationProtocol, NominationSnapshot};
use crate::statement::Statement;
use crate::{Envelope, NodeId, QuorumSet, SlotIndex, Value};
use stellar_crypto::sign::KeyPair;

/// Shared context threaded through protocol methods: identity, slices,
/// signing key, and the application driver.
pub struct Ctx<'a, D: Driver> {
    /// This node's id.
    pub node: NodeId,
    /// The slot being decided.
    pub slot: SlotIndex,
    /// This node's current quorum set.
    pub qset: &'a QuorumSet,
    /// Signing key for outgoing envelopes.
    pub keys: &'a KeyPair,
    /// The application driver.
    pub driver: &'a mut D,
}

/// Durable image of one slot's full SCP state — what the herder persists
/// write-ahead of every outbound envelope so a crash cannot produce an
/// amnesiac validator (§3, §5.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// The slot index.
    pub index: SlotIndex,
    /// Nomination-protocol state.
    pub nomination: NominationSnapshot,
    /// Ballot-protocol state.
    pub ballot: BallotSnapshot,
}

stellar_crypto::impl_codec_struct!(SlotSnapshot {
    index,
    nomination,
    ballot,
});

/// One consensus instance.
pub struct Slot {
    index: SlotIndex,
    nomination: NominationProtocol,
    ballot: BallotProtocol,
}

impl Slot {
    /// Creates an idle slot.
    pub fn new(index: SlotIndex) -> Slot {
        Slot {
            index,
            nomination: NominationProtocol::new(),
            ballot: BallotProtocol::new(),
        }
    }

    /// The slot index.
    pub fn index(&self) -> SlotIndex {
        self.index
    }

    /// Read access to the nomination protocol (for metrics/tests).
    pub fn nomination(&self) -> &NominationProtocol {
        &self.nomination
    }

    /// Read access to the ballot protocol (for metrics/tests).
    pub fn ballot(&self) -> &BallotProtocol {
        &self.ballot
    }

    /// The decided value, if this slot has externalized.
    pub fn decision(&self) -> Option<&Value> {
        self.ballot.decision()
    }

    /// Proposes `value` for this slot, starting nomination.
    pub fn propose<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, value: Value) {
        let candidates_changed = self.nomination.start(ctx, value);
        if candidates_changed {
            self.push_composite(ctx);
        }
    }

    /// Handles an incoming envelope (assumed signature-verified by the
    /// node layer).
    pub fn process<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, st: &Statement) {
        if st.kind.is_nomination() {
            let candidates_changed = self.nomination.process(ctx, st);
            if candidates_changed {
                self.push_composite(ctx);
            }
        } else {
            self.ballot.process(ctx, st);
            self.after_ballot_step(ctx);
        }
    }

    /// Re-runs nomination voting after application state changed (new
    /// transaction sets may make values validatable).
    pub fn retry_nomination<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        if self.nomination.retry(ctx) {
            self.push_composite(ctx);
        }
    }

    /// Re-runs both protocols' federated-voting evaluation without any
    /// new input. Needed after a runtime quorum-set change (§3.1.1):
    /// statements already on file may satisfy thresholds under the new
    /// slices even though no further envelope or timeout will arrive to
    /// trigger the usual evaluation (a stalled slot generates neither).
    pub fn reevaluate<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        // Quorum discovery reads slices out of latest statements, so the
        // new configuration is inert until statements carrying it replace
        // the ones on file — ours locally and, via broadcast, at peers.
        self.nomination.refresh_qset(ctx);
        self.ballot.refresh_qset(ctx);
        if self.nomination.retry(ctx) {
            self.push_composite(ctx);
        }
        self.ballot.advance(ctx);
        self.after_ballot_step(ctx);
    }

    /// Handles a timer expiry.
    pub fn on_timeout<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, kind: TimerKind) {
        match kind {
            TimerKind::Nomination => {
                let candidates_changed = self.nomination.on_timeout(ctx);
                if candidates_changed {
                    self.push_composite(ctx);
                }
            }
            TimerKind::Ballot => {
                self.ballot.on_timeout(ctx);
                self.after_ballot_step(ctx);
            }
        }
    }

    /// Recombines candidates and feeds the ballot protocol.
    fn push_composite<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        let candidates = self.nomination.candidates().clone();
        if candidates.is_empty() {
            return;
        }
        if let Some(composite) = ctx.driver.combine_candidates(ctx.slot, &candidates) {
            self.ballot.on_composite(ctx, composite);
        }
        self.after_ballot_step(ctx);
    }

    /// Post-processing after any ballot activity: once decided, stop
    /// nominating.
    fn after_ballot_step<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        if self.ballot.phase() == BallotPhase::Externalize {
            self.nomination.stop(ctx);
        }
    }

    /// Captures the slot's full state for durable storage.
    pub fn snapshot(&self) -> SlotSnapshot {
        SlotSnapshot {
            index: self.index,
            nomination: self.nomination.snapshot(),
            ballot: self.ballot.snapshot(),
        }
    }

    /// Rebuilds a slot from a durable snapshot after a restart, re-arming
    /// timers and re-notifying the driver of a decided value.
    pub fn restore<D: Driver>(ctx: &mut Ctx<'_, D>, snap: SlotSnapshot) -> Slot {
        let nomination = NominationProtocol::restore(ctx, snap.nomination);
        let ballot = BallotProtocol::restore(ctx, snap.ballot);
        Slot {
            index: snap.index,
            nomination,
            ballot,
        }
    }

    /// Statements this slot would re-broadcast to help a lagging peer
    /// (our latest own statements).
    pub fn own_statements(&self, node: NodeId) -> Vec<Statement> {
        let mut out = Vec::new();
        if let Some(st) = self.nomination.latest_statements().get(&node) {
            out.push(st.clone());
        }
        if let Some(st) = self.ballot.latest_statements().get(&node) {
            out.push(st.clone());
        }
        out
    }
}

/// Convenience for tests and embedders: wraps an [`Envelope`] check +
/// dispatch in one call. Returns `false` when the signature is invalid or
/// the statement is for a different slot.
pub fn verify_envelope<D: Driver>(driver: &D, envelope: &Envelope) -> bool {
    match driver.public_key(envelope.statement.node) {
        Some(pk) => envelope.verify(pk),
        None => false,
    }
}

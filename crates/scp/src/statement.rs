//! Ballots and protocol statements, with their vote/accept semantics.
//!
//! SCP's ballot protocol runs federated voting over two families of
//! abstract statements (paper §3.2.1):
//!
//! * `prepare⟨n, x⟩` — "no value other than `x` was or will ever be decided
//!   in any ballot ≤ n";
//! * `commit⟨n, x⟩` — "`x` is decided in ballot `n`".
//!
//! `prepare⟨n, x⟩` contradicts `commit⟨n′, x′⟩` when `n ≥ n′ ∧ x ≠ x′`, and
//! implies `prepare⟨n′, x⟩` for every `n′ ≤ n`.
//!
//! On the wire, a node does not enumerate every statement it has voted for;
//! it broadcasts a compact summary of its current ballot-protocol state
//! ([`StatementKind::Prepare`] / [`Confirm`](StatementKind::Confirm) /
//! [`Externalize`](StatementKind::Externalize), mirroring production
//! `stellar-core`), from which peers *derive* the full set of votes and
//! accepts via the predicate methods on [`StatementKind`]. A later message
//! always subsumes an earlier one, so message loss heals automatically.

use crate::{NodeId, QuorumSet, SlotIndex, Value};
use std::collections::BTreeSet;
use stellar_crypto::codec::{Decode, DecodeError, Encode};

/// A ballot `⟨counter, value⟩` (paper §3.2.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ballot {
    /// The ballot number `n ≥ 1`.
    pub counter: u32,
    /// The candidate value `x`.
    pub value: Value,
}

impl Ballot {
    /// Creates `⟨counter, value⟩`.
    pub fn new(counter: u32, value: Value) -> Ballot {
        Ballot { counter, value }
    }

    /// Two ballots are *compatible* when they carry the same value.
    pub fn compatible(&self, other: &Ballot) -> bool {
        self.value == other.value
    }

    /// `self ⊑ other`: lower-or-equal counter and same value.
    pub fn less_and_compatible(&self, other: &Ballot) -> bool {
        self.counter <= other.counter && self.compatible(other)
    }

    /// `self ⋦ other`: lower-or-equal counter and different value.
    pub fn less_and_incompatible(&self, other: &Ballot) -> bool {
        self.counter <= other.counter && !self.compatible(other)
    }
}

impl Encode for Ballot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.counter.encode(out);
        self.value.encode(out);
    }
}

impl Decode for Ballot {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Ballot {
            counter: u32::decode(input)?,
            value: Value::decode(input)?,
        })
    }
}

/// The four statement kinds a node can broadcast.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StatementKind {
    /// Nomination-protocol state: values voted and accepted as nominees.
    Nominate {
        /// Values this node has voted `nominate x` for.
        voted: BTreeSet<Value>,
        /// Values this node has accepted as nominated.
        accepted: BTreeSet<Value>,
    },
    /// Ballot-protocol prepare phase.
    ///
    /// Semantics (everything this message asserts):
    /// * vote `prepare⟨n, ballot.value⟩` for all `n ≤ ballot.counter`;
    /// * accept `prepare(b)` for all `b ⊑ prepared` and all
    ///   `b ⊑ prepared_prime`;
    /// * if `c_n > 0`: vote `commit⟨n, ballot.value⟩` for `c_n ≤ n ≤ h_n`
    ///   (and `h_n` is the counter of the highest confirmed-prepared
    ///   ballot).
    Prepare {
        /// Current ballot `b` this node is trying to prepare.
        ballot: Ballot,
        /// Highest accepted-prepared ballot, if any.
        prepared: Option<Ballot>,
        /// Highest accepted-prepared ballot incompatible with `prepared`.
        prepared_prime: Option<Ballot>,
        /// Low end of the commit-vote range (0 = not voting commit).
        c_n: u32,
        /// Counter of the highest confirmed-prepared ballot (0 = none).
        h_n: u32,
    },
    /// Ballot-protocol confirm phase: this node accepted `commit⟨n, b.x⟩`
    /// for `c_n ≤ n ≤ h_n`.
    ///
    /// Also asserts: vote `prepare⟨n, b.x⟩` for all `n` (the value is
    /// pinned); accept `prepare⟨n, b.x⟩` for `n ≤ p_n`; vote
    /// `commit⟨n, b.x⟩` for all `n ≥ c_n`.
    Confirm {
        /// Current ballot; its value is the one being committed.
        ballot: Ballot,
        /// Counter of the highest accepted-prepared ballot.
        p_n: u32,
        /// Low end of the accepted-commit range.
        c_n: u32,
        /// High end of the accepted-commit range.
        h_n: u32,
    },
    /// Terminal state: this node confirmed `commit⟨n, commit.value⟩` for
    /// `commit.counter ≤ n ≤ h_n` and has externalized the value.
    ///
    /// Asserts acceptance of `commit⟨n, x⟩` for **all** `n ≥ commit.counter`
    /// and of `prepare⟨∞, x⟩`, so stragglers can still form quorums with
    /// this node at any later ballot.
    Externalize {
        /// The lowest confirmed-committed ballot.
        commit: Ballot,
        /// High end of the confirmed-commit range.
        h_n: u32,
    },
}

impl StatementKind {
    /// Discriminant used by the codec and by phase comparisons
    /// (`Prepare < Confirm < Externalize`).
    fn tag(&self) -> u32 {
        match self {
            StatementKind::Nominate { .. } => 0,
            StatementKind::Prepare { .. } => 1,
            StatementKind::Confirm { .. } => 2,
            StatementKind::Externalize { .. } => 3,
        }
    }

    /// True for nomination-protocol statements.
    pub fn is_nomination(&self) -> bool {
        matches!(self, StatementKind::Nominate { .. })
    }

    /// Stable lowercase name of the statement family — the metric key
    /// suffix and flight-recorder label for per-statement-type message
    /// accounting (§7.2).
    pub fn class_name(&self) -> &'static str {
        match self {
            StatementKind::Nominate { .. } => "nominate",
            StatementKind::Prepare { .. } => "prepare",
            StatementKind::Confirm { .. } => "confirm",
            StatementKind::Externalize { .. } => "externalize",
        }
    }

    /// Every distinct value this statement references. Values flood
    /// independently of the payloads they name (transaction sets travel
    /// as separate messages), so a peer relaying or syncing SCP state
    /// uses this to know which payloads the recipient will need.
    pub fn values(&self) -> BTreeSet<Value> {
        match self {
            StatementKind::Nominate { voted, accepted } => {
                voted.iter().chain(accepted.iter()).cloned().collect()
            }
            StatementKind::Prepare {
                ballot,
                prepared,
                prepared_prime,
                ..
            } => [Some(ballot), prepared.as_ref(), prepared_prime.as_ref()]
                .into_iter()
                .flatten()
                .map(|b| b.value.clone())
                .collect(),
            StatementKind::Confirm { ballot, .. } => [ballot.value.clone()].into(),
            StatementKind::Externalize { commit, .. } => [commit.value.clone()].into(),
        }
    }

    /// The ballot counter this statement places its sender at, for ballot
    /// synchronization (§3.2.4). `Externalize` counts as infinity.
    pub fn ballot_counter(&self) -> Option<u32> {
        match self {
            StatementKind::Nominate { .. } => None,
            StatementKind::Prepare { ballot, .. } => Some(ballot.counter),
            StatementKind::Confirm { ballot, .. } => Some(ballot.counter),
            StatementKind::Externalize { .. } => Some(u32::MAX),
        }
    }

    /// Whether this statement carries (or implies) a **vote** for
    /// `prepare(b)`.
    pub fn votes_prepare(&self, b: &Ballot) -> bool {
        match self {
            StatementKind::Nominate { .. } => false,
            // Voting prepare⟨n,x⟩ implies prepare⟨n′,x⟩ for n′ ≤ n.
            StatementKind::Prepare { ballot, .. } => b.less_and_compatible(ballot),
            // Confirm pins the value: votes prepare⟨∞, x⟩.
            StatementKind::Confirm { ballot, .. } => b.compatible(ballot),
            StatementKind::Externalize { commit, .. } => b.compatible(commit),
        }
    }

    /// Whether this statement asserts **acceptance** of `prepare(b)`.
    pub fn accepts_prepare(&self, b: &Ballot) -> bool {
        match self {
            StatementKind::Nominate { .. } => false,
            StatementKind::Prepare {
                prepared,
                prepared_prime,
                ..
            } => {
                prepared.as_ref().is_some_and(|p| b.less_and_compatible(p))
                    || prepared_prime
                        .as_ref()
                        .is_some_and(|p| b.less_and_compatible(p))
            }
            StatementKind::Confirm { ballot, p_n, .. } => b.compatible(ballot) && b.counter <= *p_n,
            // Externalize asserts accept prepare⟨∞, x⟩.
            StatementKind::Externalize { commit, .. } => b.compatible(commit),
        }
    }

    /// Whether this statement carries (or implies) a **vote** for
    /// `commit⟨b.counter, b.value⟩`.
    pub fn votes_commit(&self, b: &Ballot) -> bool {
        match self {
            StatementKind::Nominate { .. } => false,
            StatementKind::Prepare {
                ballot, c_n, h_n, ..
            } => *c_n != 0 && b.compatible(ballot) && *c_n <= b.counter && b.counter <= *h_n,
            // Confirm votes commit⟨n,x⟩ for all n ≥ c_n.
            StatementKind::Confirm { ballot, c_n, .. } => b.compatible(ballot) && b.counter >= *c_n,
            StatementKind::Externalize { commit, .. } => {
                b.compatible(commit) && b.counter >= commit.counter
            }
        }
    }

    /// Whether this statement asserts **acceptance** of
    /// `commit⟨b.counter, b.value⟩`.
    pub fn accepts_commit(&self, b: &Ballot) -> bool {
        match self {
            StatementKind::Nominate { .. } | StatementKind::Prepare { .. } => false,
            StatementKind::Confirm {
                ballot, c_n, h_n, ..
            } => b.compatible(ballot) && *c_n <= b.counter && b.counter <= *h_n,
            StatementKind::Externalize { commit, .. } => {
                b.compatible(commit) && b.counter >= commit.counter
            }
        }
    }

    /// Whether this nomination statement votes to nominate `v`.
    pub fn nominates_vote(&self, v: &Value) -> bool {
        match self {
            StatementKind::Nominate { voted, .. } => voted.contains(v),
            _ => false,
        }
    }

    /// Whether this nomination statement accepts `v` as nominated.
    pub fn nominates_accept(&self, v: &Value) -> bool {
        match self {
            StatementKind::Nominate { accepted, .. } => accepted.contains(v),
            _ => false,
        }
    }

    /// Whether a statement supersedes an older one from the same node.
    ///
    /// SCP statements are monotone: nomination sets only grow, and ballot
    /// state only advances (`Prepare < Confirm < Externalize`, then by
    /// ballot/prepared/confirmed fields). A node keeps only the newest
    /// statement per peer per protocol.
    pub fn is_newer_than(&self, old: &StatementKind) -> bool {
        use StatementKind::*;
        match (old, self) {
            (
                Nominate {
                    voted: ov,
                    accepted: oa,
                },
                Nominate {
                    voted: nv,
                    accepted: na,
                },
            ) => {
                // Grown vote/accept sets.
                ov.is_subset(nv) && oa.is_subset(na) && (ov.len() < nv.len() || oa.len() < na.len())
            }
            (Nominate { .. }, _) | (_, Nominate { .. }) => false,
            (
                Prepare {
                    ballot: ob,
                    prepared: op,
                    prepared_prime: opp,
                    c_n: oc,
                    h_n: oh,
                },
                Prepare {
                    ballot: nb,
                    prepared: np,
                    prepared_prime: npp,
                    c_n: nc,
                    h_n: nh,
                },
            ) => {
                let old_key = (ob, op, opp, oh, oc);
                let new_key = (nb, np, npp, nh, nc);
                new_key > old_key
            }
            (
                Confirm {
                    ballot: ob,
                    p_n: op,
                    c_n: oc,
                    h_n: oh,
                },
                Confirm {
                    ballot: nb,
                    p_n: np,
                    c_n: nc,
                    h_n: nh,
                },
            ) => (nb, np, nh, nc) > (ob, op, oh, oc),
            (Externalize { h_n: oh, .. }, Externalize { h_n: nh, .. }) => nh > oh,
            // Phase advance.
            (o, n) => n.tag() > o.tag(),
        }
    }
}

impl Encode for StatementKind {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag().encode(out);
        match self {
            StatementKind::Nominate { voted, accepted } => {
                voted.encode(out);
                accepted.encode(out);
            }
            StatementKind::Prepare {
                ballot,
                prepared,
                prepared_prime,
                c_n,
                h_n,
            } => {
                ballot.encode(out);
                prepared.encode(out);
                prepared_prime.encode(out);
                c_n.encode(out);
                h_n.encode(out);
            }
            StatementKind::Confirm {
                ballot,
                p_n,
                c_n,
                h_n,
            } => {
                ballot.encode(out);
                p_n.encode(out);
                c_n.encode(out);
                h_n.encode(out);
            }
            StatementKind::Externalize { commit, h_n } => {
                commit.encode(out);
                h_n.encode(out);
            }
        }
    }
}

impl Decode for StatementKind {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u32::decode(input)? {
            0 => Ok(StatementKind::Nominate {
                voted: BTreeSet::decode(input)?,
                accepted: BTreeSet::decode(input)?,
            }),
            1 => Ok(StatementKind::Prepare {
                ballot: Ballot::decode(input)?,
                prepared: Option::decode(input)?,
                prepared_prime: Option::decode(input)?,
                c_n: u32::decode(input)?,
                h_n: u32::decode(input)?,
            }),
            2 => Ok(StatementKind::Confirm {
                ballot: Ballot::decode(input)?,
                p_n: u32::decode(input)?,
                c_n: u32::decode(input)?,
                h_n: u32::decode(input)?,
            }),
            3 => Ok(StatementKind::Externalize {
                commit: Ballot::decode(input)?,
                h_n: u32::decode(input)?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A statement attributed to a node at a slot, carrying the node's quorum
/// set (every message advertises the sender's slices, paper §3.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Statement {
    /// The node making this statement.
    pub node: NodeId,
    /// The consensus slot (ledger number).
    pub slot: SlotIndex,
    /// The sender's current quorum-set declaration.
    pub quorum_set: QuorumSet,
    /// The protocol statement itself.
    pub kind: StatementKind,
}

impl Encode for Statement {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.slot.encode(out);
        self.quorum_set.encode(out);
        self.kind.encode(out);
    }
}

impl Decode for Statement {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Statement {
            node: NodeId::decode(input)?,
            slot: SlotIndex::decode(input)?,
            quorum_set: QuorumSet::decode(input)?,
            kind: StatementKind::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(b: &[u8]) -> Value {
        Value::new(b.to_vec())
    }

    fn ballot(n: u32, v: &[u8]) -> Ballot {
        Ballot::new(n, val(v))
    }

    #[test]
    fn ballot_relations() {
        let b1 = ballot(1, b"x");
        let b2 = ballot(2, b"x");
        let b2y = ballot(2, b"y");
        assert!(b1.less_and_compatible(&b2));
        assert!(!b2.less_and_compatible(&b1));
        assert!(b1.less_and_incompatible(&b2y));
        assert!(b2.compatible(&b1));
        assert!(!b2.compatible(&b2y));
    }

    #[test]
    fn prepare_statement_vote_semantics() {
        let st = StatementKind::Prepare {
            ballot: ballot(5, b"x"),
            prepared: Some(ballot(3, b"x")),
            prepared_prime: Some(ballot(2, b"y")),
            c_n: 0,
            h_n: 0,
        };
        // Votes prepare for any ⟨n ≤ 5, x⟩.
        assert!(st.votes_prepare(&ballot(5, b"x")));
        assert!(st.votes_prepare(&ballot(1, b"x")));
        assert!(!st.votes_prepare(&ballot(6, b"x")));
        assert!(!st.votes_prepare(&ballot(4, b"y")));
        // Accepts prepared up to 3 for x and up to 2 for y.
        assert!(st.accepts_prepare(&ballot(3, b"x")));
        assert!(st.accepts_prepare(&ballot(2, b"y")));
        assert!(!st.accepts_prepare(&ballot(4, b"x")));
        assert!(!st.accepts_prepare(&ballot(3, b"y")));
        // No commit votes with c_n = 0.
        assert!(!st.votes_commit(&ballot(3, b"x")));
        assert!(!st.accepts_commit(&ballot(3, b"x")));
    }

    #[test]
    fn prepare_statement_commit_votes() {
        let st = StatementKind::Prepare {
            ballot: ballot(5, b"x"),
            prepared: Some(ballot(5, b"x")),
            prepared_prime: None,
            c_n: 3,
            h_n: 5,
        };
        assert!(st.votes_commit(&ballot(3, b"x")));
        assert!(st.votes_commit(&ballot(5, b"x")));
        assert!(!st.votes_commit(&ballot(2, b"x")));
        assert!(!st.votes_commit(&ballot(6, b"x")));
        assert!(!st.votes_commit(&ballot(4, b"y")));
    }

    #[test]
    fn confirm_statement_semantics() {
        let st = StatementKind::Confirm {
            ballot: ballot(7, b"x"),
            p_n: 7,
            c_n: 4,
            h_n: 6,
        };
        // Pinned value: votes prepare⟨∞, x⟩.
        assert!(st.votes_prepare(&ballot(1000, b"x")));
        assert!(!st.votes_prepare(&ballot(1, b"y")));
        assert!(st.accepts_prepare(&ballot(7, b"x")));
        assert!(!st.accepts_prepare(&ballot(8, b"x")));
        // Commit: accepts [4,6], votes everything ≥ 4.
        assert!(st.accepts_commit(&ballot(4, b"x")));
        assert!(st.accepts_commit(&ballot(6, b"x")));
        assert!(!st.accepts_commit(&ballot(7, b"x")));
        assert!(st.votes_commit(&ballot(100, b"x")));
        assert!(!st.votes_commit(&ballot(3, b"x")));
    }

    #[test]
    fn externalize_statement_semantics() {
        let st = StatementKind::Externalize {
            commit: ballot(4, b"x"),
            h_n: 6,
        };
        assert!(st.votes_prepare(&ballot(u32::MAX, b"x")));
        assert!(st.accepts_prepare(&ballot(u32::MAX, b"x")));
        assert!(st.accepts_commit(&ballot(4, b"x")));
        assert!(st.accepts_commit(&ballot(1000, b"x")));
        assert!(!st.accepts_commit(&ballot(3, b"x")));
        assert!(!st.accepts_commit(&ballot(5, b"y")));
        assert_eq!(st.ballot_counter(), Some(u32::MAX));
    }

    #[test]
    fn newer_statement_ordering() {
        let p1 = StatementKind::Prepare {
            ballot: ballot(1, b"x"),
            prepared: None,
            prepared_prime: None,
            c_n: 0,
            h_n: 0,
        };
        let p2 = StatementKind::Prepare {
            ballot: ballot(1, b"x"),
            prepared: Some(ballot(1, b"x")),
            prepared_prime: None,
            c_n: 0,
            h_n: 0,
        };
        assert!(p2.is_newer_than(&p1));
        assert!(!p1.is_newer_than(&p2));
        assert!(!p1.is_newer_than(&p1));

        let c = StatementKind::Confirm {
            ballot: ballot(1, b"x"),
            p_n: 1,
            c_n: 1,
            h_n: 1,
        };
        assert!(c.is_newer_than(&p2));
        assert!(!p2.is_newer_than(&c));

        let e = StatementKind::Externalize {
            commit: ballot(1, b"x"),
            h_n: 1,
        };
        assert!(e.is_newer_than(&c));
    }

    #[test]
    fn newer_nomination_requires_growth() {
        let n1 = StatementKind::Nominate {
            voted: [val(b"a")].into(),
            accepted: BTreeSet::new(),
        };
        let n2 = StatementKind::Nominate {
            voted: [val(b"a"), val(b"b")].into(),
            accepted: BTreeSet::new(),
        };
        let n3 = StatementKind::Nominate {
            voted: [val(b"a"), val(b"b")].into(),
            accepted: [val(b"a")].into(),
        };
        assert!(n2.is_newer_than(&n1));
        assert!(n3.is_newer_than(&n2));
        assert!(!n1.is_newer_than(&n2));
        // Disjoint sets are not "newer" (would lose information).
        let other = StatementKind::Nominate {
            voted: [val(b"z")].into(),
            accepted: BTreeSet::new(),
        };
        assert!(!other.is_newer_than(&n1));
    }

    #[test]
    fn codec_roundtrip_all_kinds() {
        use stellar_crypto::codec::{Decode, Encode};
        let kinds = vec![
            StatementKind::Nominate {
                voted: [val(b"a"), val(b"b")].into(),
                accepted: [val(b"a")].into(),
            },
            StatementKind::Prepare {
                ballot: ballot(5, b"x"),
                prepared: Some(ballot(3, b"x")),
                prepared_prime: Some(ballot(2, b"y")),
                c_n: 1,
                h_n: 3,
            },
            StatementKind::Confirm {
                ballot: ballot(7, b"x"),
                p_n: 7,
                c_n: 4,
                h_n: 6,
            },
            StatementKind::Externalize {
                commit: ballot(4, b"x"),
                h_n: 6,
            },
        ];
        for k in kinds {
            assert_eq!(StatementKind::from_bytes(&k.to_bytes()).unwrap(), k);
        }
    }
}

//! The ballot protocol (paper §3.2.1, §3.2.4).
//!
//! SCP decides through a series of numbered ballots `⟨n, x⟩`. Each ballot
//! runs federated voting on two statements:
//!
//! * `prepare⟨n, x⟩` — nothing other than `x` was or will be decided in any
//!   ballot ≤ n (confirming this makes `x` safe to commit);
//! * `commit⟨n, x⟩` — `x` is decided in ballot `n` (confirming this *is*
//!   the decision).
//!
//! The node tracks the classic five-ballot summary (mirroring production
//! `stellar-core`):
//!
//! * `b` — the current ballot it is trying to prepare and commit;
//! * `p`, `p′` — the two highest accepted-prepared ballots (at most one per
//!   value class);
//! * `h` — the highest *confirmed*-prepared ballot (prepare phase) or the
//!   high end of the accepted-commit range (confirm phase);
//! * `c` — the low end of the commit range it is voting for / has accepted.
//!
//! Ballot synchronization (§3.2.4): the ballot-`n` timeout only arms once
//! the node sees a quorum at counter ≥ n, slowing early starters; a
//! v-blocking set at higher counters forces an immediate jump forward. Both
//! rules together keep intact nodes within one ballot of each other once
//! the network turns synchronous, which is exactly what termination needs.

use crate::driver::{Driver, ScpEvent, TimerKind};
use crate::quorum::{federated_accept, federated_confirm, find_quorum, StatementQSets};
use crate::slot::Ctx;
use crate::statement::{Ballot, Statement, StatementKind};
use crate::{Envelope, NodeId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Phase of the ballot protocol, advancing monotonically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BallotPhase {
    /// Preparing a ballot: seeking a confirmed `prepare⟨n, x⟩`.
    Prepare,
    /// Accepted `commit`: seeking quorum confirmation of the commit range.
    Confirm,
    /// Decided; the slot value is final.
    Externalize,
}

impl stellar_crypto::codec::Encode for BallotPhase {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u32 = match self {
            BallotPhase::Prepare => 0,
            BallotPhase::Confirm => 1,
            BallotPhase::Externalize => 2,
        };
        tag.encode(out);
    }
}

impl stellar_crypto::codec::Decode for BallotPhase {
    fn decode(input: &mut &[u8]) -> Result<Self, stellar_crypto::codec::DecodeError> {
        match u32::decode(input)? {
            0 => Ok(BallotPhase::Prepare),
            1 => Ok(BallotPhase::Confirm),
            2 => Ok(BallotPhase::Externalize),
            t => Err(stellar_crypto::codec::DecodeError::BadTag(t)),
        }
    }
}

/// Durable image of a [`BallotProtocol`], for write-ahead persistence.
///
/// This is what stellar-core keeps on disk so that a rebooted validator
/// cannot contradict a `commit` it already accepted (§3, §5.4): the phase,
/// the five-ballot summary, and the latest statements it based them on.
/// The timer arming is deliberately absent — timers are process-local and
/// are re-derived after restore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BallotSnapshot {
    /// Protocol phase.
    pub phase: BallotPhase,
    /// Current ballot `b`.
    pub current: Option<Ballot>,
    /// Highest accepted-prepared ballot `p`.
    pub prepared: Option<Ballot>,
    /// Highest accepted-prepared ballot incompatible with `p`.
    pub prepared_prime: Option<Ballot>,
    /// `h` (meaning depends on phase; see [`BallotProtocol`]).
    pub high: Option<Ballot>,
    /// `c` (meaning depends on phase).
    pub commit: Option<Ballot>,
    /// Latest ballot statement per node (including our own).
    pub latest: BTreeMap<NodeId, Statement>,
    /// Latest composite candidate from nomination.
    pub composite: Option<Value>,
    /// Ballot-timeout count.
    pub timeouts: u64,
    /// The decided value, if externalized.
    pub decided: Option<Value>,
}

stellar_crypto::impl_codec_struct!(BallotSnapshot {
    phase,
    current,
    prepared,
    prepared_prime,
    high,
    commit,
    latest,
    composite,
    timeouts,
    decided,
});

/// Per-slot ballot-protocol state machine.
#[derive(Debug)]
pub struct BallotProtocol {
    phase: BallotPhase,
    /// Current ballot `b` (None until balloting starts).
    current: Option<Ballot>,
    /// Highest accepted-prepared ballot `p`.
    prepared: Option<Ballot>,
    /// Highest accepted-prepared ballot incompatible with `p`.
    prepared_prime: Option<Ballot>,
    /// `h`: highest confirmed-prepared (Prepare) / accepted-commit high
    /// (Confirm) / confirmed-commit high (Externalize).
    high: Option<Ballot>,
    /// `c`: commit-vote low (Prepare, None = not voting commit) /
    /// accepted-commit low (Confirm) / confirmed-commit low (Externalize).
    commit: Option<Ballot>,
    /// Latest ballot statement per node (including our own).
    latest: BTreeMap<NodeId, Statement>,
    /// Latest composite candidate from nomination.
    composite: Option<Value>,
    /// Counter value for which the ballot timer is currently armed.
    timer_armed_for: Option<u32>,
    /// Ballot timeouts experienced (Fig. 8 metrics).
    timeouts: u64,
    /// Set once `externalized` was delivered, to guarantee exactly-once.
    decided: Option<Value>,
}

impl Default for BallotProtocol {
    fn default() -> Self {
        Self::new()
    }
}

impl BallotProtocol {
    /// Creates an idle ballot protocol.
    pub fn new() -> Self {
        BallotProtocol {
            phase: BallotPhase::Prepare,
            current: None,
            prepared: None,
            prepared_prime: None,
            high: None,
            commit: None,
            latest: BTreeMap::new(),
            composite: None,
            timer_armed_for: None,
            timeouts: 0,
            decided: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> BallotPhase {
        self.phase
    }

    /// The current ballot, if balloting has started.
    pub fn current_ballot(&self) -> Option<&Ballot> {
        self.current.as_ref()
    }

    /// The decided value, if externalized.
    pub fn decision(&self) -> Option<&Value> {
        self.decided.as_ref()
    }

    /// Number of ballot timeouts experienced on this slot.
    pub fn timeout_count(&self) -> u64 {
        self.timeouts
    }

    /// Latest ballot statements seen, keyed by node.
    pub fn latest_statements(&self) -> &BTreeMap<NodeId, Statement> {
        &self.latest
    }

    /// Captures the full ballot state for durable storage.
    pub fn snapshot(&self) -> BallotSnapshot {
        BallotSnapshot {
            phase: self.phase,
            current: self.current.clone(),
            prepared: self.prepared.clone(),
            prepared_prime: self.prepared_prime.clone(),
            high: self.high.clone(),
            commit: self.commit.clone(),
            latest: self.latest.clone(),
            composite: self.composite.clone(),
            timeouts: self.timeouts,
            decided: self.decided.clone(),
        }
    }

    /// Rebuilds ballot state from a durable snapshot after a restart.
    ///
    /// The ballot timer is re-armed through the normal quorum check, and a
    /// decided-but-possibly-unapplied slot re-notifies the driver (the
    /// embedder deduplicates by ledger sequence, so redelivery across a
    /// crash is safe — losing the notification would not be).
    pub fn restore<D: Driver>(ctx: &mut Ctx<'_, D>, snap: BallotSnapshot) -> Self {
        let mut bp = BallotProtocol {
            phase: snap.phase,
            current: snap.current,
            prepared: snap.prepared,
            prepared_prime: snap.prepared_prime,
            high: snap.high,
            commit: snap.commit,
            latest: snap.latest,
            composite: snap.composite,
            timer_armed_for: None,
            timeouts: snap.timeouts,
            decided: snap.decided,
        };
        bp.check_heard_from_quorum(ctx);
        if let Some(v) = bp.decided.clone() {
            ctx.driver.externalized(ctx.slot, &v);
        }
        bp
    }

    /// Feeds a new composite candidate value from nomination.
    ///
    /// Starts balloting at ballot 1 if it hasn't started; otherwise the
    /// value is picked up at the next ballot bump (if nothing is confirmed
    /// prepared by then).
    pub fn on_composite<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, value: Value) {
        self.composite = Some(value.clone());
        if self.current.is_none() && self.phase == BallotPhase::Prepare {
            self.bump_to(ctx, Ballot::new(1, value));
        }
        self.advance(ctx);
    }

    /// Handles the ballot timeout: abandon the current ballot and try the
    /// next counter (§3.2.4: "nodes time out and try again in ballot n+1").
    pub fn on_timeout<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        self.timer_armed_for = None;
        if self.phase == BallotPhase::Externalize {
            return;
        }
        let Some(cur) = self.current.clone() else {
            return;
        };
        self.timeouts += 1;
        ctx.driver.on_event(ScpEvent::TimeoutFired {
            slot: ctx.slot,
            kind: TimerKind::Ballot,
        });
        let next = cur.counter + 1;
        let value = self.value_for_new_ballot(&cur);
        self.bump_to(ctx, Ballot::new(next, value));
        self.advance(ctx);
    }

    /// Processes a peer's ballot statement.
    pub fn process<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, st: &Statement) {
        debug_assert!(!st.kind.is_nomination());
        match self.latest.get(&st.node) {
            // An identical kind with a *different* quorum set is a slice
            // retune (§3.1.1) — the sender halted-and-reconfigured — and
            // must replace what we hold, or quorum discovery keeps using
            // the sender's abandoned slices forever.
            Some(old)
                if !st.kind.is_newer_than(&old.kind)
                    && (old.kind != st.kind || old.quorum_set == st.quorum_set) =>
            {
                return;
            }
            _ => {}
        }
        self.latest.insert(st.node, st.clone());
        self.advance(ctx);
    }

    /// The value a fresh ballot should carry: the highest
    /// confirmed-prepared value if any, else the nomination composite,
    /// else the abandoned ballot's value.
    fn value_for_new_ballot(&self, abandoned: &Ballot) -> Value {
        if let Some(h) = &self.high {
            h.value.clone()
        } else if let Some(c) = &self.composite {
            c.clone()
        } else {
            abandoned.value.clone()
        }
    }

    /// Moves to ballot `b`, emitting a `BallotBumped` event.
    ///
    /// In the Confirm phase the value is pinned: only the counter moves.
    fn bump_to<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>, mut b: Ballot) {
        if self.phase != BallotPhase::Prepare {
            // Value is pinned to the commit value after accepting commit.
            if let Some(c) = &self.commit {
                b.value = c.value.clone();
            }
        }
        let moved = match &self.current {
            Some(cur) => {
                b.counter > cur.counter || (b.counter == cur.counter && b.value != cur.value)
            }
            None => true,
        };
        if !moved {
            return;
        }
        self.current = Some(b.clone());
        ctx.driver.on_event(ScpEvent::BallotBumped {
            slot: ctx.slot,
            counter: b.counter,
        });
        // A new counter invalidates the previous timer arming.
        if self.timer_armed_for.is_some_and(|n| n < b.counter) {
            self.timer_armed_for = None;
            ctx.driver.set_timer(ctx.slot, TimerKind::Ballot, None);
        }
    }

    /// Main protocol step: runs all federated-voting attempts to a
    /// fixpoint, then handles ballot synchronization and emits our updated
    /// statement.
    pub fn advance<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        loop {
            let mut progressed = false;
            progressed |= self.attempt_accept_prepared(ctx);
            progressed |= self.attempt_confirm_prepared(ctx);
            progressed |= self.attempt_accept_commit(ctx);
            progressed |= self.attempt_confirm_commit(ctx);
            progressed |= self.check_v_blocking_bump(ctx);
            if !progressed {
                break;
            }
        }
        self.check_heard_from_quorum(ctx);
        self.emit_if_changed(ctx);
    }

    // ---- federated-voting attempts -------------------------------------

    /// All ballots that any statement suggests might be accepted prepared.
    fn prepare_candidates(&self) -> BTreeSet<Ballot> {
        let mut out = BTreeSet::new();
        for st in self.latest.values() {
            match &st.kind {
                StatementKind::Prepare {
                    ballot,
                    prepared,
                    prepared_prime,
                    ..
                } => {
                    out.insert(ballot.clone());
                    if let Some(p) = prepared {
                        out.insert(p.clone());
                    }
                    if let Some(p) = prepared_prime {
                        out.insert(p.clone());
                    }
                }
                StatementKind::Confirm { ballot, p_n, .. } => {
                    out.insert(Ballot::new(*p_n, ballot.value.clone()));
                    out.insert(ballot.clone());
                }
                StatementKind::Externalize { commit, h_n } => {
                    out.insert(Ballot::new(*h_n, commit.value.clone()));
                    out.insert(Ballot::new(u32::MAX, commit.value.clone()));
                }
                StatementKind::Nominate { .. } => {}
            }
        }
        out
    }

    /// Tries to accept `prepare(b)` for the best candidate ballot.
    fn attempt_accept_prepared<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if self.phase == BallotPhase::Externalize {
            return false;
        }
        let known: BTreeSet<NodeId> = self.latest.keys().copied().collect();
        for b in self.prepare_candidates().into_iter().rev() {
            // Nothing new to learn if already covered.
            if self
                .prepared
                .as_ref()
                .is_some_and(|p| b.less_and_compatible(p))
                || self
                    .prepared_prime
                    .as_ref()
                    .is_some_and(|p| b.less_and_compatible(p))
            {
                continue;
            }
            // In Confirm phase, only the pinned value can still be prepared
            // (accepting an incompatible prepare would contradict our
            // accepted commit).
            if self.phase == BallotPhase::Confirm {
                let pinned_ok = self
                    .commit
                    .as_ref()
                    .is_some_and(|c| b.compatible(c) && b.counter >= c.counter);
                if !pinned_ok {
                    continue;
                }
            }
            let qsets = StatementQSets(&self.latest);
            let accepted = federated_accept(
                ctx.node,
                ctx.qset,
                &qsets,
                &known,
                &|n| {
                    self.latest
                        .get(&n)
                        .is_some_and(|s| s.kind.votes_prepare(&b))
                },
                &|n| {
                    self.latest
                        .get(&n)
                        .is_some_and(|s| s.kind.accepts_prepare(&b))
                },
            );
            if accepted {
                self.set_prepared(b.clone());
                // Abort a commit *vote* overruled by a higher incompatible
                // accepted-prepared (votes may be overruled; accepts not).
                if self.phase == BallotPhase::Prepare {
                    if let (Some(c), Some(h)) = (&self.commit, &self.high) {
                        let aborted = self
                            .prepared
                            .as_ref()
                            .is_some_and(|p| h.less_and_incompatible(p))
                            || self
                                .prepared_prime
                                .as_ref()
                                .is_some_and(|p| h.less_and_incompatible(p));
                        let _ = c;
                        if aborted {
                            self.commit = None;
                        }
                    }
                }
                ctx.driver.on_event(ScpEvent::AcceptedPrepared {
                    slot: ctx.slot,
                    counter: b.counter,
                });
                return true;
            }
        }
        false
    }

    /// Records `b` as accepted prepared, maintaining `p`/`p′`.
    fn set_prepared(&mut self, b: Ballot) {
        match &self.prepared {
            None => self.prepared = Some(b),
            Some(p) if &b > p => {
                if !b.compatible(p) {
                    self.prepared_prime = self.prepared.take();
                }
                self.prepared = Some(b);
            }
            Some(p) if !b.compatible(p) => {
                let better = match &self.prepared_prime {
                    None => true,
                    Some(pp) => &b > pp,
                };
                if better {
                    self.prepared_prime = Some(b);
                }
            }
            _ => {}
        }
    }

    /// Tries to confirm `prepare(b)`: sets `h` and starts voting `commit`.
    fn attempt_confirm_prepared<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if self.phase != BallotPhase::Prepare || self.prepared.is_none() {
            return false;
        }
        let known: BTreeSet<NodeId> = self.latest.keys().copied().collect();
        for b in self.prepare_candidates().into_iter().rev() {
            if self.high.as_ref().is_some_and(|h| b.less_and_compatible(h)) {
                continue; // no improvement
            }
            // Only ballots we ourselves accepted prepared can be confirmed
            // by us (confirm = quorum accepts, and we are in that quorum).
            let we_accept = self
                .prepared
                .as_ref()
                .is_some_and(|p| b.less_and_compatible(p))
                || self
                    .prepared_prime
                    .as_ref()
                    .is_some_and(|p| b.less_and_compatible(p));
            if !we_accept {
                continue;
            }
            let qsets = StatementQSets(&self.latest);
            let confirmed = federated_confirm(ctx.node, &qsets, &known, &|n| {
                self.latest
                    .get(&n)
                    .is_some_and(|s| s.kind.accepts_prepare(&b))
            });
            if confirmed {
                let improved = match &self.high {
                    None => true,
                    Some(h) => b > *h,
                };
                if !improved {
                    continue;
                }
                self.high = Some(b.clone());
                ctx.driver.on_event(ScpEvent::ConfirmedPrepared {
                    slot: ctx.slot,
                    counter: b.counter,
                });
                // Track h with the current ballot (the ballot we try to
                // commit must carry the confirmed-prepared value).
                let need_track = match &self.current {
                    None => true,
                    Some(cur) => !cur.compatible(&b) || cur.counter < b.counter,
                };
                if need_track {
                    let counter = self
                        .current
                        .as_ref()
                        .map_or(b.counter, |c| c.counter.max(b.counter));
                    self.bump_to(ctx, Ballot::new(counter, b.value.clone()));
                }
                // Begin voting commit⟨n, x⟩ for c ≤ n ≤ h unless an
                // incompatible accepted-prepared above h forbids it.
                if self.commit.is_none() {
                    let blocked = self
                        .prepared
                        .as_ref()
                        .is_some_and(|p| b.less_and_incompatible(p))
                        || self
                            .prepared_prime
                            .as_ref()
                            .is_some_and(|p| b.less_and_incompatible(p));
                    let cur_ok = self
                        .current
                        .as_ref()
                        .is_some_and(|cur| cur.compatible(&b) && cur.counter <= b.counter);
                    if !blocked && cur_ok {
                        self.commit = Some(b.clone());
                    }
                }
                return true;
            }
        }
        false
    }

    /// Commit-range hints per value: every counter mentioned as a commit
    /// boundary by some statement.
    fn commit_boundaries(&self) -> BTreeMap<Value, BTreeSet<u32>> {
        let mut out: BTreeMap<Value, BTreeSet<u32>> = BTreeMap::new();
        for st in self.latest.values() {
            match &st.kind {
                StatementKind::Prepare {
                    ballot, c_n, h_n, ..
                } => {
                    if *c_n > 0 {
                        let e = out.entry(ballot.value.clone()).or_default();
                        e.insert(*c_n);
                        e.insert(*h_n);
                    }
                }
                StatementKind::Confirm {
                    ballot, c_n, h_n, ..
                } => {
                    let e = out.entry(ballot.value.clone()).or_default();
                    e.insert(*c_n);
                    e.insert(*h_n);
                }
                StatementKind::Externalize { commit, h_n } => {
                    let e = out.entry(commit.value.clone()).or_default();
                    e.insert(commit.counter);
                    e.insert(*h_n);
                }
                StatementKind::Nominate { .. } => {}
            }
        }
        out
    }

    /// Finds the widest boundary interval `[lo, hi]` around some accepted
    /// counter for which `pred` holds on every probed boundary.
    fn find_interval(boundaries: &BTreeSet<u32>, pred: &dyn Fn(u32) -> bool) -> Option<(u32, u32)> {
        // Scan from the highest boundary down for the first satisfying
        // counter, then extend downward while contiguous boundaries hold.
        let mut found: Option<(u32, u32)> = None;
        for &n in boundaries.iter().rev() {
            match found {
                None => {
                    if pred(n) {
                        found = Some((n, n));
                    }
                }
                Some((lo, hi)) => {
                    if pred(n) {
                        found = Some((n, hi));
                    } else {
                        return Some((lo, hi));
                    }
                }
            }
        }
        found
    }

    /// Tries to accept `commit⟨n, x⟩` for a range of counters.
    fn attempt_accept_commit<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if self.phase == BallotPhase::Externalize {
            return false;
        }
        let known: BTreeSet<NodeId> = self.latest.keys().copied().collect();
        for (value, boundaries) in self.commit_boundaries() {
            // Once in Confirm phase the value is pinned.
            if self.phase == BallotPhase::Confirm
                && self.commit.as_ref().is_some_and(|c| c.value != value)
            {
                continue;
            }
            let qsets = StatementQSets(&self.latest);
            let pred = |n: u32| -> bool {
                let b = Ballot::new(n, value.clone());
                federated_accept(
                    ctx.node,
                    ctx.qset,
                    &qsets,
                    &known,
                    &|node| {
                        self.latest
                            .get(&node)
                            .is_some_and(|s| s.kind.votes_commit(&b))
                    },
                    &|node| {
                        self.latest
                            .get(&node)
                            .is_some_and(|s| s.kind.accepts_commit(&b))
                    },
                )
            };
            if let Some((lo, hi)) = Self::find_interval(&boundaries, &pred) {
                let improved = match (&self.commit, &self.high, self.phase) {
                    (_, _, BallotPhase::Prepare) => true,
                    (Some(c), Some(h), BallotPhase::Confirm) => lo < c.counter || hi > h.counter,
                    _ => true,
                };
                if !improved {
                    continue;
                }
                let was_prepare = self.phase == BallotPhase::Prepare;
                self.phase = BallotPhase::Confirm;
                self.commit = Some(Ballot::new(lo, value.clone()));
                self.high = Some(Ballot::new(hi, value.clone()));
                // Accepted commit implies accepted prepare up to hi.
                self.set_prepared(Ballot::new(hi, value.clone()));
                // Current ballot tracks the commit value at counter ≥ hi.
                let counter = self.current.as_ref().map_or(hi, |c| c.counter.max(hi));
                self.bump_to(ctx, Ballot::new(counter, value.clone()));
                if was_prepare {
                    ctx.driver.on_event(ScpEvent::AcceptedCommit {
                        slot: ctx.slot,
                        counter: lo,
                    });
                }
                return true;
            }
        }
        false
    }

    /// Tries to confirm the commit: quorum of accepts ⇒ externalize.
    fn attempt_confirm_commit<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if self.phase != BallotPhase::Confirm {
            return false;
        }
        let Some(commit) = self.commit.clone() else {
            return false;
        };
        let known: BTreeSet<NodeId> = self.latest.keys().copied().collect();
        let boundaries = self
            .commit_boundaries()
            .remove(&commit.value)
            .unwrap_or_default();
        let qsets = StatementQSets(&self.latest);
        let pred = |n: u32| -> bool {
            let b = Ballot::new(n, commit.value.clone());
            federated_confirm(ctx.node, &qsets, &known, &|node| {
                self.latest
                    .get(&node)
                    .is_some_and(|s| s.kind.accepts_commit(&b))
            })
        };
        if let Some((lo, hi)) = Self::find_interval(&boundaries, &pred) {
            self.phase = BallotPhase::Externalize;
            self.commit = Some(Ballot::new(lo, commit.value.clone()));
            self.high = Some(Ballot::new(hi, commit.value.clone()));
            self.timer_armed_for = None;
            ctx.driver.set_timer(ctx.slot, TimerKind::Ballot, None);
            let value = commit.value.clone();
            self.decided = Some(value.clone());
            ctx.driver.on_event(ScpEvent::Externalized {
                slot: ctx.slot,
                value: value.clone(),
            });
            ctx.driver.externalized(ctx.slot, &value);
            return true;
        }
        false
    }

    // ---- ballot synchronization (§3.2.4) --------------------------------

    /// Counters claimed by each peer's latest statement.
    fn peer_counters(&self) -> BTreeMap<NodeId, u32> {
        self.latest
            .iter()
            .filter_map(|(n, st)| st.kind.ballot_counter().map(|c| (*n, c)))
            .collect()
    }

    /// "If a node v ever notices a v-blocking set at a later ballot, it
    /// immediately skips to the lowest ballot such that this is no longer
    /// the case."
    fn check_v_blocking_bump<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) -> bool {
        if self.phase == BallotPhase::Externalize {
            return false;
        }
        let counters = self.peer_counters();
        let my_counter = self.current.as_ref().map_or(0, |b| b.counter);
        let higher: Vec<u32> = counters
            .iter()
            .filter(|(n, _)| **n != ctx.node)
            .map(|(_, c)| *c)
            .filter(|c| *c > my_counter)
            .collect();
        if higher.is_empty() {
            return false;
        }
        let blocking = |threshold: u32| -> bool {
            let set: BTreeSet<NodeId> = counters
                .iter()
                .filter(|(n, c)| **n != ctx.node && **c > threshold)
                .map(|(n, _)| *n)
                .collect();
            ctx.qset.is_v_blocking(&set)
        };
        if !blocking(my_counter) {
            return false;
        }
        // Jump to the smallest counter where the above-set stops blocking.
        let mut sorted: Vec<u32> = higher;
        sorted.sort_unstable();
        sorted.dedup();
        let mut target = my_counter;
        for c in sorted {
            target = c;
            if !blocking(c) {
                break;
            }
        }
        if target <= my_counter {
            return false;
        }
        let value = match &self.current {
            Some(cur) => self.value_for_new_ballot(&cur.clone()),
            None => match (&self.high, &self.composite) {
                (Some(h), _) => h.value.clone(),
                (None, Some(v)) => v.clone(),
                // Without any value we cannot vote; adopt the value the
                // blocking set is working on (any statement's value).
                (None, None) => match self.any_peer_value() {
                    Some(v) => v,
                    None => return false,
                },
            },
        };
        self.bump_to(ctx, Ballot::new(target, value));
        true
    }

    /// A value claimed by some peer's current ballot, for joining late
    /// without a local composite.
    fn any_peer_value(&self) -> Option<Value> {
        self.latest.values().find_map(|st| match &st.kind {
            StatementKind::Prepare { ballot, .. } | StatementKind::Confirm { ballot, .. } => {
                Some(ballot.value.clone())
            }
            StatementKind::Externalize { commit, .. } => Some(commit.value.clone()),
            StatementKind::Nominate { .. } => None,
        })
    }

    /// Arms the ballot timer once a quorum sits at our counter or later
    /// (§3.2.4: "nodes start the timer only once they are part of a quorum
    /// that is all at the current (or a later) ballot").
    fn check_heard_from_quorum<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        if self.phase == BallotPhase::Externalize {
            return;
        }
        let Some(cur) = &self.current else { return };
        let n = cur.counter;
        if self.timer_armed_for == Some(n) {
            return;
        }
        let counters = self.peer_counters();
        let at_or_above: BTreeSet<NodeId> = counters
            .iter()
            .filter(|(_, c)| **c >= n)
            .map(|(node, _)| *node)
            .collect();
        let qsets = StatementQSets(&self.latest);
        let quorum = find_quorum(&qsets, &at_or_above);
        if quorum.contains(&ctx.node) {
            self.timer_armed_for = Some(n);
            let delay = ctx.driver.ballot_timeout(n);
            ctx.driver
                .set_timer(ctx.slot, TimerKind::Ballot, Some(delay));
        }
    }

    // ---- statement emission ---------------------------------------------

    /// Our current statement, derived from protocol state.
    fn build_statement(
        &self,
        ctx_node: NodeId,
        slot: u64,
        qset: &crate::QuorumSet,
    ) -> Option<Statement> {
        let kind = match self.phase {
            BallotPhase::Prepare => {
                let ballot = self.current.clone()?;
                StatementKind::Prepare {
                    ballot,
                    prepared: self.prepared.clone(),
                    prepared_prime: self.prepared_prime.clone(),
                    c_n: self.commit.as_ref().map_or(0, |c| c.counter),
                    h_n: self.high.as_ref().map_or(0, |h| h.counter),
                }
            }
            BallotPhase::Confirm => {
                let ballot = self.current.clone()?;
                let h_n = self.high.as_ref().map_or(0, |h| h.counter);
                // `p_n` must describe an accepted prepare for the pinned
                // value; fall back to the commit high (implied accepted).
                let p_n = self
                    .prepared
                    .as_ref()
                    .filter(|p| p.compatible(&ballot))
                    .map_or(h_n, |p| p.counter);
                StatementKind::Confirm {
                    ballot,
                    p_n,
                    c_n: self.commit.as_ref().map_or(0, |c| c.counter),
                    h_n,
                }
            }
            BallotPhase::Externalize => StatementKind::Externalize {
                commit: self.commit.clone()?,
                h_n: self.high.as_ref().map_or(0, |h| h.counter),
            },
        };
        Some(Statement {
            node: ctx_node,
            slot,
            quorum_set: qset.clone(),
            kind,
        })
    }

    /// Re-broadcasts our latest statement under the node's *current*
    /// quorum set, even though the statement kind is unchanged. Quorum
    /// evaluation reads slices out of latest statements, so after a
    /// runtime reconfiguration the new slices are inert until a statement
    /// carrying them circulates — and `emit_if_changed` alone never
    /// resends an unchanged kind.
    pub fn refresh_qset<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        let Some(st) = self.build_statement(ctx.node, ctx.slot, ctx.qset) else {
            return;
        };
        if self
            .latest
            .get(&ctx.node)
            .is_some_and(|old| old.quorum_set == st.quorum_set)
        {
            return;
        }
        self.latest.insert(ctx.node, st.clone());
        let env = Envelope::sign(st, ctx.keys);
        ctx.driver.emit_envelope(&env);
    }

    /// Signs and broadcasts our statement when it changed, recording it in
    /// `latest` so our own votes count toward quorums we evaluate.
    fn emit_if_changed<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        let Some(st) = self.build_statement(ctx.node, ctx.slot, ctx.qset) else {
            return;
        };
        match self.latest.get(&ctx.node) {
            Some(old) if old.kind == st.kind => return,
            Some(old) if !st.kind.is_newer_than(&old.kind) => return,
            _ => {}
        }
        self.latest.insert(ctx.node, st.clone());
        let env = Envelope::sign(st, ctx.keys);
        ctx.driver.emit_envelope(&env);
        // Our own statement may complete a quorum for ourselves.
        self.advance_once_after_emit(ctx);
    }

    /// One additional fixpoint pass after emitting, bounded to avoid
    /// unbounded mutual recursion (state is monotone, so this converges).
    fn advance_once_after_emit<D: Driver>(&mut self, ctx: &mut Ctx<'_, D>) {
        loop {
            let mut progressed = false;
            progressed |= self.attempt_accept_prepared(ctx);
            progressed |= self.attempt_confirm_prepared(ctx);
            progressed |= self.attempt_accept_commit(ctx);
            progressed |= self.attempt_confirm_commit(ctx);
            if !progressed {
                break;
            }
        }
        self.check_heard_from_quorum(ctx);
        let Some(st) = self.build_statement(ctx.node, ctx.slot, ctx.qset) else {
            return;
        };
        match self.latest.get(&ctx.node) {
            Some(old) if old.kind == st.kind => {}
            Some(old) if !st.kind.is_newer_than(&old.kind) => {}
            _ => {
                self.latest.insert(ctx.node, st.clone());
                let env = Envelope::sign(st, ctx.keys);
                ctx.driver.emit_envelope(&env);
                // Recurse: monotone state guarantees termination.
                self.advance_once_after_emit(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Validity;
    use crate::slot::Ctx;
    use crate::{QuorumSet, SlotIndex};
    use std::time::Duration;
    use stellar_crypto::sign::KeyPair;

    /// Minimal driver recording everything.
    #[derive(Default)]
    struct TestDriver {
        emitted: Vec<Envelope>,
        timers: Vec<(SlotIndex, TimerKind, Option<Duration>)>,
        decided: Vec<(SlotIndex, Value)>,
        events: Vec<ScpEvent>,
    }

    impl Driver for TestDriver {
        fn validate_value(&mut self, _: SlotIndex, _: &Value, _: bool) -> Validity {
            Validity::FullyValidated
        }
        fn combine_candidates(&mut self, _: SlotIndex, c: &BTreeSet<Value>) -> Option<Value> {
            c.iter().next_back().cloned()
        }
        fn emit_envelope(&mut self, envelope: &Envelope) {
            self.emitted.push(envelope.clone());
        }
        fn set_timer(&mut self, slot: SlotIndex, kind: TimerKind, delay: Option<Duration>) {
            self.timers.push((slot, kind, delay));
        }
        fn externalized(&mut self, slot: SlotIndex, value: &Value) {
            self.decided.push((slot, value.clone()));
        }
        fn public_key(&self, node: NodeId) -> Option<stellar_crypto::sign::PublicKey> {
            Some(KeyPair::from_seed(u64::from(node.0)).public())
        }
        fn on_event(&mut self, event: ScpEvent) {
            self.events.push(event);
        }
    }

    fn val(s: &str) -> Value {
        Value::new(s.as_bytes().to_vec())
    }

    fn qset4() -> QuorumSet {
        QuorumSet::majority((0..4).map(NodeId).collect())
    }

    /// Builds a peer's ballot statement.
    fn peer_stmt(node: u32, kind: StatementKind) -> Statement {
        Statement {
            node: NodeId(node),
            slot: 1,
            quorum_set: qset4(),
            kind,
        }
    }

    fn prepare_stmt(
        node: u32,
        b: Ballot,
        prepared: Option<Ballot>,
        c_n: u32,
        h_n: u32,
    ) -> Statement {
        peer_stmt(
            node,
            StatementKind::Prepare {
                ballot: b,
                prepared,
                prepared_prime: None,
                c_n,
                h_n,
            },
        )
    }

    struct Fixture {
        bp: BallotProtocol,
        driver: TestDriver,
        keys: KeyPair,
        qset: QuorumSet,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                bp: BallotProtocol::new(),
                driver: TestDriver::default(),
                keys: KeyPair::from_seed(0),
                qset: qset4(),
            }
        }

        fn with_ctx<R>(
            &mut self,
            f: impl FnOnce(&mut BallotProtocol, &mut Ctx<'_, TestDriver>) -> R,
        ) -> R {
            let mut ctx = Ctx {
                node: NodeId(0),
                slot: 1,
                qset: &self.qset,
                keys: &self.keys,
                driver: &mut self.driver,
            };
            f(&mut self.bp, &mut ctx)
        }
    }

    #[test]
    fn composite_starts_ballot_one_and_emits_prepare() {
        let mut fx = Fixture::new();
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("x")));
        assert_eq!(fx.bp.phase(), BallotPhase::Prepare);
        assert_eq!(fx.bp.current_ballot().unwrap().counter, 1);
        assert_eq!(fx.bp.current_ballot().unwrap().value, val("x"));
        assert_eq!(fx.driver.emitted.len(), 1);
        match &fx.driver.emitted[0].statement.kind {
            StatementKind::Prepare {
                ballot,
                prepared,
                c_n,
                h_n,
                ..
            } => {
                assert_eq!(ballot.counter, 1);
                assert!(prepared.is_none());
                assert_eq!((*c_n, *h_n), (0, 0));
            }
            other => panic!("expected Prepare, got {other:?}"),
        }
    }

    #[test]
    fn quorum_of_votes_leads_to_accept_confirm_and_commit_vote() {
        let mut fx = Fixture::new();
        let b = Ballot::new(1, val("x"));
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("x")));
        // Two peers vote prepare b (with us: a 3-of-4 quorum).
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &prepare_stmt(1, b.clone(), None, 0, 0));
            bp.process(ctx, &prepare_stmt(2, b.clone(), None, 0, 0));
        });
        // We accepted prepared (p = b) but cannot confirm yet (peers have
        // not accepted).
        let own = fx.bp.latest_statements()[&NodeId(0)].clone();
        match own.kind {
            StatementKind::Prepare { prepared, .. } => assert_eq!(prepared, Some(b.clone())),
            other => panic!("{other:?}"),
        }
        // Peers now accept prepared too: we confirm and start voting commit.
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &prepare_stmt(1, b.clone(), Some(b.clone()), 0, 0));
            bp.process(ctx, &prepare_stmt(2, b.clone(), Some(b.clone()), 0, 0));
        });
        let own = fx.bp.latest_statements()[&NodeId(0)].clone();
        match own.kind {
            StatementKind::Prepare { c_n, h_n, .. } => {
                assert_eq!(h_n, 1, "confirmed prepared at counter 1");
                assert_eq!(c_n, 1, "voting commit from counter 1");
            }
            other => panic!("{other:?}"),
        }
        assert!(fx
            .driver
            .events
            .iter()
            .any(|e| matches!(e, ScpEvent::ConfirmedPrepared { counter: 1, .. })));
    }

    #[test]
    fn full_round_externalizes() {
        let mut fx = Fixture::new();
        let b = Ballot::new(1, val("x"));
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("x")));
        // Peers move straight to Confirm (accepted commit [1,1]).
        let confirm = |n: u32| {
            peer_stmt(
                n,
                StatementKind::Confirm {
                    ballot: b.clone(),
                    p_n: 1,
                    c_n: 1,
                    h_n: 1,
                },
            )
        };
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &confirm(1));
            bp.process(ctx, &confirm(2));
        });
        // v-blocking {1,2} pushed us to accept commit; with our own accept
        // the quorum {0,1,2} confirms it.
        assert_eq!(fx.bp.phase(), BallotPhase::Externalize);
        assert_eq!(fx.bp.decision(), Some(&val("x")));
        assert_eq!(fx.driver.decided, vec![(1, val("x"))]);
        // Terminal statement is Externalize.
        let own = fx.bp.latest_statements()[&NodeId(0)].clone();
        assert!(matches!(own.kind, StatementKind::Externalize { .. }));
    }

    #[test]
    fn v_blocking_accept_overrules_own_vote() {
        let mut fx = Fixture::new();
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("mine")));
        let other = Ballot::new(2, val("theirs"));
        // Two peers (v-blocking for 3-of-4) accepted prepared ⟨2,theirs⟩.
        fx.with_ctx(|bp, ctx| {
            bp.process(
                ctx,
                &prepare_stmt(1, other.clone(), Some(other.clone()), 0, 0),
            );
            bp.process(
                ctx,
                &prepare_stmt(2, other.clone(), Some(other.clone()), 0, 0),
            );
        });
        let own = fx.bp.latest_statements()[&NodeId(0)].clone();
        match own.kind {
            StatementKind::Prepare { prepared, .. } => {
                assert_eq!(
                    prepared,
                    Some(other),
                    "v-blocking accept must overrule our vote"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn v_blocking_higher_counters_force_jump() {
        let mut fx = Fixture::new();
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("x")));
        assert_eq!(fx.bp.current_ballot().unwrap().counter, 1);
        // Peers 1 and 2 sit at counters 5 and 7: v-blocking at >1, >2, …
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &prepare_stmt(1, Ballot::new(5, val("x")), None, 0, 0));
            bp.process(ctx, &prepare_stmt(2, Ballot::new(7, val("x")), None, 0, 0));
        });
        // Lowest counter where {nodes above} is no longer v-blocking: 5
        // (above 5 sits only node 2, not blocking for 3-of-4).
        assert_eq!(fx.bp.current_ballot().unwrap().counter, 5);
    }

    #[test]
    fn timer_arms_only_with_quorum_at_counter() {
        let mut fx = Fixture::new();
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("x")));
        assert!(
            !fx.driver
                .timers
                .iter()
                .any(|(_, k, d)| *k == TimerKind::Ballot && d.is_some()),
            "no quorum yet: no ballot timer"
        );
        let b = Ballot::new(1, val("x"));
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &prepare_stmt(1, b.clone(), None, 0, 0));
            bp.process(ctx, &prepare_stmt(2, b.clone(), None, 0, 0));
        });
        assert!(
            fx.driver
                .timers
                .iter()
                .any(|(_, k, d)| *k == TimerKind::Ballot && d.is_some()),
            "quorum at counter ≥ 1: timer armed"
        );
    }

    #[test]
    fn timeout_bumps_counter_and_keeps_confirmed_value() {
        let mut fx = Fixture::new();
        let b = Ballot::new(1, val("x"));
        fx.with_ctx(|bp, ctx| bp.on_composite(ctx, val("x")));
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &prepare_stmt(1, b.clone(), Some(b.clone()), 0, 0));
            bp.process(ctx, &prepare_stmt(2, b.clone(), Some(b.clone()), 0, 0));
        });
        fx.with_ctx(|bp, ctx| bp.on_timeout(ctx));
        let cur = fx.bp.current_ballot().unwrap().clone();
        assert_eq!(cur.counter, 2);
        assert_eq!(cur.value, val("x"), "confirmed-prepared value carries over");
        assert_eq!(fx.bp.timeout_count(), 1);
    }

    #[test]
    fn late_joiner_adopts_externalize_via_v_blocking() {
        // A node with no composite value catches up purely from peers'
        // Externalize statements (the §3.2 catch-up path).
        let mut fx = Fixture::new();
        let ext = |n: u32| {
            peer_stmt(
                n,
                StatementKind::Externalize {
                    commit: Ballot::new(1, val("x")),
                    h_n: 1,
                },
            )
        };
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &ext(1));
            bp.process(ctx, &ext(2));
        });
        assert_eq!(fx.bp.phase(), BallotPhase::Externalize);
        assert_eq!(fx.bp.decision(), Some(&val("x")));
    }

    #[test]
    fn decided_slot_ignores_further_noise() {
        let mut fx = Fixture::new();
        let ext = |n: u32| {
            peer_stmt(
                n,
                StatementKind::Externalize {
                    commit: Ballot::new(1, val("x")),
                    h_n: 1,
                },
            )
        };
        fx.with_ctx(|bp, ctx| {
            bp.process(ctx, &ext(1));
            bp.process(ctx, &ext(2));
        });
        assert_eq!(fx.driver.decided.len(), 1);
        // Conflicting (Byzantine) confirm afterwards changes nothing.
        fx.with_ctx(|bp, ctx| {
            bp.process(
                ctx,
                &peer_stmt(
                    3,
                    StatementKind::Confirm {
                        ballot: Ballot::new(9, val("evil")),
                        p_n: 9,
                        c_n: 9,
                        h_n: 9,
                    },
                ),
            );
            bp.on_timeout(ctx);
        });
        assert_eq!(fx.bp.decision(), Some(&val("x")));
        assert_eq!(fx.driver.decided.len(), 1, "externalized exactly once");
    }

    #[test]
    fn stale_statements_ignored() {
        let mut fx = Fixture::new();
        let b2 = Ballot::new(2, val("x"));
        let b1 = Ballot::new(1, val("x"));
        fx.with_ctx(|bp, ctx| {
            bp.on_composite(ctx, val("x"));
            bp.process(ctx, &prepare_stmt(1, b2.clone(), None, 0, 0));
            // Older statement from the same node must not regress state.
            bp.process(ctx, &prepare_stmt(1, b1, None, 0, 0));
        });
        match &fx.bp.latest_statements()[&NodeId(1)].kind {
            StatementKind::Prepare { ballot, .. } => assert_eq!(*ballot, b2),
            other => panic!("{other:?}"),
        }
    }
}

//! Transactions and operations (paper §5.2, Fig. 4).
//!
//! A transaction is a source account, validity criteria (sequence number,
//! optional time bounds), a memo, a fee, and one or more operations — each
//! with its own optional source account, enabling multi-party atomic deals
//! like the paper's land-deed-plus-dollars swap. A transaction must be
//! signed by keys meeting the threshold of **every** source account it
//! touches.

use crate::amount::{Price, BASE_FEE};
use crate::asset::Asset;
use crate::entry::{AccountId, Signer, ThresholdLevel};
use std::sync::OnceLock;
use stellar_crypto::codec::{Decode, DecodeError, Encode};
use stellar_crypto::sign::{KeyPair, PublicKey, Signature};
use stellar_crypto::Hash256;

/// Transaction memo: a small tag for off-ledger reconciliation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Memo {
    /// No memo.
    #[default]
    None,
    /// Free-text memo (≤ 28 bytes in production; unenforced here).
    Text(String),
    /// Numeric id memo (e.g. exchange deposit routing).
    Id(u64),
    /// Hash memo (e.g. preimage commitment).
    Hash(Hash256),
}

impl Encode for Memo {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Memo::None => 0u8.encode(out),
            Memo::Text(s) => {
                1u8.encode(out);
                s.encode(out);
            }
            Memo::Id(i) => {
                2u8.encode(out);
                i.encode(out);
            }
            Memo::Hash(h) => {
                3u8.encode(out);
                h.encode(out);
            }
        }
    }
}

impl Decode for Memo {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(Memo::None),
            1 => Ok(Memo::Text(String::decode(input)?)),
            2 => Ok(Memo::Id(u64::decode(input)?)),
            3 => Ok(Memo::Hash(Hash256::decode(input)?)),
            t => Err(DecodeError::BadTag(t.into())),
        }
    }
}

/// Inclusive validity window on ledger close time (§5.2: "an optional
/// limit on when a transaction can execute").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimeBounds {
    /// Earliest close time (0 = unbounded).
    pub min_time: u64,
    /// Latest close time (0 = unbounded).
    pub max_time: u64,
}

stellar_crypto::impl_codec_struct!(TimeBounds { min_time, max_time });

impl TimeBounds {
    /// Whether `close_time` falls inside the window.
    pub fn contains(&self, close_time: u64) -> bool {
        (self.min_time == 0 || close_time >= self.min_time)
            && (self.max_time == 0 || close_time <= self.max_time)
    }
}

/// The principal ledger operations (Fig. 4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operation {
    /// Create and fund a new account.
    CreateAccount {
        /// The account to create.
        destination: AccountId,
        /// Initial XLM funding (stroops); must cover the base reserve.
        starting_balance: i64,
    },
    /// Delete the source account, sending its XLM to `destination`.
    AccountMerge {
        /// Receiver of the remaining balance.
        destination: AccountId,
    },
    /// Change account flags, thresholds, and signers.
    SetOptions {
        /// New `auth_required` flag, if changing.
        auth_required: Option<bool>,
        /// New `auth_revocable` flag, if changing.
        auth_revocable: Option<bool>,
        /// New master-key weight, if changing.
        master_weight: Option<u8>,
        /// New low threshold, if changing.
        low_threshold: Option<u8>,
        /// New medium threshold, if changing.
        medium_threshold: Option<u8>,
        /// New high threshold, if changing.
        high_threshold: Option<u8>,
        /// Signer to add/update (weight 0 removes).
        signer: Option<Signer>,
    },
    /// Pay `amount` of `asset` to `destination`.
    Payment {
        /// Receiver.
        destination: AccountId,
        /// Asset to deliver.
        asset: Asset,
        /// Amount in stroop-scale units.
        amount: i64,
    },
    /// Pay in a different asset via the order book ("up to 5 intermediary
    /// assets", Fig. 4), guaranteeing `dest_amount` delivered and at most
    /// `send_max` spent.
    PathPayment {
        /// Asset debited from the sender.
        send_asset: Asset,
        /// End-to-end limit: maximum of `send_asset` to spend.
        send_max: i64,
        /// Receiver.
        destination: AccountId,
        /// Asset credited to the receiver.
        dest_asset: Asset,
        /// Exact amount of `dest_asset` to deliver.
        dest_amount: i64,
        /// Intermediate hop assets (≤ 5).
        path: Vec<Asset>,
    },
    /// Create, update (by id), or delete (amount 0) an order-book offer.
    ManageOffer {
        /// 0 to create; an existing id to update/delete.
        offer_id: u64,
        /// Asset sold.
        selling: Asset,
        /// Asset bought.
        buying: Asset,
        /// Amount of `selling` offered; 0 deletes.
        amount: i64,
        /// Price in `buying` per `selling`.
        price: Price,
        /// Passive variant: never crosses at exactly reciprocal price.
        passive: bool,
    },
    /// Create/update/delete an account-data entry (empty value deletes).
    ManageData {
        /// Entry name.
        name: String,
        /// New value; `None` deletes.
        value: Option<Vec<u8>>,
    },
    /// Create/update/delete a trustline (limit 0 deletes).
    ChangeTrust {
        /// The asset to trust.
        asset: Asset,
        /// New limit; 0 deletes the trustline.
        limit: i64,
    },
    /// Issuer sets or clears the `authorized` flag on a holder's
    /// trustline (KYC flow, §5.1).
    AllowTrust {
        /// The holder whose trustline is updated.
        trustor: AccountId,
        /// The issued asset's code (issuer is the op source).
        asset_code: String,
        /// Grant or revoke.
        authorize: bool,
    },
    /// Bump the source account's sequence number.
    BumpSequence {
        /// Target sequence number (no-op if not greater).
        bump_to: u64,
    },
}

impl Operation {
    /// The multisig threshold category this operation requires (§5.2).
    pub fn threshold_level(&self) -> ThresholdLevel {
        match self {
            Operation::SetOptions { .. } | Operation::AccountMerge { .. } => ThresholdLevel::High,
            Operation::AllowTrust { .. } | Operation::BumpSequence { .. } => ThresholdLevel::Low,
            _ => ThresholdLevel::Medium,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Operation::CreateAccount { .. } => 0,
            Operation::AccountMerge { .. } => 1,
            Operation::SetOptions { .. } => 2,
            Operation::Payment { .. } => 3,
            Operation::PathPayment { .. } => 4,
            Operation::ManageOffer { .. } => 5,
            Operation::ManageData { .. } => 6,
            Operation::ChangeTrust { .. } => 7,
            Operation::AllowTrust { .. } => 8,
            Operation::BumpSequence { .. } => 9,
        }
    }
}

impl Encode for Operation {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag().encode(out);
        match self {
            Operation::CreateAccount {
                destination,
                starting_balance,
            } => {
                destination.encode(out);
                starting_balance.encode(out);
            }
            Operation::AccountMerge { destination } => destination.encode(out),
            Operation::SetOptions {
                auth_required,
                auth_revocable,
                master_weight,
                low_threshold,
                medium_threshold,
                high_threshold,
                signer,
            } => {
                auth_required.encode(out);
                auth_revocable.encode(out);
                master_weight.encode(out);
                low_threshold.encode(out);
                medium_threshold.encode(out);
                high_threshold.encode(out);
                signer.encode(out);
            }
            Operation::Payment {
                destination,
                asset,
                amount,
            } => {
                destination.encode(out);
                asset.encode(out);
                amount.encode(out);
            }
            Operation::PathPayment {
                send_asset,
                send_max,
                destination,
                dest_asset,
                dest_amount,
                path,
            } => {
                send_asset.encode(out);
                send_max.encode(out);
                destination.encode(out);
                dest_asset.encode(out);
                dest_amount.encode(out);
                path.encode(out);
            }
            Operation::ManageOffer {
                offer_id,
                selling,
                buying,
                amount,
                price,
                passive,
            } => {
                offer_id.encode(out);
                selling.encode(out);
                buying.encode(out);
                amount.encode(out);
                price.encode(out);
                passive.encode(out);
            }
            Operation::ManageData { name, value } => {
                name.encode(out);
                value.encode(out);
            }
            Operation::ChangeTrust { asset, limit } => {
                asset.encode(out);
                limit.encode(out);
            }
            Operation::AllowTrust {
                trustor,
                asset_code,
                authorize,
            } => {
                trustor.encode(out);
                asset_code.encode(out);
                authorize.encode(out);
            }
            Operation::BumpSequence { bump_to } => bump_to.encode(out),
        }
    }
}

impl Decode for Operation {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => Operation::CreateAccount {
                destination: AccountId::decode(input)?,
                starting_balance: i64::decode(input)?,
            },
            1 => Operation::AccountMerge {
                destination: AccountId::decode(input)?,
            },
            2 => Operation::SetOptions {
                auth_required: Option::decode(input)?,
                auth_revocable: Option::decode(input)?,
                master_weight: Option::decode(input)?,
                low_threshold: Option::decode(input)?,
                medium_threshold: Option::decode(input)?,
                high_threshold: Option::decode(input)?,
                signer: Option::decode(input)?,
            },
            3 => Operation::Payment {
                destination: AccountId::decode(input)?,
                asset: Asset::decode(input)?,
                amount: i64::decode(input)?,
            },
            4 => Operation::PathPayment {
                send_asset: Asset::decode(input)?,
                send_max: i64::decode(input)?,
                destination: AccountId::decode(input)?,
                dest_asset: Asset::decode(input)?,
                dest_amount: i64::decode(input)?,
                path: Vec::decode(input)?,
            },
            5 => Operation::ManageOffer {
                offer_id: u64::decode(input)?,
                selling: Asset::decode(input)?,
                buying: Asset::decode(input)?,
                amount: i64::decode(input)?,
                price: Price::decode(input)?,
                passive: bool::decode(input)?,
            },
            6 => Operation::ManageData {
                name: String::decode(input)?,
                value: Option::decode(input)?,
            },
            7 => Operation::ChangeTrust {
                asset: Asset::decode(input)?,
                limit: i64::decode(input)?,
            },
            8 => Operation::AllowTrust {
                trustor: AccountId::decode(input)?,
                asset_code: String::decode(input)?,
                authorize: bool::decode(input)?,
            },
            9 => Operation::BumpSequence {
                bump_to: u64::decode(input)?,
            },
            t => return Err(DecodeError::BadTag(t.into())),
        })
    }
}

/// An operation bundled with its (optional) per-op source account.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourcedOperation {
    /// Source of this operation; defaults to the transaction source.
    pub source: Option<AccountId>,
    /// The operation.
    pub op: Operation,
}

stellar_crypto::impl_codec_struct!(SourcedOperation { source, op });

/// A transaction: atomic list of operations from a source account (§5.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// The fee-paying, sequence-consuming account.
    pub source: AccountId,
    /// Must equal source account's seq_num + 1 at execution.
    pub seq_num: u64,
    /// Fee offered, in stroops (≥ `BASE_FEE` × operations).
    pub fee: i64,
    /// Optional validity window.
    pub time_bounds: Option<TimeBounds>,
    /// Memo.
    pub memo: Memo,
    /// The operations (1 to 100 in production).
    pub operations: Vec<SourcedOperation>,
}

stellar_crypto::impl_codec_struct!(Transaction {
    source,
    seq_num,
    fee,
    time_bounds,
    memo,
    operations,
});

impl Transaction {
    /// Content hash (what gets signed).
    pub fn hash(&self) -> Hash256 {
        stellar_crypto::hash_xdr(self)
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.operations.len()
    }

    /// Fee per operation, for surge-pricing comparisons.
    pub fn fee_rate(&self) -> i64 {
        self.fee / (self.op_count().max(1) as i64)
    }

    /// Minimum acceptable fee.
    pub fn min_fee(&self) -> i64 {
        BASE_FEE * self.op_count().max(1) as i64
    }

    /// Every account that must satisfy signature thresholds: the
    /// transaction source plus each distinct per-op source.
    pub fn signing_accounts(&self) -> Vec<AccountId> {
        let mut out = vec![self.source];
        for so in &self.operations {
            if let Some(s) = so.source {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }
}

/// A transaction plus its signatures.
///
/// The envelope memoizes both its own hash and the transaction (signing)
/// hash: a transaction is hashed at submission, nomination, and apply, and
/// canonical tx-set ordering hashes every envelope O(log n) times during
/// sorting — memoization makes all of those a single SHA-256 per envelope.
/// The caches are content-derived, so they are excluded from equality,
/// encoding, and cloning (a clone may be mutated; it re-hashes lazily).
#[derive(Debug)]
pub struct TransactionEnvelope {
    /// The transaction.
    pub tx: Transaction,
    /// Signatures: the signing public key and its signature over the
    /// transaction hash. (Production uses 4-byte hints; we carry the full
    /// key for simplicity.)
    pub signatures: Vec<(PublicKey, Signature)>,
    /// Revealed hash preimages, matched against `HashX` signers (§5.2's
    /// atomic cross-chain trading building block).
    pub preimages: Vec<Vec<u8>>,
    /// Memoized `tx.hash()` (the signed message).
    cached_tx_hash: OnceLock<Hash256>,
    /// Memoized envelope hash.
    cached_env_hash: OnceLock<Hash256>,
}

impl Clone for TransactionEnvelope {
    fn clone(&self) -> TransactionEnvelope {
        // The hash caches deliberately do not survive cloning: callers are
        // free to mutate a clone's public fields, and a stale memoized hash
        // would let a tampered transaction masquerade as signed.
        TransactionEnvelope::new(
            self.tx.clone(),
            self.signatures.clone(),
            self.preimages.clone(),
        )
    }
}

impl PartialEq for TransactionEnvelope {
    fn eq(&self, other: &TransactionEnvelope) -> bool {
        self.tx == other.tx
            && self.signatures == other.signatures
            && self.preimages == other.preimages
    }
}

impl Eq for TransactionEnvelope {}

impl Encode for TransactionEnvelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tx.encode(out);
        self.signatures.encode(out);
        self.preimages.encode(out);
    }
}

impl Decode for TransactionEnvelope {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(TransactionEnvelope::new(
            Decode::decode(input)?,
            Decode::decode(input)?,
            Decode::decode(input)?,
        ))
    }
}

impl TransactionEnvelope {
    /// Wraps `tx` with the given signatures and preimages.
    pub fn new(
        tx: Transaction,
        signatures: Vec<(PublicKey, Signature)>,
        preimages: Vec<Vec<u8>>,
    ) -> TransactionEnvelope {
        TransactionEnvelope {
            tx,
            signatures,
            preimages,
            cached_tx_hash: OnceLock::new(),
            cached_env_hash: OnceLock::new(),
        }
    }

    /// Wraps and signs `tx` with each of `keys`.
    pub fn sign(tx: Transaction, keys: &[&KeyPair]) -> TransactionEnvelope {
        let h = tx.hash();
        let signatures = keys
            .iter()
            .map(|k| (k.public(), k.sign(h.as_bytes())))
            .collect();
        let env = TransactionEnvelope::new(tx, signatures, Vec::new());
        let _ = env.cached_tx_hash.set(h); // signing already paid for it
        env
    }

    /// Attaches a revealed hash preimage (builder style).
    pub fn with_preimage(self, preimage: Vec<u8>) -> TransactionEnvelope {
        let mut preimages = self.preimages;
        preimages.push(preimage);
        // Preimages are covered by the envelope hash; rebuild so the
        // memoized value cannot go stale.
        TransactionEnvelope::new(self.tx, self.signatures, preimages)
    }

    /// The transaction (signing) hash, computed at most once per envelope.
    pub fn tx_hash(&self) -> Hash256 {
        *self.cached_tx_hash.get_or_init(|| self.tx.hash())
    }

    /// The keys whose signatures verify against the transaction hash.
    pub fn valid_signer_keys(&self) -> Vec<PublicKey> {
        self.valid_signer_keys_cached(&mut crate::sigcache::SigVerifyCache::disabled())
    }

    /// Like [`valid_signer_keys`](Self::valid_signer_keys), but consults
    /// `cache` so a signature already verified at submission or nomination
    /// is not re-verified at apply.
    pub fn valid_signer_keys_cached(
        &self,
        cache: &mut crate::sigcache::SigVerifyCache,
    ) -> Vec<PublicKey> {
        let h = self.tx_hash();
        self.signatures
            .iter()
            .filter(|(pk, sig)| cache.check(&h, *pk, sig))
            .map(|(pk, _)| *pk)
            .collect()
    }

    /// Envelope hash (identifies the signed transaction), computed at most
    /// once per envelope.
    pub fn hash(&self) -> Hash256 {
        *self
            .cached_env_hash
            .get_or_init(|| stellar_crypto::hash_xdr(self))
    }
}

/// Why a transaction or operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxError {
    /// Fee below the network minimum (or unpayable).
    InsufficientFee,
    /// Source account missing.
    NoSourceAccount,
    /// Wrong sequence number.
    BadSequence,
    /// Outside the time bounds.
    TooEarly,
    /// Outside the time bounds.
    TooLate,
    /// Signature weight below the required threshold.
    BadAuth,
    /// No operations.
    MissingOperations,
    /// Insufficient XLM for fee.
    InsufficientBalance,
}

/// Why an individual operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpError {
    /// Referenced account does not exist.
    NoDestination,
    /// Account already exists (CreateAccount).
    AccountExists,
    /// Payment below reserve, balance, or limit constraints.
    Underfunded,
    /// Destination trustline missing.
    NoTrustLine,
    /// Destination trustline not authorized by the issuer.
    NotAuthorized,
    /// Trustline limit would be exceeded.
    LineFull,
    /// Balance would fall below the reserve.
    BelowReserve,
    /// Order book could not satisfy the path within `send_max`.
    TooFewOffers,
    /// PathPayment exceeded its end-to-end limit.
    OverSendMax,
    /// Referenced offer does not exist or is not owned by the source.
    NoOffer,
    /// Malformed operation (bad amount, bad asset, self-reference…).
    Malformed,
    /// Cannot merge: account still has subentries.
    HasSubEntries,
    /// Issuer-only operation attempted by a non-issuer.
    NotIssuer,
    /// Trustline balance non-zero at deletion.
    TrustLineInUse,
}

/// Result of applying one operation.
pub type OpResult = Result<(), OpError>;

/// Result of applying a whole transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxResult {
    /// All operations applied.
    Success {
        /// Fee charged (stroops).
        fee_charged: i64,
    },
    /// The transaction was valid (fee charged, sequence consumed) but an
    /// operation failed, rolling back all operation effects (§5.2).
    Failed {
        /// Fee charged anyway.
        fee_charged: i64,
        /// Index of the first failing operation.
        failed_op: usize,
        /// Its error.
        error: OpError,
    },
    /// The transaction was invalid and had no effect.
    Invalid(TxError),
}

impl TxResult {
    /// True when all operations applied.
    pub fn is_success(&self) -> bool {
        matches!(self, TxResult::Success { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    fn payment_tx(ops: usize) -> Transaction {
        Transaction {
            source: acct(1),
            seq_num: 1,
            fee: BASE_FEE * ops as i64,
            time_bounds: None,
            memo: Memo::None,
            operations: (0..ops)
                .map(|_| SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(2),
                        asset: Asset::Native,
                        amount: 5,
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn hash_changes_with_contents() {
        let a = payment_tx(1);
        let mut b = a.clone();
        b.seq_num = 2;
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn fee_rate_and_min_fee() {
        let tx = payment_tx(4);
        assert_eq!(tx.min_fee(), BASE_FEE * 4);
        assert_eq!(tx.fee_rate(), BASE_FEE);
    }

    #[test]
    fn signing_accounts_deduplicated() {
        let mut tx = payment_tx(1);
        tx.operations.push(SourcedOperation {
            source: Some(acct(3)),
            op: Operation::Payment {
                destination: acct(1),
                asset: Asset::Native,
                amount: 1,
            },
        });
        tx.operations.push(SourcedOperation {
            source: Some(acct(3)),
            op: Operation::BumpSequence { bump_to: 0 },
        });
        assert_eq!(tx.signing_accounts(), vec![acct(1), acct(3)]);
    }

    #[test]
    fn envelope_signature_verification() {
        let k1 = KeyPair::from_seed(1);
        let k2 = KeyPair::from_seed(2);
        let env = TransactionEnvelope::sign(payment_tx(1), &[&k1, &k2]);
        let keys = env.valid_signer_keys();
        assert!(keys.contains(&k1.public()) && keys.contains(&k2.public()));

        let mut tampered = env.clone();
        tampered.tx.fee += 1;
        assert!(tampered.valid_signer_keys().is_empty());
    }

    #[test]
    fn time_bounds() {
        let tb = TimeBounds {
            min_time: 10,
            max_time: 20,
        };
        assert!(!tb.contains(9));
        assert!(tb.contains(10));
        assert!(tb.contains(20));
        assert!(!tb.contains(21));
        assert!(TimeBounds {
            min_time: 0,
            max_time: 0
        }
        .contains(12345));
    }

    #[test]
    fn threshold_levels_follow_the_paper() {
        let high = Operation::SetOptions {
            auth_required: None,
            auth_revocable: None,
            master_weight: None,
            low_threshold: None,
            medium_threshold: None,
            high_threshold: None,
            signer: None,
        };
        assert_eq!(high.threshold_level(), ThresholdLevel::High);
        let low = Operation::AllowTrust {
            trustor: acct(1),
            asset_code: "USD".into(),
            authorize: true,
        };
        assert_eq!(low.threshold_level(), ThresholdLevel::Low);
        let med = Operation::Payment {
            destination: acct(1),
            asset: Asset::Native,
            amount: 1,
        };
        assert_eq!(med.threshold_level(), ThresholdLevel::Medium);
    }

    #[test]
    fn codec_roundtrip_all_operations() {
        use stellar_crypto::codec::Decode;
        let ops = vec![
            Operation::CreateAccount {
                destination: acct(2),
                starting_balance: 5,
            },
            Operation::AccountMerge {
                destination: acct(2),
            },
            Operation::SetOptions {
                auth_required: Some(true),
                auth_revocable: None,
                master_weight: Some(2),
                low_threshold: None,
                medium_threshold: Some(1),
                high_threshold: None,
                signer: Some(Signer::key(PublicKey(9), 1)),
            },
            Operation::Payment {
                destination: acct(2),
                asset: Asset::Native,
                amount: 10,
            },
            Operation::PathPayment {
                send_asset: Asset::Native,
                send_max: 100,
                destination: acct(2),
                dest_asset: Asset::issued(acct(3), "MXN"),
                dest_amount: 50,
                path: vec![Asset::issued(acct(4), "USD")],
            },
            Operation::ManageOffer {
                offer_id: 0,
                selling: Asset::Native,
                buying: Asset::issued(acct(3), "USD"),
                amount: 7,
                price: Price::new(3, 2),
                passive: true,
            },
            Operation::ManageData {
                name: "k".into(),
                value: Some(vec![1]),
            },
            Operation::ChangeTrust {
                asset: Asset::issued(acct(3), "USD"),
                limit: 10,
            },
            Operation::AllowTrust {
                trustor: acct(2),
                asset_code: "USD".into(),
                authorize: false,
            },
            Operation::BumpSequence { bump_to: 77 },
        ];
        for op in ops {
            let e = op.to_bytes();
            assert_eq!(Operation::from_bytes(&e).unwrap(), op);
        }
    }

    #[test]
    fn envelope_codec_roundtrip() {
        use stellar_crypto::codec::Decode;
        let k = KeyPair::from_seed(1);
        let env = TransactionEnvelope::sign(payment_tx(2), &[&k]);
        let back = TransactionEnvelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(back, env);
    }
}

//! The four ledger entry kinds (§5.1): accounts, trustlines, offers, and
//! account data.

use crate::amount::BASE_RESERVE;
use crate::asset::Asset;
use stellar_crypto::codec::{Decode, DecodeError, Encode};
use stellar_crypto::sign::PublicKey;

/// An account identifier: the public key that names the account.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AccountId(pub PublicKey);

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Stellar renders account ids as base32 starting with 'G'; we show
        // a G-prefixed hex form for familiarity.
        write!(f, "G{:012X}", self.0 .0)
    }
}

impl Encode for AccountId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for AccountId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(AccountId(PublicKey::decode(input)?))
    }
}

/// Account flags (§5.1): issuer policy bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AccountFlags {
    /// Holders of assets issued by this account need explicit
    /// authorization on their trustline (KYC support).
    pub auth_required: bool,
    /// The issuer may revoke authorization after granting it.
    pub auth_revocable: bool,
    /// The flags above can never be changed again.
    pub auth_immutable: bool,
}

impl Encode for AccountFlags {
    fn encode(&self, out: &mut Vec<u8>) {
        let bits: u8 = (self.auth_required as u8)
            | ((self.auth_revocable as u8) << 1)
            | ((self.auth_immutable as u8) << 2);
        bits.encode(out);
    }
}

impl Decode for AccountFlags {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bits = u8::decode(input)?;
        if bits > 0b111 {
            return Err(DecodeError::Invalid("account flags"));
        }
        Ok(AccountFlags {
            auth_required: bits & 1 != 0,
            auth_revocable: bits & 2 != 0,
            auth_immutable: bits & 4 != 0,
        })
    }
}

/// What can act as an account signer (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignerKey {
    /// An ordinary public key.
    Key(PublicKey),
    /// A hash whose *preimage revelation* counts as a signature —
    /// "combined with time bounds, permits atomic cross-chain trading."
    HashX(stellar_crypto::Hash256),
}

impl Encode for SignerKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SignerKey::Key(k) => {
                0u8.encode(out);
                k.encode(out);
            }
            SignerKey::HashX(h) => {
                1u8.encode(out);
                h.encode(out);
            }
        }
    }
}

impl Decode for SignerKey {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(SignerKey::Key(PublicKey::decode(input)?)),
            1 => Ok(SignerKey::HashX(stellar_crypto::Hash256::decode(input)?)),
            t => Err(DecodeError::BadTag(t.into())),
        }
    }
}

/// An additional signer with a weight, for multisig (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signer {
    /// The signing key (a public key or a hash-preimage lock).
    pub key: SignerKey,
    /// Weight contributed toward the operation threshold (0 removes).
    pub weight: u8,
}

impl Signer {
    /// Convenience constructor for ordinary public-key signers.
    pub fn key(key: PublicKey, weight: u8) -> Signer {
        Signer {
            key: SignerKey::Key(key),
            weight,
        }
    }

    /// Convenience constructor for hash-preimage signers.
    pub fn hash_x(hash: stellar_crypto::Hash256, weight: u8) -> Signer {
        Signer {
            key: SignerKey::HashX(hash),
            weight,
        }
    }
}

stellar_crypto::impl_codec_struct!(Signer { key, weight });

/// Signing thresholds per operation category (§5.2: "higher signing weight
/// for some operations … and lower for others").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Thresholds {
    /// Weight of the master key (the key naming the account).
    pub master_weight: u8,
    /// Threshold for low-impact ops (e.g. `AllowTrust`, `BumpSequence`).
    pub low: u8,
    /// Threshold for medium-impact ops (payments, offers, trustlines).
    pub medium: u8,
    /// Threshold for high-impact ops (`SetOptions`, `AccountMerge`).
    pub high: u8,
}

impl Default for Thresholds {
    fn default() -> Self {
        // Master key alone suffices for everything by default.
        Thresholds {
            master_weight: 1,
            low: 0,
            medium: 0,
            high: 0,
        }
    }
}

stellar_crypto::impl_codec_struct!(Thresholds {
    master_weight,
    low,
    medium,
    high
});

/// An account: the principal that owns and issues assets (§5.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccountEntry {
    /// The public key naming the account.
    pub id: AccountId,
    /// Native XLM balance in stroops.
    pub balance: i64,
    /// Sequence number of the last executed transaction.
    pub seq_num: u64,
    /// Number of subentries (trustlines, offers, data, extra signers);
    /// each raises the reserve.
    pub num_subentries: u32,
    /// Issuer policy flags.
    pub flags: AccountFlags,
    /// Additional signers for multisig.
    pub signers: Vec<Signer>,
    /// Signing thresholds.
    pub thresholds: Thresholds,
}

stellar_crypto::impl_codec_struct!(AccountEntry {
    id,
    balance,
    seq_num,
    num_subentries,
    flags,
    signers,
    thresholds,
});

impl AccountEntry {
    /// Creates a fresh account with default thresholds.
    pub fn new(id: AccountId, balance: i64) -> AccountEntry {
        AccountEntry {
            id,
            balance,
            seq_num: 0,
            num_subentries: 0,
            flags: AccountFlags::default(),
            signers: Vec::new(),
            thresholds: Thresholds::default(),
        }
    }

    /// Minimum XLM balance: `(2 + subentries) · base_reserve` (§5.1).
    pub fn reserve(&self, base_reserve: i64) -> i64 {
        (2 + i64::from(self.num_subentries)) * base_reserve
    }

    /// XLM available above the reserve.
    pub fn available(&self, base_reserve: i64) -> i64 {
        self.balance - self.reserve(base_reserve)
    }

    /// Total signing weight of the given keys for this account:
    /// master weight if the master key signed, plus matching signer
    /// weights. See [`AccountEntry::signing_weight_with_preimages`] for
    /// hash-preimage signers.
    pub fn signing_weight(&self, signed_by: &[PublicKey]) -> u32 {
        self.signing_weight_with_preimages(signed_by, &[])
    }

    /// Signing weight including revealed hash preimages (§5.2): a
    /// `HashX(h)` signer contributes its weight when some preimage in
    /// `preimages` hashes to `h`.
    pub fn signing_weight_with_preimages(
        &self,
        signed_by: &[PublicKey],
        preimages: &[Vec<u8>],
    ) -> u32 {
        let mut weight = 0u32;
        if signed_by.contains(&self.id.0) {
            weight += u32::from(self.thresholds.master_weight);
        }
        let revealed: Vec<stellar_crypto::Hash256> = preimages
            .iter()
            .map(|p| stellar_crypto::sha256::sha256(p))
            .collect();
        for s in &self.signers {
            let matched = match &s.key {
                SignerKey::Key(k) => signed_by.contains(k),
                SignerKey::HashX(h) => revealed.contains(h),
            };
            if matched {
                weight += u32::from(s.weight);
            }
        }
        weight
    }

    /// Threshold for an operation category. A threshold of 0 means "master
    /// weight ≥ 1 suffices" in production; we normalize to max(1, t).
    pub fn threshold(&self, level: ThresholdLevel) -> u32 {
        let t = match level {
            ThresholdLevel::Low => self.thresholds.low,
            ThresholdLevel::Medium => self.thresholds.medium,
            ThresholdLevel::High => self.thresholds.high,
        };
        u32::from(t).max(1)
    }
}

/// Operation impact categories for multisig thresholds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThresholdLevel {
    /// Low-impact operations.
    Low,
    /// Medium-impact operations (most).
    Medium,
    /// High-impact operations.
    High,
}

/// A trustline: consent to hold (up to `limit` of) an issued asset (§5.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TrustLineEntry {
    /// The holding account.
    pub account: AccountId,
    /// The asset held (never `Native`).
    pub asset: Asset,
    /// Current balance.
    pub balance: i64,
    /// Limit above which the balance cannot rise.
    pub limit: i64,
    /// Whether the issuer authorized this holder (meaningful when the
    /// issuer sets `auth_required`).
    pub authorized: bool,
}

stellar_crypto::impl_codec_struct!(TrustLineEntry {
    account,
    asset,
    balance,
    limit,
    authorized
});

impl TrustLineEntry {
    /// Room left under the limit.
    pub fn headroom(&self) -> i64 {
        self.limit - self.balance
    }
}

/// An offer on the built-in order book (§5.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OfferEntry {
    /// Ledger-unique offer id.
    pub id: u64,
    /// The account making the offer.
    pub account: AccountId,
    /// Asset being sold.
    pub selling: Asset,
    /// Asset being bought.
    pub buying: Asset,
    /// Remaining amount of `selling` on offer.
    pub amount: i64,
    /// Price: units of `buying` per unit of `selling`.
    pub price: crate::amount::Price,
    /// Passive offers do not cross offers at exactly the reciprocal price
    /// (zero-spread market making, §5.2).
    pub passive: bool,
}

stellar_crypto::impl_codec_struct!(OfferEntry {
    id,
    account,
    selling,
    buying,
    amount,
    price,
    passive
});

/// A key/value datum attached to an account (§5.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataEntry {
    /// Owning account.
    pub account: AccountId,
    /// Name (≤ 64 bytes by convention).
    pub name: String,
    /// Value (small metadata blob).
    pub value: Vec<u8>,
}

stellar_crypto::impl_codec_struct!(DataEntry {
    account,
    name,
    value
});

/// Any ledger entry, as stored in buckets and hashed into the snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LedgerEntry {
    /// An account entry.
    Account(AccountEntry),
    /// A trustline entry.
    TrustLine(TrustLineEntry),
    /// An offer entry.
    Offer(OfferEntry),
    /// An account-data entry.
    Data(DataEntry),
}

impl LedgerEntry {
    /// A stable key identifying the entry across versions.
    pub fn key(&self) -> LedgerKey {
        match self {
            LedgerEntry::Account(a) => LedgerKey::Account(a.id),
            LedgerEntry::TrustLine(t) => LedgerKey::TrustLine(t.account, t.asset.clone()),
            LedgerEntry::Offer(o) => LedgerKey::Offer(o.id),
            LedgerEntry::Data(d) => LedgerKey::Data(d.account, d.name.clone()),
        }
    }
}

impl Encode for LedgerEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LedgerEntry::Account(a) => {
                0u8.encode(out);
                a.encode(out);
            }
            LedgerEntry::TrustLine(t) => {
                1u8.encode(out);
                t.encode(out);
            }
            LedgerEntry::Offer(o) => {
                2u8.encode(out);
                o.encode(out);
            }
            LedgerEntry::Data(d) => {
                3u8.encode(out);
                d.encode(out);
            }
        }
    }
}

impl Decode for LedgerEntry {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(LedgerEntry::Account(AccountEntry::decode(input)?)),
            1 => Ok(LedgerEntry::TrustLine(TrustLineEntry::decode(input)?)),
            2 => Ok(LedgerEntry::Offer(OfferEntry::decode(input)?)),
            3 => Ok(LedgerEntry::Data(DataEntry::decode(input)?)),
            t => Err(DecodeError::BadTag(t.into())),
        }
    }
}

/// Identifies a ledger entry independent of its contents.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LedgerKey {
    /// Account by id.
    Account(AccountId),
    /// Trustline by (account, asset).
    TrustLine(AccountId, Asset),
    /// Offer by id.
    Offer(u64),
    /// Data by (account, name).
    Data(AccountId, String),
}

impl Encode for LedgerKey {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LedgerKey::Account(id) => {
                0u8.encode(out);
                id.encode(out);
            }
            LedgerKey::TrustLine(id, asset) => {
                1u8.encode(out);
                id.encode(out);
                asset.encode(out);
            }
            LedgerKey::Offer(id) => {
                2u8.encode(out);
                id.encode(out);
            }
            LedgerKey::Data(id, name) => {
                3u8.encode(out);
                id.encode(out);
                name.encode(out);
            }
        }
    }
}

impl Decode for LedgerKey {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(LedgerKey::Account(AccountId::decode(input)?)),
            1 => Ok(LedgerKey::TrustLine(
                AccountId::decode(input)?,
                Asset::decode(input)?,
            )),
            2 => Ok(LedgerKey::Offer(u64::decode(input)?)),
            3 => Ok(LedgerKey::Data(
                AccountId::decode(input)?,
                String::decode(input)?,
            )),
            t => Err(DecodeError::BadTag(t.into())),
        }
    }
}

/// The default base reserve exposed for callers needing the constant.
pub fn default_base_reserve() -> i64 {
    BASE_RESERVE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::xlm;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    #[test]
    fn reserve_grows_with_subentries() {
        let mut a = AccountEntry::new(acct(1), xlm(10));
        assert_eq!(a.reserve(BASE_RESERVE), xlm(1)); // 2 × 0.5 XLM
        a.num_subentries = 3;
        assert_eq!(a.reserve(BASE_RESERVE), BASE_RESERVE * 5);
        assert_eq!(a.available(BASE_RESERVE), xlm(10) - BASE_RESERVE * 5);
    }

    #[test]
    fn signing_weight_master_and_signers() {
        let mut a = AccountEntry::new(acct(1), 0);
        a.signers.push(Signer::key(PublicKey(50), 2));
        a.thresholds.master_weight = 3;
        assert_eq!(a.signing_weight(&[PublicKey(1)]), 3);
        assert_eq!(a.signing_weight(&[PublicKey(50)]), 2);
        assert_eq!(a.signing_weight(&[PublicKey(1), PublicKey(50)]), 5);
        assert_eq!(a.signing_weight(&[PublicKey(99)]), 0);
    }

    #[test]
    fn deauthorized_master_key() {
        // "accounts can … deauthorize the key that names the account."
        let mut a = AccountEntry::new(acct(1), 0);
        a.thresholds.master_weight = 0;
        a.signers.push(Signer::key(PublicKey(50), 1));
        assert_eq!(a.signing_weight(&[PublicKey(1)]), 0);
        assert_eq!(a.signing_weight(&[PublicKey(50)]), 1);
    }

    #[test]
    fn thresholds_default_to_one() {
        let a = AccountEntry::new(acct(1), 0);
        assert_eq!(a.threshold(ThresholdLevel::Low), 1);
        assert_eq!(a.threshold(ThresholdLevel::Medium), 1);
        assert_eq!(a.threshold(ThresholdLevel::High), 1);
    }

    #[test]
    fn entry_keys() {
        let a = LedgerEntry::Account(AccountEntry::new(acct(1), 0));
        assert_eq!(a.key(), LedgerKey::Account(acct(1)));
        let t = LedgerEntry::TrustLine(TrustLineEntry {
            account: acct(1),
            asset: Asset::issued(acct(2), "USD"),
            balance: 0,
            limit: 100,
            authorized: true,
        });
        assert_eq!(
            t.key(),
            LedgerKey::TrustLine(acct(1), Asset::issued(acct(2), "USD"))
        );
    }

    #[test]
    fn entry_codec_roundtrip() {
        use stellar_crypto::codec::{Decode, Encode};
        let entries = vec![
            LedgerEntry::Account(AccountEntry::new(acct(1), 55)),
            LedgerEntry::TrustLine(TrustLineEntry {
                account: acct(1),
                asset: Asset::issued(acct(2), "USD"),
                balance: 10,
                limit: 100,
                authorized: false,
            }),
            LedgerEntry::Offer(OfferEntry {
                id: 9,
                account: acct(1),
                selling: Asset::Native,
                buying: Asset::issued(acct(2), "USD"),
                amount: 1000,
                price: crate::amount::Price::new(3, 7),
                passive: true,
            }),
            LedgerEntry::Data(DataEntry {
                account: acct(1),
                name: "k".into(),
                value: vec![1, 2],
            }),
        ];
        for e in entries {
            assert_eq!(LedgerEntry::from_bytes(&e.to_bytes()).unwrap(), e);
        }
    }
}

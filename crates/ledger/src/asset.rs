//! Assets: the native token and issuer-named tokens.
//!
//! Issued assets are named by `(issuing account, short code)` (§5.1), e.g.
//! `USD` issued by AnchorUSD. The same code from two issuers is two
//! distinct assets — exactly the property that makes cross-issuer atomicity
//! (goal 3 of the paper) non-trivial and the built-in order book valuable.

use crate::entry::AccountId;
use stellar_crypto::codec::{Decode, DecodeError, Encode};

/// A 1–12 character asset code (e.g. "USD", "EUR", "REPO").
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AssetCode(String);

impl AssetCode {
    /// Creates a code after validating length and charset.
    ///
    /// # Panics
    ///
    /// Panics if the code is empty, longer than 12 bytes, or contains
    /// non-alphanumeric characters — such codes can never appear on the
    /// ledger.
    pub fn new(code: &str) -> AssetCode {
        assert!(
            !code.is_empty() && code.len() <= 12 && code.bytes().all(|b| b.is_ascii_alphanumeric()),
            "invalid asset code {code:?}"
        );
        AssetCode(code.to_string())
    }

    /// The code text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Encode for AssetCode {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for AssetCode {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let s = String::decode(input)?;
        if s.is_empty() || s.len() > 12 || !s.bytes().all(|b| b.is_ascii_alphanumeric()) {
            return Err(DecodeError::Invalid("asset code"));
        }
        Ok(AssetCode(s))
    }
}

/// An asset: the native XLM token or an issued token.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Asset {
    /// The pre-mined native currency (fee and reserve denomination).
    Native,
    /// A token named by issuer and code.
    Issued {
        /// The issuing account.
        issuer: AccountId,
        /// The short asset code.
        code: AssetCode,
    },
}

impl Asset {
    /// Convenience constructor for issued assets.
    pub fn issued(issuer: AccountId, code: &str) -> Asset {
        Asset::Issued {
            issuer,
            code: AssetCode::new(code),
        }
    }

    /// True for the native asset.
    pub fn is_native(&self) -> bool {
        matches!(self, Asset::Native)
    }

    /// The issuer, if this is an issued asset.
    pub fn issuer(&self) -> Option<AccountId> {
        match self {
            Asset::Native => None,
            Asset::Issued { issuer, .. } => Some(*issuer),
        }
    }
}

impl std::fmt::Display for Asset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Asset::Native => write!(f, "XLM"),
            Asset::Issued { issuer, code } => write!(f, "{}:{}", code.as_str(), issuer),
        }
    }
}

impl Encode for Asset {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Asset::Native => 0u8.encode(out),
            Asset::Issued { issuer, code } => {
                1u8.encode(out);
                issuer.encode(out);
                code.encode(out);
            }
        }
    }
}

impl Decode for Asset {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(Asset::Native),
            1 => Ok(Asset::Issued {
                issuer: AccountId::decode(input)?,
                code: AssetCode::decode(input)?,
            }),
            t => Err(DecodeError::BadTag(t.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    #[test]
    fn same_code_different_issuer_differ() {
        let a = Asset::issued(acct(1), "USD");
        let b = Asset::issued(acct(2), "USD");
        assert_ne!(a, b);
        assert_eq!(a, Asset::issued(acct(1), "USD"));
    }

    #[test]
    fn native_properties() {
        assert!(Asset::Native.is_native());
        assert_eq!(Asset::Native.issuer(), None);
        assert_eq!(Asset::issued(acct(1), "EUR").issuer(), Some(acct(1)));
    }

    #[test]
    fn codec_roundtrip() {
        use stellar_crypto::codec::{Decode, Encode};
        for asset in [Asset::Native, Asset::issued(acct(7), "CARBON")] {
            assert_eq!(Asset::from_bytes(&asset.to_bytes()).unwrap(), asset);
        }
    }

    #[test]
    fn bad_codes_rejected_on_decode() {
        use stellar_crypto::codec::{Decode, Encode};
        let mut bytes = Vec::new();
        1u8.encode(&mut bytes);
        acct(1).encode(&mut bytes);
        "has space!".to_string().encode(&mut bytes);
        assert!(Asset::from_bytes(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid asset code")]
    fn oversized_code_panics() {
        let _ = AssetCode::new("THIRTEENCHARS");
    }
}

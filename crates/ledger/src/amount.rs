//! Amounts and prices.
//!
//! Amounts are 64-bit signed integers denominated in *stroops*
//! (1 XLM = 10⁷ stroops), matching production Stellar. Prices are exact
//! rationals `n/d` so order-book arithmetic never accumulates rounding
//! drift; conversions round in the direction that favors the *maker*
//! (the resting offer), as in `stellar-core`.

use stellar_crypto::impl_codec_struct;

/// Stroops per XLM (1 XLM = 10⁷ stroops).
pub const STROOPS_PER_XLM: i64 = 10_000_000;

/// The base transaction fee: 100 stroops = 10⁻⁵ XLM (§5.2).
pub const BASE_FEE: i64 = 100;

/// The per-entry base reserve: 0.5 XLM (§5.1).
pub const BASE_RESERVE: i64 = 5_000_000;

/// Converts whole XLM to stroops.
///
/// # Panics
///
/// Panics on overflow (amounts beyond ~922 billion XLM).
pub fn xlm(amount: i64) -> i64 {
    amount
        .checked_mul(STROOPS_PER_XLM)
        .expect("XLM amount overflow")
}

/// An exact rational price: `n` units of the buying asset per `d` units of
/// the selling asset.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Price {
    /// Numerator (> 0).
    pub n: u32,
    /// Denominator (> 0).
    pub d: u32,
}

impl_codec_struct!(Price { n, d });

impl Price {
    /// Creates `n/d`.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero (such prices are invalid on the
    /// ledger and always indicate a caller bug).
    pub fn new(n: u32, d: u32) -> Price {
        assert!(n > 0 && d > 0, "price components must be positive");
        Price { n, d }
    }

    /// One-to-one price.
    pub fn one() -> Price {
        Price { n: 1, d: 1 }
    }

    /// The reciprocal price `d/n`.
    pub fn invert(&self) -> Price {
        Price {
            n: self.d,
            d: self.n,
        }
    }

    /// The price as a float, for display and metrics only.
    pub fn as_f64(&self) -> f64 {
        f64::from(self.n) / f64::from(self.d)
    }

    /// Exact comparison `self < other` via cross multiplication.
    pub fn lt(&self, other: &Price) -> bool {
        u64::from(self.n) * u64::from(other.d) < u64::from(other.n) * u64::from(self.d)
    }

    /// Exact comparison `self <= other`.
    pub fn le(&self, other: &Price) -> bool {
        u64::from(self.n) * u64::from(other.d) <= u64::from(other.n) * u64::from(self.d)
    }

    /// Whether two prices `p` (selling A for B) and `q` (selling B for A)
    /// cross: `p · q ≤ 1`, i.e. the asks meet.
    pub fn crosses(&self, counter: &Price) -> bool {
        u64::from(self.n) * u64::from(counter.n) <= u64::from(self.d) * u64::from(counter.d)
    }

    /// Amount of the buying asset corresponding to selling `amount`, at
    /// this price, rounding **down** (taker receives the floor).
    ///
    /// Returns `None` on overflow.
    pub fn convert_floor(&self, amount: i64) -> Option<i64> {
        if amount < 0 {
            return None;
        }
        let v = i128::from(amount) * i128::from(self.n) / i128::from(self.d);
        i64::try_from(v).ok()
    }

    /// Like [`Price::convert_floor`] but rounding **up** (what the buyer
    /// must pay to take `amount`).
    pub fn convert_ceil(&self, amount: i64) -> Option<i64> {
        if amount < 0 {
            return None;
        }
        let num = i128::from(amount) * i128::from(self.n);
        let d = i128::from(self.d);
        let v = (num + d - 1) / d;
        i64::try_from(v).ok()
    }
}

impl PartialOrd for Price {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Price {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (u64::from(self.n) * u64::from(other.d)).cmp(&(u64::from(other.n) * u64::from(self.d)))
    }
}

impl std::fmt::Display for Price {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.n, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xlm_conversion() {
        assert_eq!(xlm(1), 10_000_000);
        assert_eq!(xlm(0), 0);
    }

    #[test]
    fn price_ordering_is_exact() {
        // 1/3 < 2/5 < 1/2, no float wobble.
        let a = Price::new(1, 3);
        let b = Price::new(2, 5);
        let c = Price::new(1, 2);
        assert!(a < b && b < c);
        assert!(a.lt(&b) && b.le(&c) && c.le(&c));
    }

    #[test]
    fn crossing() {
        // Selling A at 2 B/A crosses an offer selling B at 0.5 A/B exactly.
        assert!(Price::new(2, 1).crosses(&Price::new(1, 2)));
        // Selling A at 2 B/A does not cross B at 0.4 A/B (product 0.8 ≤ 1 — crosses).
        assert!(Price::new(2, 1).crosses(&Price::new(2, 5)));
        // Product 1.2 > 1: no cross.
        assert!(!Price::new(3, 1).crosses(&Price::new(2, 5)));
    }

    #[test]
    fn conversions_round_correctly() {
        let p = Price::new(1, 3); // one buying unit per 3 selling units
        assert_eq!(p.convert_floor(10), Some(3));
        assert_eq!(p.convert_ceil(10), Some(4));
        assert_eq!(p.convert_floor(0), Some(0));
        assert_eq!(p.convert_floor(-1), None);
    }

    #[test]
    fn conversion_overflow_guard() {
        let p = Price::new(u32::MAX, 1);
        assert_eq!(p.convert_floor(i64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_price_panics() {
        let _ = Price::new(0, 1);
    }
}

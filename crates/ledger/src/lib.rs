//! Stellar's ledger: the replicated state machine above SCP (paper §5).
//!
//! The ledger is account-based (not UTXO): its contents are four kinds of
//! entries — **accounts**, **trustlines**, **offers**, and **account
//! data** — plus a header chaining each ledger to its predecessor and to
//! content hashes of the transaction set, results, and state snapshot
//! (Fig. 3).
//!
//! Key design points reproduced from §5:
//!
//! * anyone can issue assets; holding one requires an explicit trustline
//!   (spam protection), optionally gated by the issuer's `auth_required`
//!   flag (KYC);
//! * a built-in order book trades any asset pair, and **path payments**
//!   atomically cross up to five pairs with an end-to-end limit price —
//!   the mechanism behind "send $0.50 to Mexico in 5 seconds";
//! * transactions are atomic lists of operations (Fig. 4), replay-proofed
//!   by per-account sequence numbers and bounded by optional time windows;
//! * fees are trivial (10⁻⁵ XLM) until congestion, when a Dutch auction
//!   orders transactions by fee-per-operation;
//! * every ledger entry raises the account's minimum XLM **reserve**.
//!
//! Module tour: [`asset`] and [`amount`] define the value types; [`entry`]
//! the four entry kinds; [`store`] the entry store with copy-on-write
//! deltas (so failed transactions roll back cleanly); [`orderbook`] the
//! matching engine; [`tx`] transactions/operations; [`ops`] operation
//! execution; [`pathfind`] path-payment routing; [`txset`] transaction-set
//! assembly with surge pricing; [`header`] ledger headers; [`apply`] the
//! ledger-close function tying it all together; [`footprint`] static
//! read/write footprints and wave scheduling; [`parallel`] the
//! footprint-scheduled multi-threaded apply path (byte-identical to
//! sequential, gated on `LedgerParams::apply_threads`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amount;
pub mod apply;
pub mod asset;
pub mod backend;
pub mod entry;
pub mod footprint;
pub mod header;
pub mod ops;
pub mod orderbook;
pub mod parallel;
pub mod pathfind;
pub mod sigcache;
pub mod store;
pub mod tx;
pub mod txset;

pub use amount::{Price, STROOPS_PER_XLM};
pub use asset::{Asset, AssetCode};
pub use backend::{LedgerBackend, MemBackend, StoreIoStats};
pub use entry::{AccountEntry, AccountId, DataEntry, OfferEntry, TrustLineEntry};
pub use header::LedgerHeader;
pub use parallel::ApplyStats;
pub use store::{LedgerDelta, LedgerStore};
pub use tx::{Memo, OpResult, Operation, Transaction, TransactionEnvelope, TxResult};
pub use txset::TransactionSet;

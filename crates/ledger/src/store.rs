//! The ledger entry store with copy-on-write deltas.
//!
//! Production `stellar-core` keeps the ledger in a SQL database; this
//! reproduction substitutes a pluggable [`LedgerBackend`] behind the same
//! read/modify interface (see `DESIGN.md`): in-RAM ordered maps by
//! default, a log-structured disk store via `crates/store`. The important
//! structural property is shared: transactions execute against a
//! [`LedgerDelta`] overlay that is either *committed* into the base store
//! or discarded — which is how "transactions are atomic: if any operation
//! fails, none of them execute" (§5.2) is implemented.
//!
//! The store also tracks, per ledger close, which entries changed; that
//! change feed drives both the backend and the bucket list in
//! `stellar-buckets` (one feed, two consumers).
//!
//! Two hot-path choices matter for close throughput:
//!
//! * **Split keying.** Trustlines and data entries are keyed by nested
//!   maps (`account → asset → entry`), not by `(AccountId, Asset)` tuples,
//!   so point reads never clone an `Asset` or build a scratch `String`
//!   just to form a lookup key.
//! * **Order-book index.** Backends maintain a side index
//!   `selling → buying → {(price, offer id)}` kept in lockstep with the
//!   offer map at commit time. `offers_for_pair` walks the index in order
//!   — O(log n + k) for k results — instead of scanning and sorting every
//!   live offer; the matching engine pages through it lazily so a deep
//!   book costs only what it fills.

use crate::asset::Asset;
use crate::backend::{LedgerBackend, MemBackend, StoreIoStats};
use crate::entry::{
    AccountEntry, AccountId, DataEntry, LedgerEntry, LedgerKey, OfferEntry, TrustLineEntry,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use stellar_persist::DurableStore;

pub use crate::backend::{book_key, BookCursor};

/// The base ledger state: all live entries, behind a pluggable backend.
pub struct LedgerStore {
    backend: Box<dyn LedgerBackend>,
}

impl Clone for LedgerStore {
    fn clone(&self) -> LedgerStore {
        LedgerStore {
            backend: self.backend.boxed_clone(),
        }
    }
}

impl std::fmt::Debug for LedgerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LedgerStore")
            .field("backend", &self.backend.name())
            .field("accounts", &self.backend.account_count())
            .field("offers", &self.backend.offer_count())
            .finish()
    }
}

impl Default for LedgerStore {
    fn default() -> Self {
        LedgerStore::new()
    }
}

impl LedgerStore {
    /// An empty store over the in-RAM backend.
    pub fn new() -> LedgerStore {
        LedgerStore::with_backend(Box::new(MemBackend::new()))
    }

    /// A store over an explicit backend (the one constructor `sim`,
    /// `herder`, and `horizon` thread the backend choice through).
    pub fn with_backend(backend: Box<dyn LedgerBackend>) -> LedgerStore {
        LedgerStore { backend }
    }

    /// The backend's short name ("mem" / "disk").
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The next offer id the allocator will hand out.
    pub fn next_offer_id(&self) -> u64 {
        self.backend.next_offer_id()
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.backend.account_count()
    }

    /// Number of open offers.
    pub fn offer_count(&self) -> usize {
        self.backend.offer_count()
    }

    /// Looks up an account.
    pub fn account(&self, id: AccountId) -> Option<AccountEntry> {
        self.backend.account(id)
    }

    /// Looks up a trustline.
    pub fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        self.backend.trustline(id, asset)
    }

    /// Looks up an offer by id.
    pub fn offer(&self, id: u64) -> Option<OfferEntry> {
        self.backend.offer(id)
    }

    /// Looks up a data entry.
    pub fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        self.backend.data(id, name)
    }

    /// All trustlines of one account (Horizon's account view).
    pub fn trustlines_of(&self, id: AccountId) -> Vec<TrustLineEntry> {
        self.backend.trustlines_of(id)
    }

    /// Every live offer, in id order (naive-scan reference for tests).
    pub fn offers(&self) -> Vec<OfferEntry> {
        self.backend
            .all_entries()
            .into_iter()
            .filter_map(|e| match e {
                LedgerEntry::Offer(o) => Some(o),
                _ => None,
            })
            .collect()
    }

    /// All offers selling `selling` for `buying`, best (lowest) price
    /// first, ties by offer id (time priority). Served from the book
    /// index: O(log n + k), already in order.
    pub fn offers_for_pair(&self, selling: &Asset, buying: &Asset) -> Vec<OfferEntry> {
        self.backend
            .book_page(selling, buying, None, usize::MAX)
            .into_iter()
            .map(|(_, id)| self.backend.offer(id).expect("indexed offer exists"))
            .collect()
    }

    /// Directly inserts an account (genesis / test setup).
    pub fn put_account(&mut self, account: AccountEntry) {
        let key = LedgerKey::Account(account.id);
        self.backend
            .apply(&[(key, Some(LedgerEntry::Account(account)))]);
    }

    /// Directly inserts a trustline (genesis / test setup).
    pub fn put_trustline(&mut self, tl: TrustLineEntry) {
        let key = LedgerKey::TrustLine(tl.account, tl.asset.clone());
        self.backend
            .apply(&[(key, Some(LedgerEntry::TrustLine(tl)))]);
    }

    /// Iterates over every live entry (snapshot hashing, bucket seeding).
    pub fn all_entries(&self) -> impl Iterator<Item = LedgerEntry> {
        self.backend.all_entries().into_iter()
    }

    /// Rebuilds a store (in-RAM backend) from a flat entry dump
    /// (bucket-list catch-up).
    pub fn from_entries(entries: impl IntoIterator<Item = LedgerEntry>) -> LedgerStore {
        let mut store = LedgerStore::new();
        store.load_entries(entries);
        store
    }

    /// Bulk-loads entries into this store's backend, bumping the offer-id
    /// allocator past any loaded offer. Applies in bounded chunks so a
    /// disk backend can flush between them instead of buffering the whole
    /// dump in its cache.
    pub fn load_entries(&mut self, entries: impl IntoIterator<Item = LedgerEntry>) {
        const CHUNK: usize = 8192;
        let mut next_offer_id = self.backend.next_offer_id();
        let mut batch = Vec::with_capacity(CHUNK);
        for e in entries {
            if let LedgerEntry::Offer(o) = &e {
                next_offer_id = next_offer_id.max(o.id + 1);
            }
            batch.push((e.key(), Some(e)));
            if batch.len() >= CHUNK {
                self.backend.apply(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            self.backend.apply(&batch);
        }
        self.backend.set_next_offer_id(next_offer_id);
    }

    /// Makes all committed state durable (disk backends). `true` in RAM.
    pub fn flush(&mut self, ledger_seq: u64) -> bool {
        self.backend.flush(ledger_seq)
    }

    /// The data disk the backend writes to, if any.
    pub fn disk(&self) -> Option<Rc<RefCell<DurableStore>>> {
        self.backend.disk()
    }

    /// Backend I/O counters (telemetry).
    pub fn io_stats(&self) -> StoreIoStats {
        self.backend.io_stats()
    }

    /// Approximate bytes of RAM the backend holds entries in.
    pub fn resident_bytes(&self) -> u64 {
        self.backend.resident_bytes()
    }

    /// The backend as a read surface (crate-internal: the parallel apply
    /// path layers views and snapshots directly over it).
    pub(crate) fn backend(&self) -> &dyn LedgerBackend {
        self.backend.as_ref()
    }

    /// Starts a delta (scratch overlay) over this store.
    pub fn begin(&self) -> LedgerDelta<'_> {
        LedgerDelta {
            base: self.backend.as_ref(),
            accounts: BTreeMap::new(),
            trustlines: BTreeMap::new(),
            offers: BTreeMap::new(),
            data: BTreeMap::new(),
            next_offer_id: self.backend.next_offer_id(),
        }
    }

    /// Applies a committed delta's changes, returning the change feed for
    /// the bucket list: `(key, Some(entry))` for creates/updates,
    /// `(key, None)` for deletions.
    ///
    /// Entries are *moved* out of the delta into the feed (not cloned):
    /// the feed is built once and shared by the backend and the bucket
    /// list, so memoized encodings stay warm and a disk backend can
    /// serialize straight from it.
    pub fn commit(&mut self, changes: DeltaChanges) -> Vec<(LedgerKey, Option<LedgerEntry>)> {
        let mut feed = Vec::new();
        for (id, slot) in changes.accounts {
            feed.push((LedgerKey::Account(id), slot.map(LedgerEntry::Account)));
        }
        for (id, by_asset) in changes.trustlines {
            for (asset, slot) in by_asset {
                feed.push((
                    LedgerKey::TrustLine(id, asset),
                    slot.map(LedgerEntry::TrustLine),
                ));
            }
        }
        for (id, slot) in changes.offers {
            feed.push((LedgerKey::Offer(id), slot.map(LedgerEntry::Offer)));
        }
        for (id, by_name) in changes.data {
            for (name, slot) in by_name {
                feed.push((LedgerKey::Data(id, name), slot.map(LedgerEntry::Data)));
            }
        }
        self.backend.apply(&feed);
        self.backend.set_next_offer_id(changes.next_offer_id);
        feed
    }
}

/// The owned changes extracted from a delta at commit time.
///
/// Fields are `pub(crate)` so the parallel apply path
/// ([`crate::parallel`]) can renumber provisional offer ids and merge
/// per-transaction change sets without round-tripping through a delta.
#[derive(Debug, Default)]
pub struct DeltaChanges {
    pub(crate) accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    pub(crate) trustlines: BTreeMap<AccountId, BTreeMap<Asset, Option<TrustLineEntry>>>,
    pub(crate) offers: BTreeMap<u64, Option<OfferEntry>>,
    pub(crate) data: BTreeMap<AccountId, BTreeMap<String, Option<DataEntry>>>,
    pub(crate) next_offer_id: u64,
}

/// A copy-on-write overlay over a [`LedgerStore`].
///
/// Reads fall through to the base store; writes land in the overlay.
/// `None` in an overlay slot means "deleted". Dropping the delta discards
/// all changes; [`LedgerDelta::into_changes`] extracts them for commit.
pub struct LedgerDelta<'a> {
    base: &'a dyn LedgerBackend,
    accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    trustlines: BTreeMap<AccountId, BTreeMap<Asset, Option<TrustLineEntry>>>,
    offers: BTreeMap<u64, Option<OfferEntry>>,
    data: BTreeMap<AccountId, BTreeMap<String, Option<DataEntry>>>,
    next_offer_id: u64,
}

impl<'a> LedgerDelta<'a> {
    /// Starts an empty delta over an arbitrary backend with an explicit
    /// offer-id allocator base. The parallel apply path uses this to run
    /// transactions over wave snapshots (and over the accumulated master
    /// state) with per-transaction provisional id ranges.
    pub(crate) fn over(base: &'a dyn LedgerBackend, next_offer_id: u64) -> LedgerDelta<'a> {
        LedgerDelta {
            base,
            accounts: BTreeMap::new(),
            trustlines: BTreeMap::new(),
            offers: BTreeMap::new(),
            data: BTreeMap::new(),
            next_offer_id,
        }
    }
}

impl LedgerDelta<'_> {
    /// Looks up an account through the overlay.
    pub fn account(&self, id: AccountId) -> Option<AccountEntry> {
        match self.accounts.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.account(id),
        }
    }

    /// Writes an account.
    pub fn put_account(&mut self, account: AccountEntry) {
        self.accounts.insert(account.id, Some(account));
    }

    /// Deletes an account.
    pub fn delete_account(&mut self, id: AccountId) {
        self.accounts.insert(id, None);
    }

    /// Looks up a trustline through the overlay.
    pub fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        match self.trustlines.get(&id).and_then(|m| m.get(asset)) {
            Some(slot) => slot.clone(),
            None => self.base.trustline(id, asset),
        }
    }

    /// Writes a trustline.
    pub fn put_trustline(&mut self, tl: TrustLineEntry) {
        self.trustlines
            .entry(tl.account)
            .or_default()
            .insert(tl.asset.clone(), Some(tl));
    }

    /// Deletes a trustline.
    pub fn delete_trustline(&mut self, id: AccountId, asset: &Asset) {
        self.trustlines
            .entry(id)
            .or_default()
            .insert(asset.clone(), None);
    }

    /// Looks up an offer through the overlay.
    pub fn offer(&self, id: u64) -> Option<OfferEntry> {
        match self.offers.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.offer(id),
        }
    }

    /// Writes an offer.
    pub fn put_offer(&mut self, offer: OfferEntry) {
        self.offers.insert(offer.id, Some(offer));
    }

    /// Deletes an offer.
    pub fn delete_offer(&mut self, id: u64) {
        self.offers.insert(id, None);
    }

    /// Allocates a fresh ledger-unique offer id.
    pub fn allocate_offer_id(&mut self) -> u64 {
        let id = self.next_offer_id;
        self.next_offer_id += 1;
        id
    }

    /// Looks up a data entry through the overlay.
    pub fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        match self.data.get(&id).and_then(|m| m.get(name)) {
            Some(slot) => slot.clone(),
            None => self.base.data(id, name),
        }
    }

    /// Writes a data entry.
    pub fn put_data(&mut self, entry: DataEntry) {
        self.data
            .entry(entry.account)
            .or_default()
            .insert(entry.name.clone(), Some(entry));
    }

    /// Deletes a data entry.
    pub fn delete_data(&mut self, id: AccountId, name: &str) {
        self.data
            .entry(id)
            .or_default()
            .insert(name.to_string(), None);
    }

    /// Offers for a pair, merged overlay-over-base, best price first.
    pub fn offers_for_pair(&self, selling: &Asset, buying: &Asset) -> Vec<OfferEntry> {
        self.offers_page(selling, buying, None, usize::MAX)
    }

    /// Up to `limit` offers for a pair strictly after `after` in book
    /// order (best price first, ties by id), merged overlay-over-base.
    ///
    /// This is the matching engine's lazy view of the book: the base side
    /// pages through the backend's index in bounded chunks (so a disk
    /// backend fetches only what the merge consumes), the overlay side is
    /// the handful of offers the current transaction already touched, and
    /// both merge through [`book_key`] so ordering cannot diverge from
    /// the index.
    pub fn offers_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<OfferEntry> {
        const CHUNK: usize = 64;
        let mut base_buf: VecDeque<BookCursor> = VecDeque::new();
        let mut base_cursor = after;
        let mut base_done = false;

        // Overlay offers for this pair past the cursor, in book order.
        let mut overlay: Vec<&OfferEntry> = self
            .offers
            .values()
            .filter_map(Option::as_ref)
            .filter(|o| &o.selling == selling && &o.buying == buying)
            .filter(|o| after.is_none_or(|cursor| book_key(o) > cursor))
            .collect();
        overlay.sort_by_key(|o| book_key(o));
        let mut overlay = overlay.into_iter().peekable();

        let mut out = Vec::new();
        while out.len() < limit {
            // Refill the base buffer, skipping entries shadowed by any
            // overlay slot (updated, deleted, or merely re-written): the
            // overlay owns those ids.
            while base_buf.is_empty() && !base_done {
                let chunk = self.base.book_page(selling, buying, base_cursor, CHUNK);
                if chunk.len() < CHUNK {
                    base_done = true;
                }
                if let Some(&last) = chunk.last() {
                    base_cursor = Some(last);
                }
                base_buf.extend(
                    chunk
                        .into_iter()
                        .filter(|(_, id)| !self.offers.contains_key(id)),
                );
            }
            let base_key = base_buf.front().copied();
            let overlay_key = overlay.peek().map(|o| book_key(o));
            match (base_key, overlay_key) {
                (None, None) => break,
                (Some(_), None) => {
                    let (_, id) = base_buf.pop_front().expect("peeked");
                    out.push(self.base.offer(id).expect("indexed offer exists"));
                }
                (None, Some(_)) => out.push(overlay.next().expect("peeked").clone()),
                (Some(bk), Some(ok)) => {
                    if ok < bk {
                        out.push(overlay.next().expect("peeked").clone());
                    } else {
                        let (_, id) = base_buf.pop_front().expect("peeked");
                        out.push(self.base.offer(id).expect("indexed offer exists"));
                    }
                }
            }
        }
        out
    }

    /// Extracts the accumulated changes for commit.
    pub fn into_changes(self) -> DeltaChanges {
        DeltaChanges {
            accounts: self.accounts,
            trustlines: self.trustlines,
            offers: self.offers,
            data: self.data,
            next_offer_id: self.next_offer_id,
        }
    }

    /// Merges a nested (per-transaction) delta's changes into this one.
    pub fn absorb(&mut self, changes: DeltaChanges) {
        self.accounts.extend(changes.accounts);
        for (id, by_asset) in changes.trustlines {
            self.trustlines.entry(id).or_default().extend(by_asset);
        }
        self.offers.extend(changes.offers);
        for (id, by_name) in changes.data {
            self.data.entry(id).or_default().extend(by_name);
        }
        self.next_offer_id = self.next_offer_id.max(changes.next_offer_id);
    }

    /// Starts a nested scratch delta that snapshots this delta's current
    /// state (used per-operation group inside a transaction).
    pub fn fork(&self) -> LedgerDelta<'_> {
        // A fork layers fresh maps over a frozen clone of our maps by
        // copying them: cheap relative to transaction sizes (a handful of
        // touched entries each).
        LedgerDelta {
            base: self.base,
            accounts: self.accounts.clone(),
            trustlines: self.trustlines.clone(),
            offers: self.offers.clone(),
            data: self.data.clone(),
            next_offer_id: self.next_offer_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Price;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    #[test]
    fn delta_reads_fall_through() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let delta = store.begin();
        assert_eq!(delta.account(acct(1)).unwrap().balance, 100);
        assert!(delta.account(acct(2)).is_none());
    }

    #[test]
    fn delta_writes_do_not_touch_base_until_commit() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut delta = store.begin();
        let mut a = delta.account(acct(1)).unwrap();
        a.balance = 50;
        delta.put_account(a);
        assert_eq!(delta.account(acct(1)).unwrap().balance, 50);
        assert_eq!(store.account(acct(1)).unwrap().balance, 100);
        let changes = delta.into_changes();
        store.commit(changes);
        assert_eq!(store.account(acct(1)).unwrap().balance, 50);
    }

    #[test]
    fn dropping_delta_discards() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        {
            let mut delta = store.begin();
            delta.delete_account(acct(1));
            assert!(delta.account(acct(1)).is_none());
        }
        assert!(store.account(acct(1)).is_some());
    }

    #[test]
    fn delete_shadows_base() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut delta = store.begin();
        delta.delete_account(acct(1));
        let changes = delta.into_changes();
        let feed = store.commit(changes);
        assert!(store.account(acct(1)).is_none());
        assert!(feed
            .iter()
            .any(|(k, v)| matches!(k, LedgerKey::Account(_)) && v.is_none()));
    }

    #[test]
    fn offer_ids_are_unique_across_commit() {
        let mut store = LedgerStore::new();
        let mut delta = store.begin();
        let id1 = delta.allocate_offer_id();
        let id2 = delta.allocate_offer_id();
        assert_ne!(id1, id2);
        let changes = delta.into_changes();
        store.commit(changes);
        let mut delta2 = store.begin();
        let id3 = delta2.allocate_offer_id();
        assert!(id3 > id2);
    }

    #[test]
    fn offers_for_pair_sorted_by_price_then_id() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 2),
            passive: false,
        };
        let mut delta = store.begin();
        delta.put_offer(mk(2, 3));
        delta.put_offer(mk(1, 3));
        delta.put_offer(mk(3, 1));
        let changes = delta.into_changes();
        store.commit(changes);
        let book = store.offers_for_pair(&Asset::Native, &usd);
        assert_eq!(book.iter().map(|o| o.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn book_index_tracks_updates_and_deletes() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 1),
            passive: false,
        };
        let mut d = store.begin();
        d.put_offer(mk(1, 5));
        d.put_offer(mk(2, 2));
        store.commit(d.into_changes());
        assert_eq!(
            store
                .offers_for_pair(&Asset::Native, &usd)
                .iter()
                .map(|o| o.id)
                .collect::<Vec<_>>(),
            vec![2, 1]
        );
        // Reprice offer 1 below offer 2, delete offer 2.
        let mut d = store.begin();
        d.put_offer(mk(1, 1));
        d.delete_offer(2);
        store.commit(d.into_changes());
        let book = store.offers_for_pair(&Asset::Native, &usd);
        assert_eq!(book.iter().map(|o| o.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(book[0].price, Price::new(1, 1));
        // No stale index entries: a fresh delta sees exactly one offer.
        let delta = store.begin();
        assert_eq!(delta.offers_for_pair(&Asset::Native, &usd).len(), 1);
    }

    #[test]
    fn delta_pages_merge_overlay_and_base_in_book_order() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 1),
            passive: false,
        };
        let mut d = store.begin();
        d.put_offer(mk(1, 2));
        d.put_offer(mk(2, 4));
        d.put_offer(mk(3, 6));
        store.commit(d.into_changes());
        let mut delta = store.begin();
        delta.put_offer(mk(4, 3)); // overlay insert between base offers
        delta.put_offer(mk(2, 5)); // overlay reprice of a base offer
        delta.delete_offer(3); // overlay delete of a base offer
        let ids: Vec<u64> = delta
            .offers_for_pair(&Asset::Native, &usd)
            .iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(ids, vec![1, 4, 2]);
        // Paging: first page of 2, then the rest from a cursor.
        let page1 = delta.offers_page(&Asset::Native, &usd, None, 2);
        assert_eq!(page1.iter().map(|o| o.id).collect::<Vec<_>>(), vec![1, 4]);
        let cursor = book_key(page1.last().unwrap());
        let page2 = delta.offers_page(&Asset::Native, &usd, Some(cursor), 2);
        assert_eq!(page2.iter().map(|o| o.id).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn fork_and_absorb() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut outer = store.begin();
        let mut inner = outer.fork();
        let mut a = inner.account(acct(1)).unwrap();
        a.balance = 42;
        inner.put_account(a);
        outer.absorb(inner.into_changes());
        assert_eq!(outer.account(acct(1)).unwrap().balance, 42);
    }

    #[test]
    fn change_feed_reports_all_mutations() {
        let mut store = LedgerStore::new();
        let mut delta = store.begin();
        delta.put_account(AccountEntry::new(acct(1), 7));
        delta.put_data(DataEntry {
            account: acct(1),
            name: "k".into(),
            value: vec![1],
        });
        let feed = store.commit(delta.into_changes());
        assert_eq!(feed.len(), 2);
    }

    #[test]
    fn trustline_and_data_roundtrip_through_delta() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        d.put_trustline(TrustLineEntry {
            account: acct(1),
            asset: usd.clone(),
            balance: 5,
            limit: 100,
            authorized: true,
        });
        d.put_data(DataEntry {
            account: acct(1),
            name: "k1".into(),
            value: vec![9],
        });
        store.commit(d.into_changes());
        assert_eq!(store.trustline(acct(1), &usd).unwrap().balance, 5);
        assert_eq!(store.data(acct(1), "k1").unwrap().value, vec![9]);
        assert_eq!(store.trustlines_of(acct(1)).len(), 1);
        // Delete through a delta; the nested maps must clean up fully.
        let mut d = store.begin();
        d.delete_trustline(acct(1), &usd);
        d.delete_data(acct(1), "k1");
        let feed = store.commit(d.into_changes());
        assert_eq!(feed.len(), 2);
        assert!(store.trustline(acct(1), &usd).is_none());
        assert!(store.data(acct(1), "k1").is_none());
        assert_eq!(store.all_entries().count(), 0);
    }

    #[test]
    fn from_entries_restores_offer_allocator() {
        let usd = Asset::issued(acct(9), "USD");
        let store = LedgerStore::from_entries(vec![
            LedgerEntry::Account(AccountEntry::new(acct(1), 10)),
            LedgerEntry::Offer(OfferEntry {
                id: 41,
                account: acct(1),
                selling: Asset::Native,
                buying: usd.clone(),
                amount: 1,
                price: Price::new(1, 1),
                passive: false,
            }),
        ]);
        let mut d = store.begin();
        assert_eq!(d.allocate_offer_id(), 42);
        assert_eq!(store.offers_for_pair(&Asset::Native, &usd).len(), 1);
    }
}

//! The ledger entry store with copy-on-write deltas.
//!
//! Production `stellar-core` keeps the ledger in a SQL database; this
//! reproduction substitutes in-memory ordered maps behind the same
//! read/modify interface (see `DESIGN.md`). The important structural
//! property is shared: transactions execute against a [`LedgerDelta`]
//! overlay that is either *committed* into the base store or discarded —
//! which is how "transactions are atomic: if any operation fails, none of
//! them execute" (§5.2) is implemented.
//!
//! The store also tracks, per ledger close, which entries changed; that
//! change feed drives the bucket list in `stellar-buckets`.
//!
//! Two hot-path choices matter for close throughput:
//!
//! * **Split keying.** Trustlines and data entries are keyed by nested
//!   maps (`account → asset → entry`), not by `(AccountId, Asset)` tuples,
//!   so point reads never clone an `Asset` or build a scratch `String`
//!   just to form a lookup key.
//! * **Order-book index.** The store maintains a side index
//!   `selling → buying → {(price, offer id)}` kept in lockstep with the
//!   offer map at commit time. `offers_for_pair` walks the index in order
//!   — O(log n + k) for k results — instead of scanning and sorting every
//!   live offer; the matching engine pages through it lazily so a deep
//!   book costs only what it fills.

use crate::amount::Price;
use crate::asset::Asset;
use crate::entry::{
    AccountEntry, AccountId, DataEntry, LedgerEntry, LedgerKey, OfferEntry, TrustLineEntry,
};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Position in a pair's book: `(price, offer id)` — the canonical
/// price-time-priority ordering (numeric price, ties by id).
pub type BookCursor = (Price, u64);

/// The order-book side index: selling asset → buying asset → positions.
type BookIndex = BTreeMap<Asset, BTreeMap<Asset, BTreeSet<BookCursor>>>;

/// The book position of an offer — the one definition of book ordering
/// shared by the base index and every delta merge, so price/time priority
/// cannot drift between the two paths.
pub fn book_key(offer: &OfferEntry) -> BookCursor {
    (offer.price, offer.id)
}

fn index_insert(book: &mut BookIndex, offer: &OfferEntry) {
    book.entry(offer.selling.clone())
        .or_default()
        .entry(offer.buying.clone())
        .or_default()
        .insert(book_key(offer));
}

fn index_remove(book: &mut BookIndex, offer: &OfferEntry) {
    if let Some(buys) = book.get_mut(&offer.selling) {
        if let Some(set) = buys.get_mut(&offer.buying) {
            set.remove(&book_key(offer));
            if set.is_empty() {
                buys.remove(&offer.buying);
            }
        }
        if buys.is_empty() {
            book.remove(&offer.selling);
        }
    }
}

/// The base ledger state: all live entries.
#[derive(Clone, Debug, Default)]
pub struct LedgerStore {
    accounts: BTreeMap<AccountId, AccountEntry>,
    trustlines: BTreeMap<AccountId, BTreeMap<Asset, TrustLineEntry>>,
    offers: BTreeMap<u64, OfferEntry>,
    data: BTreeMap<AccountId, BTreeMap<String, DataEntry>>,
    /// Side index over `offers`, maintained by every offer mutation.
    book: BookIndex,
    /// Next offer id to allocate.
    next_offer_id: u64,
}

impl LedgerStore {
    /// An empty store.
    pub fn new() -> LedgerStore {
        LedgerStore {
            next_offer_id: 1,
            ..LedgerStore::default()
        }
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Number of open offers.
    pub fn offer_count(&self) -> usize {
        self.offers.len()
    }

    /// Looks up an account.
    pub fn account(&self, id: AccountId) -> Option<&AccountEntry> {
        self.accounts.get(&id)
    }

    /// Looks up a trustline (allocation-free).
    pub fn trustline(&self, id: AccountId, asset: &Asset) -> Option<&TrustLineEntry> {
        self.trustlines.get(&id)?.get(asset)
    }

    /// Looks up an offer by id.
    pub fn offer(&self, id: u64) -> Option<&OfferEntry> {
        self.offers.get(&id)
    }

    /// Looks up a data entry (allocation-free).
    pub fn data(&self, id: AccountId, name: &str) -> Option<&DataEntry> {
        self.data.get(&id)?.get(name)
    }

    /// Every live offer, in id order (naive-scan reference for tests).
    pub fn offers(&self) -> impl Iterator<Item = &OfferEntry> {
        self.offers.values()
    }

    /// All offers selling `selling` for `buying`, best (lowest) price
    /// first, ties by offer id (time priority). Served from the book
    /// index: O(log n + k), already in order.
    pub fn offers_for_pair(&self, selling: &Asset, buying: &Asset) -> Vec<OfferEntry> {
        let Some(set) = self.book.get(selling).and_then(|m| m.get(buying)) else {
            return Vec::new();
        };
        set.iter()
            .map(|&(_, id)| self.offers[&id].clone())
            .collect()
    }

    /// Directly inserts an account (genesis / test setup).
    pub fn put_account(&mut self, account: AccountEntry) {
        self.accounts.insert(account.id, account);
    }

    /// Directly inserts a trustline (genesis / test setup).
    pub fn put_trustline(&mut self, tl: TrustLineEntry) {
        self.trustlines
            .entry(tl.account)
            .or_default()
            .insert(tl.asset.clone(), tl);
    }

    /// Iterates over every live entry (snapshot hashing, bucket seeding).
    pub fn all_entries(&self) -> impl Iterator<Item = LedgerEntry> + '_ {
        let accounts = self.accounts.values().cloned().map(LedgerEntry::Account);
        let tls = self
            .trustlines
            .values()
            .flat_map(BTreeMap::values)
            .cloned()
            .map(LedgerEntry::TrustLine);
        let offers = self.offers.values().cloned().map(LedgerEntry::Offer);
        let data = self
            .data
            .values()
            .flat_map(BTreeMap::values)
            .cloned()
            .map(LedgerEntry::Data);
        accounts.chain(tls).chain(offers).chain(data)
    }

    /// Rebuilds a store from a flat entry dump (bucket-list catch-up).
    pub fn from_entries(entries: impl IntoIterator<Item = LedgerEntry>) -> LedgerStore {
        let mut store = LedgerStore::new();
        for e in entries {
            match e {
                LedgerEntry::Account(a) => {
                    store.accounts.insert(a.id, a);
                }
                LedgerEntry::TrustLine(t) => {
                    store.put_trustline(t);
                }
                LedgerEntry::Offer(o) => {
                    store.next_offer_id = store.next_offer_id.max(o.id + 1);
                    index_insert(&mut store.book, &o);
                    store.offers.insert(o.id, o);
                }
                LedgerEntry::Data(d) => {
                    store
                        .data
                        .entry(d.account)
                        .or_default()
                        .insert(d.name.clone(), d);
                }
            }
        }
        store
    }

    /// Starts a delta (scratch overlay) over this store.
    pub fn begin(&self) -> LedgerDelta<'_> {
        LedgerDelta {
            base: self,
            accounts: BTreeMap::new(),
            trustlines: BTreeMap::new(),
            offers: BTreeMap::new(),
            data: BTreeMap::new(),
            next_offer_id: self.next_offer_id,
        }
    }

    /// Applies a committed delta's changes, returning the change feed for
    /// the bucket list: `(key, Some(entry))` for creates/updates,
    /// `(key, None)` for deletions.
    pub fn commit(&mut self, changes: DeltaChanges) -> Vec<(LedgerKey, Option<LedgerEntry>)> {
        let mut feed = Vec::new();
        for (id, slot) in changes.accounts {
            let key = LedgerKey::Account(id);
            match slot {
                Some(a) => {
                    feed.push((key, Some(LedgerEntry::Account(a.clone()))));
                    self.accounts.insert(id, a);
                }
                None => {
                    feed.push((key, None));
                    self.accounts.remove(&id);
                }
            }
        }
        for (id, by_asset) in changes.trustlines {
            for (asset, slot) in by_asset {
                let key = LedgerKey::TrustLine(id, asset.clone());
                match slot {
                    Some(t) => {
                        feed.push((key, Some(LedgerEntry::TrustLine(t.clone()))));
                        self.trustlines.entry(id).or_default().insert(asset, t);
                    }
                    None => {
                        feed.push((key, None));
                        if let Some(m) = self.trustlines.get_mut(&id) {
                            m.remove(&asset);
                            if m.is_empty() {
                                self.trustlines.remove(&id);
                            }
                        }
                    }
                }
            }
        }
        for (id, slot) in changes.offers {
            let key = LedgerKey::Offer(id);
            match slot {
                Some(o) => {
                    feed.push((key, Some(LedgerEntry::Offer(o.clone()))));
                    index_insert(&mut self.book, &o);
                    if let Some(prev) = self.offers.insert(id, o) {
                        // An update may have moved the offer's book
                        // position; drop the stale one. Position must be
                        // compared with `Ord` (the set's notion of
                        // equality): prices are unreduced fractions, so
                        // 2/4 and 1/2 are Ord-equal but field-different,
                        // and removing the "old" key would strip the
                        // entry the no-op insert just kept.
                        let cur = &self.offers[&id];
                        if book_key(&prev).cmp(&book_key(cur)) != std::cmp::Ordering::Equal
                            || prev.selling != cur.selling
                            || prev.buying != cur.buying
                        {
                            index_remove(&mut self.book, &prev);
                        }
                    }
                }
                None => {
                    feed.push((key, None));
                    if let Some(prev) = self.offers.remove(&id) {
                        index_remove(&mut self.book, &prev);
                    }
                }
            }
        }
        for (id, by_name) in changes.data {
            for (name, slot) in by_name {
                let key = LedgerKey::Data(id, name.clone());
                match slot {
                    Some(d) => {
                        feed.push((key, Some(LedgerEntry::Data(d.clone()))));
                        self.data.entry(id).or_default().insert(name, d);
                    }
                    None => {
                        feed.push((key, None));
                        if let Some(m) = self.data.get_mut(&id) {
                            m.remove(&name);
                            if m.is_empty() {
                                self.data.remove(&id);
                            }
                        }
                    }
                }
            }
        }
        self.next_offer_id = changes.next_offer_id;
        feed
    }
}

/// The owned changes extracted from a delta at commit time.
#[derive(Debug)]
pub struct DeltaChanges {
    accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    trustlines: BTreeMap<AccountId, BTreeMap<Asset, Option<TrustLineEntry>>>,
    offers: BTreeMap<u64, Option<OfferEntry>>,
    data: BTreeMap<AccountId, BTreeMap<String, Option<DataEntry>>>,
    next_offer_id: u64,
}

/// A copy-on-write overlay over a [`LedgerStore`].
///
/// Reads fall through to the base store; writes land in the overlay.
/// `None` in an overlay slot means "deleted". Dropping the delta discards
/// all changes; [`LedgerDelta::into_changes`] extracts them for commit.
pub struct LedgerDelta<'a> {
    base: &'a LedgerStore,
    accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    trustlines: BTreeMap<AccountId, BTreeMap<Asset, Option<TrustLineEntry>>>,
    offers: BTreeMap<u64, Option<OfferEntry>>,
    data: BTreeMap<AccountId, BTreeMap<String, Option<DataEntry>>>,
    next_offer_id: u64,
}

impl LedgerDelta<'_> {
    /// Looks up an account through the overlay.
    pub fn account(&self, id: AccountId) -> Option<AccountEntry> {
        match self.accounts.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.accounts.get(&id).cloned(),
        }
    }

    /// Writes an account.
    pub fn put_account(&mut self, account: AccountEntry) {
        self.accounts.insert(account.id, Some(account));
    }

    /// Deletes an account.
    pub fn delete_account(&mut self, id: AccountId) {
        self.accounts.insert(id, None);
    }

    /// Looks up a trustline through the overlay (allocation-free).
    pub fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        match self.trustlines.get(&id).and_then(|m| m.get(asset)) {
            Some(slot) => slot.clone(),
            None => self.base.trustline(id, asset).cloned(),
        }
    }

    /// Writes a trustline.
    pub fn put_trustline(&mut self, tl: TrustLineEntry) {
        self.trustlines
            .entry(tl.account)
            .or_default()
            .insert(tl.asset.clone(), Some(tl));
    }

    /// Deletes a trustline.
    pub fn delete_trustline(&mut self, id: AccountId, asset: &Asset) {
        self.trustlines
            .entry(id)
            .or_default()
            .insert(asset.clone(), None);
    }

    /// Looks up an offer through the overlay.
    pub fn offer(&self, id: u64) -> Option<OfferEntry> {
        match self.offers.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.offers.get(&id).cloned(),
        }
    }

    /// Writes an offer.
    pub fn put_offer(&mut self, offer: OfferEntry) {
        self.offers.insert(offer.id, Some(offer));
    }

    /// Deletes an offer.
    pub fn delete_offer(&mut self, id: u64) {
        self.offers.insert(id, None);
    }

    /// Allocates a fresh ledger-unique offer id.
    pub fn allocate_offer_id(&mut self) -> u64 {
        let id = self.next_offer_id;
        self.next_offer_id += 1;
        id
    }

    /// Looks up a data entry through the overlay (allocation-free).
    pub fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        match self.data.get(&id).and_then(|m| m.get(name)) {
            Some(slot) => slot.clone(),
            None => self.base.data(id, name).cloned(),
        }
    }

    /// Writes a data entry.
    pub fn put_data(&mut self, entry: DataEntry) {
        self.data
            .entry(entry.account)
            .or_default()
            .insert(entry.name.clone(), Some(entry));
    }

    /// Deletes a data entry.
    pub fn delete_data(&mut self, id: AccountId, name: &str) {
        self.data
            .entry(id)
            .or_default()
            .insert(name.to_string(), None);
    }

    /// Offers for a pair, merged overlay-over-base, best price first.
    pub fn offers_for_pair(&self, selling: &Asset, buying: &Asset) -> Vec<OfferEntry> {
        self.offers_page(selling, buying, None, usize::MAX)
    }

    /// Up to `limit` offers for a pair strictly after `after` in book
    /// order (best price first, ties by id), merged overlay-over-base.
    ///
    /// This is the matching engine's lazy view of the book: the base side
    /// streams from the store's index, the overlay side is the handful of
    /// offers the current transaction already touched, and both merge
    /// through [`book_key`] so ordering cannot diverge from the index.
    pub fn offers_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<OfferEntry> {
        let lower = match after {
            Some(cursor) => Bound::Excluded(cursor),
            None => Bound::Unbounded,
        };
        let mut base = self
            .base
            .book
            .get(selling)
            .and_then(|m| m.get(buying))
            .into_iter()
            .flat_map(|set| set.range((lower, Bound::Unbounded)))
            .peekable();

        // Overlay offers for this pair past the cursor, in book order.
        let mut overlay: Vec<&OfferEntry> = self
            .offers
            .values()
            .filter_map(Option::as_ref)
            .filter(|o| &o.selling == selling && &o.buying == buying)
            .filter(|o| after.is_none_or(|cursor| book_key(o) > cursor))
            .collect();
        overlay.sort_by_key(|o| book_key(o));
        let mut overlay = overlay.into_iter().peekable();

        let mut out = Vec::new();
        while out.len() < limit {
            // Skip base entries shadowed by any overlay slot (updated,
            // deleted, or merely re-written): the overlay owns those ids.
            while let Some(&&(_, id)) = base.peek() {
                if self.offers.contains_key(&id) {
                    base.next();
                } else {
                    break;
                }
            }
            let base_key = base.peek().map(|&&k| k);
            let overlay_key = overlay.peek().map(|o| book_key(o));
            match (base_key, overlay_key) {
                (None, None) => break,
                (Some(_), None) => {
                    let &(_, id) = base.next().expect("peeked");
                    out.push(self.base.offers[&id].clone());
                }
                (None, Some(_)) => out.push(overlay.next().expect("peeked").clone()),
                (Some(bk), Some(ok)) => {
                    if ok < bk {
                        out.push(overlay.next().expect("peeked").clone());
                    } else {
                        let &(_, id) = base.next().expect("peeked");
                        out.push(self.base.offers[&id].clone());
                    }
                }
            }
        }
        out
    }

    /// Extracts the accumulated changes for commit.
    pub fn into_changes(self) -> DeltaChanges {
        DeltaChanges {
            accounts: self.accounts,
            trustlines: self.trustlines,
            offers: self.offers,
            data: self.data,
            next_offer_id: self.next_offer_id,
        }
    }

    /// Merges a nested (per-transaction) delta's changes into this one.
    pub fn absorb(&mut self, changes: DeltaChanges) {
        self.accounts.extend(changes.accounts);
        for (id, by_asset) in changes.trustlines {
            self.trustlines.entry(id).or_default().extend(by_asset);
        }
        self.offers.extend(changes.offers);
        for (id, by_name) in changes.data {
            self.data.entry(id).or_default().extend(by_name);
        }
        self.next_offer_id = self.next_offer_id.max(changes.next_offer_id);
    }

    /// Starts a nested scratch delta that snapshots this delta's current
    /// state (used per-operation group inside a transaction).
    pub fn fork(&self) -> LedgerDelta<'_> {
        // A fork layers fresh maps over a frozen clone of our maps by
        // copying them: cheap relative to transaction sizes (a handful of
        // touched entries each).
        LedgerDelta {
            base: self.base,
            accounts: self.accounts.clone(),
            trustlines: self.trustlines.clone(),
            offers: self.offers.clone(),
            data: self.data.clone(),
            next_offer_id: self.next_offer_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Price;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    #[test]
    fn delta_reads_fall_through() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let delta = store.begin();
        assert_eq!(delta.account(acct(1)).unwrap().balance, 100);
        assert!(delta.account(acct(2)).is_none());
    }

    #[test]
    fn delta_writes_do_not_touch_base_until_commit() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut delta = store.begin();
        let mut a = delta.account(acct(1)).unwrap();
        a.balance = 50;
        delta.put_account(a);
        assert_eq!(delta.account(acct(1)).unwrap().balance, 50);
        assert_eq!(store.account(acct(1)).unwrap().balance, 100);
        let changes = delta.into_changes();
        store.commit(changes);
        assert_eq!(store.account(acct(1)).unwrap().balance, 50);
    }

    #[test]
    fn dropping_delta_discards() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        {
            let mut delta = store.begin();
            delta.delete_account(acct(1));
            assert!(delta.account(acct(1)).is_none());
        }
        assert!(store.account(acct(1)).is_some());
    }

    #[test]
    fn delete_shadows_base() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut delta = store.begin();
        delta.delete_account(acct(1));
        let changes = delta.into_changes();
        let feed = store.commit(changes);
        assert!(store.account(acct(1)).is_none());
        assert!(feed
            .iter()
            .any(|(k, v)| matches!(k, LedgerKey::Account(_)) && v.is_none()));
    }

    #[test]
    fn offer_ids_are_unique_across_commit() {
        let mut store = LedgerStore::new();
        let mut delta = store.begin();
        let id1 = delta.allocate_offer_id();
        let id2 = delta.allocate_offer_id();
        assert_ne!(id1, id2);
        let changes = delta.into_changes();
        store.commit(changes);
        let mut delta2 = store.begin();
        let id3 = delta2.allocate_offer_id();
        assert!(id3 > id2);
    }

    #[test]
    fn offers_for_pair_sorted_by_price_then_id() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 2),
            passive: false,
        };
        let mut delta = store.begin();
        delta.put_offer(mk(2, 3));
        delta.put_offer(mk(1, 3));
        delta.put_offer(mk(3, 1));
        let changes = delta.into_changes();
        store.commit(changes);
        let book = store.offers_for_pair(&Asset::Native, &usd);
        assert_eq!(book.iter().map(|o| o.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn book_index_tracks_updates_and_deletes() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 1),
            passive: false,
        };
        let mut d = store.begin();
        d.put_offer(mk(1, 5));
        d.put_offer(mk(2, 2));
        store.commit(d.into_changes());
        assert_eq!(
            store
                .offers_for_pair(&Asset::Native, &usd)
                .iter()
                .map(|o| o.id)
                .collect::<Vec<_>>(),
            vec![2, 1]
        );
        // Reprice offer 1 below offer 2, delete offer 2.
        let mut d = store.begin();
        d.put_offer(mk(1, 1));
        d.delete_offer(2);
        store.commit(d.into_changes());
        let book = store.offers_for_pair(&Asset::Native, &usd);
        assert_eq!(book.iter().map(|o| o.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(book[0].price, Price::new(1, 1));
        // No stale index entries: a fresh delta sees exactly one offer.
        let delta = store.begin();
        assert_eq!(delta.offers_for_pair(&Asset::Native, &usd).len(), 1);
    }

    #[test]
    fn delta_pages_merge_overlay_and_base_in_book_order() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 1),
            passive: false,
        };
        let mut d = store.begin();
        d.put_offer(mk(1, 2));
        d.put_offer(mk(2, 4));
        d.put_offer(mk(3, 6));
        store.commit(d.into_changes());
        let mut delta = store.begin();
        delta.put_offer(mk(4, 3)); // overlay insert between base offers
        delta.put_offer(mk(2, 5)); // overlay reprice of a base offer
        delta.delete_offer(3); // overlay delete of a base offer
        let ids: Vec<u64> = delta
            .offers_for_pair(&Asset::Native, &usd)
            .iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(ids, vec![1, 4, 2]);
        // Paging: first page of 2, then the rest from a cursor.
        let page1 = delta.offers_page(&Asset::Native, &usd, None, 2);
        assert_eq!(page1.iter().map(|o| o.id).collect::<Vec<_>>(), vec![1, 4]);
        let cursor = book_key(page1.last().unwrap());
        let page2 = delta.offers_page(&Asset::Native, &usd, Some(cursor), 2);
        assert_eq!(page2.iter().map(|o| o.id).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn fork_and_absorb() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut outer = store.begin();
        let mut inner = outer.fork();
        let mut a = inner.account(acct(1)).unwrap();
        a.balance = 42;
        inner.put_account(a);
        outer.absorb(inner.into_changes());
        assert_eq!(outer.account(acct(1)).unwrap().balance, 42);
    }

    #[test]
    fn change_feed_reports_all_mutations() {
        let mut store = LedgerStore::new();
        let mut delta = store.begin();
        delta.put_account(AccountEntry::new(acct(1), 7));
        delta.put_data(DataEntry {
            account: acct(1),
            name: "k".into(),
            value: vec![1],
        });
        let feed = store.commit(delta.into_changes());
        assert_eq!(feed.len(), 2);
    }

    #[test]
    fn trustline_and_data_roundtrip_through_delta() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        d.put_trustline(TrustLineEntry {
            account: acct(1),
            asset: usd.clone(),
            balance: 5,
            limit: 100,
            authorized: true,
        });
        d.put_data(DataEntry {
            account: acct(1),
            name: "k1".into(),
            value: vec![9],
        });
        store.commit(d.into_changes());
        assert_eq!(store.trustline(acct(1), &usd).unwrap().balance, 5);
        assert_eq!(store.data(acct(1), "k1").unwrap().value, vec![9]);
        // Delete through a delta; the nested maps must clean up fully.
        let mut d = store.begin();
        d.delete_trustline(acct(1), &usd);
        d.delete_data(acct(1), "k1");
        let feed = store.commit(d.into_changes());
        assert_eq!(feed.len(), 2);
        assert!(store.trustline(acct(1), &usd).is_none());
        assert!(store.data(acct(1), "k1").is_none());
        assert_eq!(store.all_entries().count(), 0);
    }
}

//! The ledger entry store with copy-on-write deltas.
//!
//! Production `stellar-core` keeps the ledger in a SQL database; this
//! reproduction substitutes in-memory ordered maps behind the same
//! read/modify interface (see `DESIGN.md`). The important structural
//! property is shared: transactions execute against a [`LedgerDelta`]
//! overlay that is either *committed* into the base store or discarded —
//! which is how "transactions are atomic: if any operation fails, none of
//! them execute" (§5.2) is implemented.
//!
//! The store also tracks, per ledger close, which entries changed; that
//! change feed drives the bucket list in `stellar-buckets`.

use crate::asset::Asset;
use crate::entry::{
    AccountEntry, AccountId, DataEntry, LedgerEntry, LedgerKey, OfferEntry, TrustLineEntry,
};
use std::collections::BTreeMap;

/// The base ledger state: all live entries.
#[derive(Clone, Debug, Default)]
pub struct LedgerStore {
    accounts: BTreeMap<AccountId, AccountEntry>,
    trustlines: BTreeMap<(AccountId, Asset), TrustLineEntry>,
    offers: BTreeMap<u64, OfferEntry>,
    data: BTreeMap<(AccountId, String), DataEntry>,
    /// Next offer id to allocate.
    next_offer_id: u64,
}

impl LedgerStore {
    /// An empty store.
    pub fn new() -> LedgerStore {
        LedgerStore {
            next_offer_id: 1,
            ..LedgerStore::default()
        }
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Number of open offers.
    pub fn offer_count(&self) -> usize {
        self.offers.len()
    }

    /// Looks up an account.
    pub fn account(&self, id: AccountId) -> Option<&AccountEntry> {
        self.accounts.get(&id)
    }

    /// Looks up a trustline.
    pub fn trustline(&self, id: AccountId, asset: &Asset) -> Option<&TrustLineEntry> {
        self.trustlines.get(&(id, asset.clone()))
    }

    /// Looks up an offer by id.
    pub fn offer(&self, id: u64) -> Option<&OfferEntry> {
        self.offers.get(&id)
    }

    /// Looks up a data entry.
    pub fn data(&self, id: AccountId, name: &str) -> Option<&DataEntry> {
        self.data.get(&(id, name.to_string()))
    }

    /// All offers selling `selling` for `buying`, best (lowest) price
    /// first, ties by offer id (time priority).
    pub fn offers_for_pair(&self, selling: &Asset, buying: &Asset) -> Vec<OfferEntry> {
        let mut out: Vec<OfferEntry> = self
            .offers
            .values()
            .filter(|o| &o.selling == selling && &o.buying == buying)
            .cloned()
            .collect();
        out.sort_by(|a, b| a.price.cmp(&b.price).then(a.id.cmp(&b.id)));
        out
    }

    /// Directly inserts an account (genesis / test setup).
    pub fn put_account(&mut self, account: AccountEntry) {
        self.accounts.insert(account.id, account);
    }

    /// Directly inserts a trustline (genesis / test setup).
    pub fn put_trustline(&mut self, tl: TrustLineEntry) {
        self.trustlines.insert((tl.account, tl.asset.clone()), tl);
    }

    /// Iterates over every live entry (snapshot hashing, bucket seeding).
    pub fn all_entries(&self) -> impl Iterator<Item = LedgerEntry> + '_ {
        let accounts = self.accounts.values().cloned().map(LedgerEntry::Account);
        let tls = self
            .trustlines
            .values()
            .cloned()
            .map(LedgerEntry::TrustLine);
        let offers = self.offers.values().cloned().map(LedgerEntry::Offer);
        let data = self.data.values().cloned().map(LedgerEntry::Data);
        accounts.chain(tls).chain(offers).chain(data)
    }

    /// Rebuilds a store from a flat entry dump (bucket-list catch-up).
    pub fn from_entries(entries: impl IntoIterator<Item = LedgerEntry>) -> LedgerStore {
        let mut store = LedgerStore::new();
        for e in entries {
            match e {
                LedgerEntry::Account(a) => {
                    store.accounts.insert(a.id, a);
                }
                LedgerEntry::TrustLine(t) => {
                    store.trustlines.insert((t.account, t.asset.clone()), t);
                }
                LedgerEntry::Offer(o) => {
                    store.next_offer_id = store.next_offer_id.max(o.id + 1);
                    store.offers.insert(o.id, o);
                }
                LedgerEntry::Data(d) => {
                    store.data.insert((d.account, d.name.clone()), d);
                }
            }
        }
        store
    }

    /// Starts a delta (scratch overlay) over this store.
    pub fn begin(&self) -> LedgerDelta<'_> {
        LedgerDelta {
            base: self,
            accounts: BTreeMap::new(),
            trustlines: BTreeMap::new(),
            offers: BTreeMap::new(),
            data: BTreeMap::new(),
            next_offer_id: self.next_offer_id,
        }
    }

    /// Applies a committed delta's changes, returning the change feed for
    /// the bucket list: `(key, Some(entry))` for creates/updates,
    /// `(key, None)` for deletions.
    pub fn commit(&mut self, changes: DeltaChanges) -> Vec<(LedgerKey, Option<LedgerEntry>)> {
        let mut feed = Vec::new();
        for (id, slot) in changes.accounts {
            let key = LedgerKey::Account(id);
            match slot {
                Some(a) => {
                    feed.push((key, Some(LedgerEntry::Account(a.clone()))));
                    self.accounts.insert(id, a);
                }
                None => {
                    feed.push((key, None));
                    self.accounts.remove(&id);
                }
            }
        }
        for ((id, asset), slot) in changes.trustlines {
            let key = LedgerKey::TrustLine(id, asset.clone());
            match slot {
                Some(t) => {
                    feed.push((key, Some(LedgerEntry::TrustLine(t.clone()))));
                    self.trustlines.insert((id, asset), t);
                }
                None => {
                    feed.push((key, None));
                    self.trustlines.remove(&(id, asset));
                }
            }
        }
        for (id, slot) in changes.offers {
            let key = LedgerKey::Offer(id);
            match slot {
                Some(o) => {
                    feed.push((key, Some(LedgerEntry::Offer(o.clone()))));
                    self.offers.insert(id, o);
                }
                None => {
                    feed.push((key, None));
                    self.offers.remove(&id);
                }
            }
        }
        for ((id, name), slot) in changes.data {
            let key = LedgerKey::Data(id, name.clone());
            match slot {
                Some(d) => {
                    feed.push((key, Some(LedgerEntry::Data(d.clone()))));
                    self.data.insert((id, name), d);
                }
                None => {
                    feed.push((key, None));
                    self.data.remove(&(id, name));
                }
            }
        }
        self.next_offer_id = changes.next_offer_id;
        feed
    }
}

/// The owned changes extracted from a delta at commit time.
#[derive(Debug)]
pub struct DeltaChanges {
    accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    trustlines: BTreeMap<(AccountId, Asset), Option<TrustLineEntry>>,
    offers: BTreeMap<u64, Option<OfferEntry>>,
    data: BTreeMap<(AccountId, String), Option<DataEntry>>,
    next_offer_id: u64,
}

/// A copy-on-write overlay over a [`LedgerStore`].
///
/// Reads fall through to the base store; writes land in the overlay.
/// `None` in an overlay slot means "deleted". Dropping the delta discards
/// all changes; [`LedgerDelta::into_changes`] extracts them for commit.
pub struct LedgerDelta<'a> {
    base: &'a LedgerStore,
    accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    trustlines: BTreeMap<(AccountId, Asset), Option<TrustLineEntry>>,
    offers: BTreeMap<u64, Option<OfferEntry>>,
    data: BTreeMap<(AccountId, String), Option<DataEntry>>,
    next_offer_id: u64,
}

impl LedgerDelta<'_> {
    /// Looks up an account through the overlay.
    pub fn account(&self, id: AccountId) -> Option<AccountEntry> {
        match self.accounts.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.accounts.get(&id).cloned(),
        }
    }

    /// Writes an account.
    pub fn put_account(&mut self, account: AccountEntry) {
        self.accounts.insert(account.id, Some(account));
    }

    /// Deletes an account.
    pub fn delete_account(&mut self, id: AccountId) {
        self.accounts.insert(id, None);
    }

    /// Looks up a trustline through the overlay.
    pub fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        match self.trustlines.get(&(id, asset.clone())) {
            Some(slot) => slot.clone(),
            None => self.base.trustlines.get(&(id, asset.clone())).cloned(),
        }
    }

    /// Writes a trustline.
    pub fn put_trustline(&mut self, tl: TrustLineEntry) {
        self.trustlines
            .insert((tl.account, tl.asset.clone()), Some(tl));
    }

    /// Deletes a trustline.
    pub fn delete_trustline(&mut self, id: AccountId, asset: &Asset) {
        self.trustlines.insert((id, asset.clone()), None);
    }

    /// Looks up an offer through the overlay.
    pub fn offer(&self, id: u64) -> Option<OfferEntry> {
        match self.offers.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.offers.get(&id).cloned(),
        }
    }

    /// Writes an offer.
    pub fn put_offer(&mut self, offer: OfferEntry) {
        self.offers.insert(offer.id, Some(offer));
    }

    /// Deletes an offer.
    pub fn delete_offer(&mut self, id: u64) {
        self.offers.insert(id, None);
    }

    /// Allocates a fresh ledger-unique offer id.
    pub fn allocate_offer_id(&mut self) -> u64 {
        let id = self.next_offer_id;
        self.next_offer_id += 1;
        id
    }

    /// Looks up a data entry through the overlay.
    pub fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        match self.data.get(&(id, name.to_string())) {
            Some(slot) => slot.clone(),
            None => self.base.data.get(&(id, name.to_string())).cloned(),
        }
    }

    /// Writes a data entry.
    pub fn put_data(&mut self, entry: DataEntry) {
        self.data
            .insert((entry.account, entry.name.clone()), Some(entry));
    }

    /// Deletes a data entry.
    pub fn delete_data(&mut self, id: AccountId, name: &str) {
        self.data.insert((id, name.to_string()), None);
    }

    /// Offers for a pair, merged overlay-over-base, best price first.
    pub fn offers_for_pair(&self, selling: &Asset, buying: &Asset) -> Vec<OfferEntry> {
        let mut merged: BTreeMap<u64, OfferEntry> = self
            .base
            .offers
            .values()
            .filter(|o| &o.selling == selling && &o.buying == buying)
            .map(|o| (o.id, o.clone()))
            .collect();
        for (id, slot) in &self.offers {
            match slot {
                Some(o) if &o.selling == selling && &o.buying == buying => {
                    merged.insert(*id, o.clone());
                }
                _ => {
                    merged.remove(id);
                }
            }
        }
        let mut out: Vec<OfferEntry> = merged.into_values().collect();
        out.sort_by(|a, b| a.price.cmp(&b.price).then(a.id.cmp(&b.id)));
        out
    }

    /// Extracts the accumulated changes for commit.
    pub fn into_changes(self) -> DeltaChanges {
        DeltaChanges {
            accounts: self.accounts,
            trustlines: self.trustlines,
            offers: self.offers,
            data: self.data,
            next_offer_id: self.next_offer_id,
        }
    }

    /// Merges a nested (per-transaction) delta's changes into this one.
    pub fn absorb(&mut self, changes: DeltaChanges) {
        self.accounts.extend(changes.accounts);
        self.trustlines.extend(changes.trustlines);
        self.offers.extend(changes.offers);
        self.data.extend(changes.data);
        self.next_offer_id = self.next_offer_id.max(changes.next_offer_id);
    }

    /// Starts a nested scratch delta that snapshots this delta's current
    /// state (used per-operation group inside a transaction).
    pub fn fork(&self) -> LedgerDelta<'_> {
        // A fork layers fresh maps over a frozen clone of our maps by
        // copying them: cheap relative to transaction sizes (a handful of
        // touched entries each).
        LedgerDelta {
            base: self.base,
            accounts: self.accounts.clone(),
            trustlines: self.trustlines.clone(),
            offers: self.offers.clone(),
            data: self.data.clone(),
            next_offer_id: self.next_offer_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Price;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    #[test]
    fn delta_reads_fall_through() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let delta = store.begin();
        assert_eq!(delta.account(acct(1)).unwrap().balance, 100);
        assert!(delta.account(acct(2)).is_none());
    }

    #[test]
    fn delta_writes_do_not_touch_base_until_commit() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut delta = store.begin();
        let mut a = delta.account(acct(1)).unwrap();
        a.balance = 50;
        delta.put_account(a);
        assert_eq!(delta.account(acct(1)).unwrap().balance, 50);
        assert_eq!(store.account(acct(1)).unwrap().balance, 100);
        let changes = delta.into_changes();
        store.commit(changes);
        assert_eq!(store.account(acct(1)).unwrap().balance, 50);
    }

    #[test]
    fn dropping_delta_discards() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        {
            let mut delta = store.begin();
            delta.delete_account(acct(1));
            assert!(delta.account(acct(1)).is_none());
        }
        assert!(store.account(acct(1)).is_some());
    }

    #[test]
    fn delete_shadows_base() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut delta = store.begin();
        delta.delete_account(acct(1));
        let changes = delta.into_changes();
        let feed = store.commit(changes);
        assert!(store.account(acct(1)).is_none());
        assert!(feed
            .iter()
            .any(|(k, v)| matches!(k, LedgerKey::Account(_)) && v.is_none()));
    }

    #[test]
    fn offer_ids_are_unique_across_commit() {
        let mut store = LedgerStore::new();
        let mut delta = store.begin();
        let id1 = delta.allocate_offer_id();
        let id2 = delta.allocate_offer_id();
        assert_ne!(id1, id2);
        let changes = delta.into_changes();
        store.commit(changes);
        let mut delta2 = store.begin();
        let id3 = delta2.allocate_offer_id();
        assert!(id3 > id2);
    }

    #[test]
    fn offers_for_pair_sorted_by_price_then_id() {
        let mut store = LedgerStore::new();
        let usd = Asset::issued(acct(9), "USD");
        let mk = |id: u64, n: u32| OfferEntry {
            id,
            account: acct(1),
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 10,
            price: Price::new(n, 2),
            passive: false,
        };
        let mut delta = store.begin();
        delta.put_offer(mk(2, 3));
        delta.put_offer(mk(1, 3));
        delta.put_offer(mk(3, 1));
        let changes = delta.into_changes();
        store.commit(changes);
        let book = store.offers_for_pair(&Asset::Native, &usd);
        assert_eq!(book.iter().map(|o| o.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn fork_and_absorb() {
        let mut store = LedgerStore::new();
        store.put_account(AccountEntry::new(acct(1), 100));
        let mut outer = store.begin();
        let mut inner = outer.fork();
        let mut a = inner.account(acct(1)).unwrap();
        a.balance = 42;
        inner.put_account(a);
        outer.absorb(inner.into_changes());
        assert_eq!(outer.account(acct(1)).unwrap().balance, 42);
    }

    #[test]
    fn change_feed_reports_all_mutations() {
        let mut store = LedgerStore::new();
        let mut delta = store.begin();
        delta.put_account(AccountEntry::new(acct(1), 7));
        delta.put_data(DataEntry {
            account: acct(1),
            name: "k".into(),
            value: vec![1],
        });
        let feed = store.commit(delta.into_changes());
        assert_eq!(feed.len(), 2);
    }
}

//! Pluggable ledger storage backends.
//!
//! The ledger store ([`crate::store::LedgerStore`]) is a thin facade over a
//! [`LedgerBackend`]: the four entry maps plus the order-book side index,
//! behind get/put/delete/iterate. Two implementations exist:
//!
//! * [`MemBackend`] (here) — the original in-RAM `BTreeMap`s. Fast,
//!   unbounded memory.
//! * `DiskBackend` (`crates/store`) — a log-structured store over the
//!   simulated disk in `crates/persist`, with a bounded write-back cache.
//!
//! The trait deliberately returns *owned* entries: a disk backend cannot
//! hand out references into its cache without freezing it, and the apply
//! path already copies entries into the bucket list anyway. Reads take
//! `&self`; backends with interior caches use interior mutability.
//!
//! The order-book index (`selling → buying → {(price, id)}`) is shared
//! infrastructure: both backends keep it in RAM (it is small — one cursor
//! per open offer) and maintain it through [`book_apply`], so price/time
//! priority cannot drift between backends.

use crate::amount::Price;
use crate::asset::Asset;
use crate::entry::{
    AccountEntry, AccountId, DataEntry, LedgerEntry, LedgerKey, OfferEntry, TrustLineEntry,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use std::rc::Rc;
use stellar_persist::DurableStore;

/// Position in a pair's book: `(price, offer id)` — the canonical
/// price-time-priority ordering (numeric price, ties by id).
pub type BookCursor = (Price, u64);

/// The order-book side index: selling asset → buying asset → positions.
pub type BookIndex = BTreeMap<Asset, BTreeMap<Asset, BTreeSet<BookCursor>>>;

/// The book position of an offer — the one definition of book ordering
/// shared by the base index and every delta merge, so price/time priority
/// cannot drift between the two paths.
pub fn book_key(offer: &OfferEntry) -> BookCursor {
    (offer.price, offer.id)
}

fn index_insert(book: &mut BookIndex, offer: &OfferEntry) {
    book.entry(offer.selling.clone())
        .or_default()
        .entry(offer.buying.clone())
        .or_default()
        .insert(book_key(offer));
}

fn index_remove(book: &mut BookIndex, offer: &OfferEntry) {
    if let Some(buys) = book.get_mut(&offer.selling) {
        if let Some(set) = buys.get_mut(&offer.buying) {
            set.remove(&book_key(offer));
            if set.is_empty() {
                buys.remove(&offer.buying);
            }
        }
        if buys.is_empty() {
            book.remove(&offer.selling);
        }
    }
}

/// Applies one offer transition (`prev` → `new`) to the book index.
///
/// An update may have moved the offer's book position; the stale one is
/// dropped *after* inserting the new one. Position must be compared with
/// `Ord` (the set's notion of equality): prices are unreduced fractions,
/// so 2/4 and 1/2 are Ord-equal but field-different, and removing the
/// "old" key would strip the entry the no-op insert just kept.
pub fn book_apply(book: &mut BookIndex, prev: Option<&OfferEntry>, new: Option<&OfferEntry>) {
    match (prev, new) {
        (prev, Some(cur)) => {
            index_insert(book, cur);
            if let Some(prev) = prev {
                if book_key(prev).cmp(&book_key(cur)) != std::cmp::Ordering::Equal
                    || prev.selling != cur.selling
                    || prev.buying != cur.buying
                {
                    index_remove(book, prev);
                }
            }
        }
        (Some(prev), None) => index_remove(book, prev),
        (None, None) => {}
    }
}

/// Reads the positions for a pair strictly after `after`, up to `limit`.
pub fn book_range(
    book: &BookIndex,
    selling: &Asset,
    buying: &Asset,
    after: Option<BookCursor>,
    limit: usize,
) -> Vec<BookCursor> {
    let Some(set) = book.get(selling).and_then(|m| m.get(buying)) else {
        return Vec::new();
    };
    let lower = match after {
        Some(cursor) => Bound::Excluded(cursor),
        None => Bound::Unbounded,
    };
    set.range((lower, Bound::Unbounded))
        .take(limit)
        .copied()
        .collect()
}

/// Lifetime I/O counters a backend exposes for telemetry. All zero for
/// the in-RAM backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Reads served from the write-back cache.
    pub cache_hits: u64,
    /// Reads that had to touch a segment.
    pub cache_misses: u64,
    /// Clean entries evicted to stay under the cache cap.
    pub cache_evicts: u64,
    /// Payload bytes staged to the data disk.
    pub bytes_written: u64,
    /// Payload bytes read back from segments.
    pub bytes_read: u64,
    /// Successful data-disk syncs.
    pub fsyncs: u64,
    /// Failed (fault-injected) data-disk syncs.
    pub failed_fsyncs: u64,
    /// Live segment files.
    pub segments: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Bytes currently occupying the data disk.
    pub disk_bytes: u64,
}

/// Storage backend for the ledger store: the four entry maps plus the
/// order-book index, behind get/put/delete/iterate.
pub trait LedgerBackend {
    /// A short name for reports ("mem" / "disk").
    fn name(&self) -> &'static str;

    /// Looks up an account.
    fn account(&self, id: AccountId) -> Option<AccountEntry>;
    /// Looks up a trustline.
    fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry>;
    /// Looks up an offer by id.
    fn offer(&self, id: u64) -> Option<OfferEntry>;
    /// Looks up a data entry.
    fn data(&self, id: AccountId, name: &str) -> Option<DataEntry>;
    /// All trustlines of one account (Horizon's account view).
    fn trustlines_of(&self, id: AccountId) -> Vec<TrustLineEntry>;

    /// Book positions for a pair strictly after `after`, best price
    /// first, ties by id, up to `limit`.
    fn book_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<BookCursor>;

    /// Applies a committed change feed: `Some` upserts, `None` deletes.
    /// The feed is the same one handed to the bucket list.
    fn apply(&mut self, feed: &[(LedgerKey, Option<LedgerEntry>)]);

    /// The next offer id to allocate.
    fn next_offer_id(&self) -> u64;
    /// Overwrites the offer-id allocator (commit / recovery).
    fn set_next_offer_id(&mut self, id: u64);

    /// Number of accounts.
    fn account_count(&self) -> usize;
    /// Number of open offers.
    fn offer_count(&self) -> usize;

    /// Every live entry: accounts, trustlines, offers, data — each kind
    /// in key order (snapshot hashing, bucket seeding).
    fn all_entries(&self) -> Vec<LedgerEntry>;

    /// Makes everything applied so far durable, tagged with the ledger
    /// it belongs to. Returns `false` if the disk sync failed (the data
    /// stays cached and is retried on the next flush). No-op in RAM.
    fn flush(&mut self, _ledger_seq: u64) -> bool {
        true
    }

    /// The data disk this backend writes to, if any — shared with the
    /// bucket list so spilled levels ride the same sync.
    fn disk(&self) -> Option<Rc<RefCell<DurableStore>>> {
        None
    }

    /// Lifetime I/O counters (telemetry).
    fn io_stats(&self) -> StoreIoStats {
        StoreIoStats::default()
    }

    /// Approximate bytes of RAM the backend currently holds entries in.
    fn resident_bytes(&self) -> u64;

    /// Clones the backend behind the trait object.
    fn boxed_clone(&self) -> Box<dyn LedgerBackend>;
}

/// Approximate in-RAM weight of an entry, by kind, for resident-bytes
/// gauges: struct size plus typical map/allocation overhead. Precision is
/// not the point — trend and order of magnitude are.
pub fn approx_entry_bytes(key: &LedgerKey) -> u64 {
    match key {
        LedgerKey::Account(_) => 136,
        LedgerKey::TrustLine(..) => 112,
        LedgerKey::Offer(_) => 120,
        LedgerKey::Data(..) => 112,
    }
}

/// The original in-RAM backend: ordered maps, split-keyed so point reads
/// never build scratch tuple keys.
#[derive(Clone, Debug, Default)]
pub struct MemBackend {
    accounts: BTreeMap<AccountId, AccountEntry>,
    trustlines: BTreeMap<AccountId, BTreeMap<Asset, TrustLineEntry>>,
    offers: BTreeMap<u64, OfferEntry>,
    data: BTreeMap<AccountId, BTreeMap<String, DataEntry>>,
    /// Side index over `offers`, maintained by every offer mutation.
    book: BookIndex,
    next_offer_id: u64,
}

impl MemBackend {
    /// An empty backend.
    pub fn new() -> MemBackend {
        MemBackend {
            next_offer_id: 1,
            ..MemBackend::default()
        }
    }
}

impl LedgerBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn account(&self, id: AccountId) -> Option<AccountEntry> {
        self.accounts.get(&id).cloned()
    }

    fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        self.trustlines.get(&id)?.get(asset).cloned()
    }

    fn offer(&self, id: u64) -> Option<OfferEntry> {
        self.offers.get(&id).cloned()
    }

    fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        self.data.get(&id)?.get(name).cloned()
    }

    fn trustlines_of(&self, id: AccountId) -> Vec<TrustLineEntry> {
        self.trustlines
            .get(&id)
            .map(|m| m.values().cloned().collect())
            .unwrap_or_default()
    }

    fn book_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<BookCursor> {
        book_range(&self.book, selling, buying, after, limit)
    }

    fn apply(&mut self, feed: &[(LedgerKey, Option<LedgerEntry>)]) {
        for (key, slot) in feed {
            match (key, slot) {
                (LedgerKey::Account(id), Some(LedgerEntry::Account(a))) => {
                    self.accounts.insert(*id, a.clone());
                }
                (LedgerKey::Account(id), None) => {
                    self.accounts.remove(id);
                }
                (LedgerKey::TrustLine(id, asset), Some(LedgerEntry::TrustLine(t))) => {
                    self.trustlines
                        .entry(*id)
                        .or_default()
                        .insert(asset.clone(), t.clone());
                }
                (LedgerKey::TrustLine(id, asset), None) => {
                    if let Some(m) = self.trustlines.get_mut(id) {
                        m.remove(asset);
                        if m.is_empty() {
                            self.trustlines.remove(id);
                        }
                    }
                }
                (LedgerKey::Offer(id), Some(LedgerEntry::Offer(o))) => {
                    let prev = self.offers.insert(*id, o.clone());
                    book_apply(&mut self.book, prev.as_ref(), Some(o));
                }
                (LedgerKey::Offer(id), None) => {
                    if let Some(prev) = self.offers.remove(id) {
                        book_apply(&mut self.book, Some(&prev), None);
                    }
                }
                (LedgerKey::Data(id, name), Some(LedgerEntry::Data(d))) => {
                    self.data
                        .entry(*id)
                        .or_default()
                        .insert(name.clone(), d.clone());
                }
                (LedgerKey::Data(id, name), None) => {
                    if let Some(m) = self.data.get_mut(id) {
                        m.remove(name);
                        if m.is_empty() {
                            self.data.remove(id);
                        }
                    }
                }
                // A key/value kind mismatch cannot be produced by commit.
                (key, Some(entry)) => {
                    debug_assert!(false, "mismatched feed item: {key:?} / {entry:?}")
                }
            }
        }
    }

    fn next_offer_id(&self) -> u64 {
        self.next_offer_id
    }

    fn set_next_offer_id(&mut self, id: u64) {
        self.next_offer_id = id;
    }

    fn account_count(&self) -> usize {
        self.accounts.len()
    }

    fn offer_count(&self) -> usize {
        self.offers.len()
    }

    fn all_entries(&self) -> Vec<LedgerEntry> {
        let mut out = Vec::new();
        out.extend(self.accounts.values().cloned().map(LedgerEntry::Account));
        out.extend(
            self.trustlines
                .values()
                .flat_map(BTreeMap::values)
                .cloned()
                .map(LedgerEntry::TrustLine),
        );
        out.extend(self.offers.values().cloned().map(LedgerEntry::Offer));
        out.extend(
            self.data
                .values()
                .flat_map(BTreeMap::values)
                .cloned()
                .map(LedgerEntry::Data),
        );
        out
    }

    fn resident_bytes(&self) -> u64 {
        let tls: usize = self.trustlines.values().map(BTreeMap::len).sum();
        let data: usize = self.data.values().map(BTreeMap::len).sum();
        self.accounts.len() as u64 * 136
            + tls as u64 * 112
            + self.offers.len() as u64 * 120
            + data as u64 * 112
    }

    fn boxed_clone(&self) -> Box<dyn LedgerBackend> {
        Box::new(self.clone())
    }
}

//! Footprint-scheduled parallel ledger apply.
//!
//! The sequential close applies every transaction in canonical order
//! against one delta. This module reproduces *exactly the same bytes* —
//! headers, result hashes, change feed — using a worker pool:
//!
//! 1. **Schedule.** Each transaction's declared footprint
//!    ([`crate::footprint`]) partitions the set into waves of mutually
//!    non-conflicting transactions (canonical order preserved for every
//!    conflicting pair).
//! 2. **Snapshot.** Per wave, the union of declared keys is prefetched
//!    from the current master state into an owned, `Sync` snapshot (the
//!    master itself holds `Rc`-backed backends and cannot cross threads).
//! 3. **Execute.** Workers run each transaction against the snapshot
//!    through a recording view that logs every read and flags any access
//!    outside the transaction's own declared footprint (an **escape**) —
//!    including order-book pages that bottom out in a truncated prefetch.
//!    Writes land in a per-transaction delta (Sui-writeback-style); new
//!    offers get ids from a per-transaction *provisional* range.
//! 4. **Commit.** Transactions commit in canonical order. A transaction
//!    that escaped — or whose recorded reads overlap keys written by an
//!    earlier re-run in the same wave — is discarded and **re-run
//!    sequentially** against the master (Block-STM-style fallback: never
//!    wrong, only slower). Everything else absorbs its worker delta
//!    as-is.
//! 5. **Renumber.** After all waves, provisional offer ids are renumbered
//!    to the exact ids sequential apply would have allocated (the mapping
//!    is order-preserving, so price-time priority never observes the
//!    difference), and the accumulated maps become the commit feed.
//!
//! Determinism therefore never rests on footprint accuracy: a wrong or
//! incomplete footprint can only cause re-runs, and the twin-run gate
//! (`tests/parallel_determinism.rs`) holds by construction.

use crate::apply::apply_transaction_with_keys;
use crate::asset::Asset;
use crate::backend::{book_key, BookCursor, LedgerBackend};
use crate::entry::{
    AccountEntry, AccountId, DataEntry, LedgerEntry, LedgerKey, OfferEntry, TrustLineEntry,
};
use crate::footprint::{book_pair, schedule_waves, tx_footprint, Footprint, FpKey};
use crate::header::LedgerParams;
use crate::ops::ExecEnv;
use crate::sigcache::SigVerifyCache;
use crate::store::{DeltaChanges, LedgerDelta, LedgerStore};
use crate::tx::{TransactionEnvelope, TxResult};
use crate::txset::TransactionSet;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use stellar_crypto::sign::PublicKey;

/// Offer-id distance between consecutive transactions' provisional
/// ranges; no transaction allocates remotely close to this many offers.
const PROVISIONAL_STRIDE: u64 = 1 << 32;

/// Book depth prefetched into a wave snapshot per declared pair
/// direction — four `orderbook::BOOK_PAGE`-sized pages. Crossings that
/// sweep deeper escape and re-run.
const BOOK_PREFETCH: usize = 64;

/// Counters describing one parallel close (telemetry).
#[derive(Clone, Debug, Default)]
pub struct ApplyStats {
    /// Number of scheduled waves (0 for a sequential close).
    pub waves: u64,
    /// Transactions per wave, in wave order.
    pub wave_sizes: Vec<usize>,
    /// Transactions whose worker execution was committed as-is.
    pub parallel_txs: u64,
    /// Transactions re-run sequentially after an escape or a read
    /// overlapping an earlier re-run's writes.
    pub conflict_reruns: u64,
    /// Transactions that skipped worker execution because their declared
    /// footprint is imprecise (path payments).
    pub footprint_fallbacks: u64,
    /// Worker threads used.
    pub threads: u64,
}

/// Accumulated master overlay: every committed transaction's changes so
/// far this close, layered over the real backend. Mirrors the maps of
/// one big sequential [`LedgerDelta`], with [`absorb`](Master::absorb)
/// mirroring `LedgerDelta::absorb`, so the final maps are field-for-field
/// what sequential apply would have produced.
#[derive(Default)]
struct Master {
    accounts: BTreeMap<AccountId, Option<AccountEntry>>,
    trustlines: BTreeMap<AccountId, BTreeMap<Asset, Option<TrustLineEntry>>>,
    offers: BTreeMap<u64, Option<OfferEntry>>,
    data: BTreeMap<AccountId, BTreeMap<String, Option<DataEntry>>>,
}

impl Master {
    fn absorb(&mut self, changes: DeltaChanges) {
        self.accounts.extend(changes.accounts);
        for (id, by_asset) in changes.trustlines {
            self.trustlines.entry(id).or_default().extend(by_asset);
        }
        self.offers.extend(changes.offers);
        for (id, by_name) in changes.data {
            self.data.entry(id).or_default().extend(by_name);
        }
    }

    fn offer(&self, base: &dyn LedgerBackend, id: u64) -> Option<OfferEntry> {
        match self.offers.get(&id) {
            Some(slot) => slot.clone(),
            None => base.offer(id),
        }
    }
}

/// Read-only [`LedgerBackend`] view of master-over-base: what sequential
/// apply would observe at this point of the close. Serves wave-snapshot
/// prefetch and sequential re-runs; never mutated through the trait.
struct MasterView<'a> {
    base: &'a dyn LedgerBackend,
    master: &'a Master,
}

impl LedgerBackend for MasterView<'_> {
    fn name(&self) -> &'static str {
        "master-view"
    }

    fn account(&self, id: AccountId) -> Option<AccountEntry> {
        match self.master.accounts.get(&id) {
            Some(slot) => slot.clone(),
            None => self.base.account(id),
        }
    }

    fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        match self.master.trustlines.get(&id).and_then(|m| m.get(asset)) {
            Some(slot) => slot.clone(),
            None => self.base.trustline(id, asset),
        }
    }

    fn offer(&self, id: u64) -> Option<OfferEntry> {
        self.master.offer(self.base, id)
    }

    fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        match self.master.data.get(&id).and_then(|m| m.get(name)) {
            Some(slot) => slot.clone(),
            None => self.base.data(id, name),
        }
    }

    fn trustlines_of(&self, id: AccountId) -> Vec<TrustLineEntry> {
        let mut by_asset: BTreeMap<Asset, Option<TrustLineEntry>> = self
            .base
            .trustlines_of(id)
            .into_iter()
            .map(|t| (t.asset.clone(), Some(t)))
            .collect();
        if let Some(overlay) = self.master.trustlines.get(&id) {
            for (asset, slot) in overlay {
                by_asset.insert(asset.clone(), slot.clone());
            }
        }
        by_asset.into_values().flatten().collect()
    }

    fn book_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<BookCursor> {
        // Merge the master's offer overlay with the base index in book
        // order — the same merge LedgerDelta::offers_page performs.
        const CHUNK: usize = 64;
        let mut overlay: Vec<BookCursor> = self
            .master
            .offers
            .values()
            .filter_map(Option::as_ref)
            .filter(|o| &o.selling == selling && &o.buying == buying)
            .map(book_key)
            .filter(|k| after.is_none_or(|cursor| *k > cursor))
            .collect();
        overlay.sort_unstable();
        let mut overlay = overlay.into_iter().peekable();

        let mut base_buf: VecDeque<BookCursor> = VecDeque::new();
        let mut base_cursor = after;
        let mut base_done = false;
        let mut out = Vec::new();
        while out.len() < limit {
            while base_buf.is_empty() && !base_done {
                let chunk = self.base.book_page(selling, buying, base_cursor, CHUNK);
                if chunk.len() < CHUNK {
                    base_done = true;
                }
                if let Some(&last) = chunk.last() {
                    base_cursor = Some(last);
                }
                base_buf.extend(
                    chunk
                        .into_iter()
                        .filter(|(_, id)| !self.master.offers.contains_key(id)),
                );
            }
            match (base_buf.front().copied(), overlay.peek().copied()) {
                (None, None) => break,
                (Some(_), None) => out.push(base_buf.pop_front().expect("peeked")),
                (None, Some(_)) => out.push(overlay.next().expect("peeked")),
                (Some(bk), Some(ok)) => {
                    if ok < bk {
                        out.push(overlay.next().expect("peeked"));
                    } else {
                        out.push(base_buf.pop_front().expect("peeked"));
                    }
                }
            }
        }
        out
    }

    fn apply(&mut self, _feed: &[(LedgerKey, Option<LedgerEntry>)]) {
        unreachable!("MasterView is read-only");
    }

    fn next_offer_id(&self) -> u64 {
        unreachable!("deltas over MasterView set their allocator explicitly");
    }

    fn set_next_offer_id(&mut self, _id: u64) {
        unreachable!("MasterView is read-only");
    }

    fn account_count(&self) -> usize {
        0
    }

    fn offer_count(&self) -> usize {
        0
    }

    fn all_entries(&self) -> Vec<LedgerEntry> {
        unreachable!("never enumerated during apply");
    }

    fn resident_bytes(&self) -> u64 {
        0
    }

    fn boxed_clone(&self) -> Box<dyn LedgerBackend> {
        unreachable!("MasterView is borrowed, not owned");
    }
}

/// A prefetched, owned, thread-shareable snapshot of every key a wave's
/// transactions declared. A key *present* in a map (even as `None`) was
/// prefetched; an *absent* key was not, and reading it is an escape.
#[derive(Default)]
struct WaveSnapshot {
    accounts: HashMap<AccountId, Option<AccountEntry>>,
    trustlines: HashMap<(AccountId, Asset), Option<TrustLineEntry>>,
    offers: HashMap<u64, Option<OfferEntry>>,
    data: HashMap<(AccountId, String), Option<DataEntry>>,
    /// Directional `(selling, buying)` → prefetched book prefix.
    books: HashMap<(Asset, Asset), BookSnap>,
}

struct BookSnap {
    cursors: Vec<BookCursor>,
    /// Whether `cursors` is the *whole* book for this direction. If not,
    /// a page read that exhausts the prefix must escape — silently
    /// serving a truncated book would corrupt deep crossings.
    complete: bool,
}

fn build_snapshot(view: &MasterView<'_>, wave_footprints: &[&Footprint]) -> WaveSnapshot {
    let mut snap = WaveSnapshot::default();
    let fetch_book = |snap: &mut WaveSnapshot, selling: &Asset, buying: &Asset| {
        let dir = (selling.clone(), buying.clone());
        if snap.books.contains_key(&dir) {
            return;
        }
        let cursors = view.book_page(selling, buying, None, BOOK_PREFETCH);
        let complete = cursors.len() < BOOK_PREFETCH;
        for &(_, id) in &cursors {
            snap.offers
                .entry(id)
                .or_insert_with(|| view.master.offer(view.base, id));
        }
        snap.books.insert(dir, BookSnap { cursors, complete });
    };
    for fp in wave_footprints {
        for key in fp.reads.iter().chain(fp.writes.iter()) {
            match key {
                FpKey::Account(id) => {
                    snap.accounts
                        .entry(*id)
                        .or_insert_with(|| view.account(*id));
                }
                FpKey::TrustLine(id, asset) => {
                    snap.trustlines
                        .entry((*id, asset.clone()))
                        .or_insert_with(|| view.trustline(*id, asset));
                }
                FpKey::Offer(id) => {
                    snap.offers.entry(*id).or_insert_with(|| view.offer(*id));
                }
                FpKey::Data(id, name) => {
                    snap.data
                        .entry((*id, name.clone()))
                        .or_insert_with(|| view.data(*id, name));
                }
                FpKey::Book(a, b) => {
                    fetch_book(&mut snap, a, b);
                    fetch_book(&mut snap, b, a);
                }
            }
        }
    }
    snap
}

/// Everything a worker observed executing one transaction: the concrete
/// keys it read and whether any access left its declared footprint.
#[derive(Default)]
struct ReadLog {
    accounts: HashSet<AccountId>,
    trustlines: HashSet<(AccountId, Asset)>,
    offers: HashSet<u64>,
    data: HashSet<(AccountId, String)>,
    /// Directional book pages read.
    books: HashSet<(Asset, Asset)>,
    escaped: bool,
}

/// Read surface a worker executes against: serves from the wave snapshot,
/// records every read, and flags escapes — reads outside the
/// transaction's own declared footprint, un-prefetched keys, or book
/// pages that bottom out in a truncated prefix.
struct RecordingView<'a> {
    snap: &'a WaveSnapshot,
    allowed: &'a Footprint,
    log: RefCell<ReadLog>,
}

impl RecordingView<'_> {
    fn escape(&self) {
        self.log.borrow_mut().escaped = true;
    }
}

impl LedgerBackend for RecordingView<'_> {
    fn name(&self) -> &'static str {
        "wave-snapshot"
    }

    fn account(&self, id: AccountId) -> Option<AccountEntry> {
        self.log.borrow_mut().accounts.insert(id);
        if !self.allowed.covers(&FpKey::Account(id)) {
            self.escape();
        }
        match self.snap.accounts.get(&id) {
            Some(slot) => slot.clone(),
            None => {
                self.escape();
                None
            }
        }
    }

    fn trustline(&self, id: AccountId, asset: &Asset) -> Option<TrustLineEntry> {
        self.log.borrow_mut().trustlines.insert((id, asset.clone()));
        if !self.allowed.covers(&FpKey::TrustLine(id, asset.clone())) {
            self.escape();
        }
        match self.snap.trustlines.get(&(id, asset.clone())) {
            Some(slot) => slot.clone(),
            None => {
                self.escape();
                None
            }
        }
    }

    fn offer(&self, id: u64) -> Option<OfferEntry> {
        self.log.borrow_mut().offers.insert(id);
        match self.snap.offers.get(&id) {
            Some(slot) => {
                // An offer is fair game if declared directly or reached
                // through a declared book pair.
                let by_pair = slot
                    .as_ref()
                    .is_some_and(|o| self.allowed.covers(&book_pair(&o.selling, &o.buying)));
                if !by_pair && !self.allowed.covers(&FpKey::Offer(id)) {
                    self.escape();
                }
                slot.clone()
            }
            None => {
                self.escape();
                None
            }
        }
    }

    fn data(&self, id: AccountId, name: &str) -> Option<DataEntry> {
        self.log.borrow_mut().data.insert((id, name.to_string()));
        if !self.allowed.covers(&FpKey::Data(id, name.to_string())) {
            self.escape();
        }
        match self.snap.data.get(&(id, name.to_string())) {
            Some(slot) => slot.clone(),
            None => {
                self.escape();
                None
            }
        }
    }

    fn trustlines_of(&self, _id: AccountId) -> Vec<TrustLineEntry> {
        // Never called by operation execution; treat as an escape so a
        // future caller cannot silently observe an empty view.
        self.escape();
        Vec::new()
    }

    fn book_page(
        &self,
        selling: &Asset,
        buying: &Asset,
        after: Option<BookCursor>,
        limit: usize,
    ) -> Vec<BookCursor> {
        self.log
            .borrow_mut()
            .books
            .insert((selling.clone(), buying.clone()));
        if !self.allowed.covers(&book_pair(selling, buying)) {
            self.escape();
        }
        let Some(book) = self.snap.books.get(&(selling.clone(), buying.clone())) else {
            self.escape();
            return Vec::new();
        };
        let start = match after {
            Some(cursor) => book.cursors.partition_point(|&k| k <= cursor),
            None => 0,
        };
        let available = book.cursors.len() - start;
        if available < limit && !book.complete {
            // The caller may be about to sweep past the prefetched
            // prefix; a truncated book must not masquerade as the end.
            self.escape();
        }
        book.cursors[start..start + available.min(limit)].to_vec()
    }

    fn apply(&mut self, _feed: &[(LedgerKey, Option<LedgerEntry>)]) {
        unreachable!("RecordingView is read-only");
    }

    fn next_offer_id(&self) -> u64 {
        unreachable!("worker deltas set their allocator explicitly");
    }

    fn set_next_offer_id(&mut self, _id: u64) {
        unreachable!("RecordingView is read-only");
    }

    fn account_count(&self) -> usize {
        0
    }

    fn offer_count(&self) -> usize {
        0
    }

    fn all_entries(&self) -> Vec<LedgerEntry> {
        unreachable!("never enumerated during apply");
    }

    fn resident_bytes(&self) -> u64 {
        0
    }

    fn boxed_clone(&self) -> Box<dyn LedgerBackend> {
        unreachable!("RecordingView is borrowed, not owned");
    }
}

/// One worker-executed transaction, pending commit-time validation.
struct TxExec {
    result: TxResult,
    changes: DeltaChanges,
    log: ReadLog,
}

/// Concrete keys written to the master by commit-time re-runs of the
/// current wave; later worker results whose reads overlap must re-run
/// too (their snapshot predates these writes).
#[derive(Default)]
struct DirtySet {
    accounts: HashSet<AccountId>,
    trustlines: HashSet<(AccountId, Asset)>,
    offers: HashSet<u64>,
    data: HashSet<(AccountId, String)>,
    /// Normalized pairs whose books changed.
    books: HashSet<FpKey>,
    active: bool,
}

impl DirtySet {
    /// Records everything `changes` writes. `prior` resolves the asset
    /// pair of offers deleted by id (for book invalidation); tombstones
    /// of never-committed provisional ids resolve to nothing.
    fn add(&mut self, changes: &DeltaChanges, base: &dyn LedgerBackend, prior: &Master) {
        self.active = true;
        self.accounts.extend(changes.accounts.keys().copied());
        for (id, by_asset) in &changes.trustlines {
            for asset in by_asset.keys() {
                self.trustlines.insert((*id, asset.clone()));
            }
        }
        for (id, by_name) in &changes.data {
            for name in by_name.keys() {
                self.data.insert((*id, name.clone()));
            }
        }
        for (id, slot) in &changes.offers {
            self.offers.insert(*id);
            let pair_of = match slot {
                Some(o) => Some(book_pair(&o.selling, &o.buying)),
                None => prior
                    .offer(base, *id)
                    .map(|o| book_pair(&o.selling, &o.buying)),
            };
            if let Some(p) = pair_of {
                self.books.insert(p);
            }
        }
    }

    fn overlaps(&self, log: &ReadLog) -> bool {
        if !self.active {
            return false;
        }
        log.accounts.iter().any(|k| self.accounts.contains(k))
            || log.trustlines.iter().any(|k| self.trustlines.contains(k))
            || log.offers.iter().any(|k| self.offers.contains(k))
            || log.data.iter().any(|k| self.data.contains(k))
            || log
                .books
                .iter()
                .any(|(s, b)| self.books.contains(&book_pair(s, b)))
    }
}

/// Provisional offer-id base for transaction `t`.
fn provisional_base(initial_next: u64, t: usize) -> u64 {
    initial_next + (t as u64 + 1) * PROVISIONAL_STRIDE
}

type Job = Box<dyn FnOnce() + Send>;

/// Persistent, process-wide apply workers. Spawning OS threads per wave
/// costs more than executing a small wave, so workers are detached and
/// live for the whole process; each close borrows send-handles for as
/// many as it needs and always runs its first chunk on the calling
/// thread.
struct Pool {
    senders: Vec<Sender<Job>>,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

/// Clones send-handles for `want` workers, growing the pool on demand.
/// May return fewer than `want` if thread spawning fails; callers run
/// the overflow inline.
fn pool_senders(want: usize) -> Vec<Sender<Job>> {
    let pool = POOL.get_or_init(|| {
        Mutex::new(Pool {
            senders: Vec::new(),
        })
    });
    let mut pool = pool.lock().unwrap_or_else(|p| p.into_inner());
    while pool.senders.len() < want {
        let (send, recv) = mpsc::channel::<Job>();
        let spawned = std::thread::Builder::new()
            .name(format!("ledger-apply-{}", pool.senders.len()))
            .spawn(move || {
                while let Ok(job) = recv.recv() {
                    job();
                }
            })
            .is_ok();
        if !spawned {
            break;
        }
        pool.senders.push(send);
    }
    pool.senders[..want.min(pool.senders.len())].to_vec()
}

/// Per-close state shared with pool workers. Owned (not borrowed from
/// the caller) because jobs outlive the dispatching stack frame; the
/// envelope clone is the only copy the parallel path pays.
struct CloseCtx {
    txs: Vec<TransactionEnvelope>,
    footprints: Vec<Footprint>,
    signer_keys: Vec<Vec<PublicKey>>,
    exec: ExecEnv,
    close_time: u64,
    base_fee_rate: i64,
    initial_next: u64,
}

/// Executes one transaction against a wave snapshot, recording reads.
fn run_worker_tx(ctx: &CloseCtx, snap: &WaveSnapshot, t: usize) -> TxExec {
    let rv = RecordingView {
        snap,
        allowed: &ctx.footprints[t],
        log: RefCell::new(ReadLog::default()),
    };
    let mut delta = LedgerDelta::over(&rv, provisional_base(ctx.initial_next, t));
    let clearing = ctx.base_fee_rate * ctx.txs[t].tx.op_count().max(1) as i64;
    let result = apply_transaction_with_keys(
        &mut delta,
        &ctx.txs[t],
        ctx.close_time,
        clearing,
        &ctx.exec,
        &ctx.signer_keys[t],
    );
    let changes = delta.into_changes();
    TxExec {
        result,
        changes,
        log: rv.log.into_inner(),
    }
}

/// What one close produces before header assembly: per-transaction
/// results, the commit feed, total fees charged, and scheduling
/// counters.
pub(crate) type CloseOutput = (
    Vec<TxResult>,
    Vec<(LedgerKey, Option<LedgerEntry>)>,
    i64,
    ApplyStats,
);

/// Closes the transaction set in parallel, returning per-transaction
/// results, the commit feed, total fees, and scheduling counters. The
/// results and feed are byte-identical to sequential apply.
pub(crate) fn close_parallel(
    store: &mut LedgerStore,
    tx_set: &TransactionSet,
    close_time: u64,
    params: &LedgerParams,
    sig_cache: &mut SigVerifyCache,
) -> CloseOutput {
    let n = tx_set.txs.len();
    let threads = (params.apply_threads.max(1) as usize).min(n.max(1));
    let exec = ExecEnv {
        base_reserve: params.base_reserve,
        close_time,
    };
    let initial_next = store.next_offer_id();

    // Signature verification needs the node's (thread-local) cache, so
    // every envelope's valid signer keys are resolved up front.
    let signer_keys: Vec<Vec<PublicKey>> = tx_set
        .txs
        .iter()
        .map(|env| env.valid_signer_keys_cached(sig_cache))
        .collect();

    let footprints: Vec<Footprint> = tx_set
        .txs
        .iter()
        .map(|env| tx_footprint(store.backend(), env))
        .collect();
    let waves = schedule_waves(&footprints);

    let mut stats = ApplyStats {
        waves: waves.len() as u64,
        wave_sizes: waves.iter().map(Vec::len).collect(),
        threads: threads as u64,
        ..ApplyStats::default()
    };

    let ctx = Arc::new(CloseCtx {
        txs: tx_set.txs.clone(),
        footprints,
        signer_keys,
        exec,
        close_time,
        base_fee_rate: tx_set.base_fee_rate,
        initial_next,
    });
    let footprints = &ctx.footprints;
    let signer_keys = &ctx.signer_keys;

    let mut master = Master::default();
    let mut results: Vec<Option<TxResult>> = (0..n).map(|_| None).collect();
    // Offer allocations per committed transaction, for final renumbering.
    let mut alloc_counts: Vec<u64> = vec![0; n];
    let mut fees = 0i64;

    let clearing = |t: usize| tx_set.base_fee_rate * tx_set.txs[t].tx.op_count().max(1) as i64;

    for wave in &waves {
        // Imprecise footprints (path payments) skip worker execution:
        // they take the sequential fallback at their commit slot.
        let mut runnable: Vec<usize> = wave
            .iter()
            .copied()
            .filter(|&t| footprints[t].precise)
            .collect();
        // A lone runnable transaction gains nothing from snapshot
        // isolation: run it at its commit slot against the master
        // instead, skipping the prefetch (order books are the expensive
        // part — conflicting offers serialize into such waves).
        if runnable.len() < 2 {
            runnable.clear();
        }

        let mut executed: HashMap<usize, TxExec> = HashMap::new();
        if !runnable.is_empty() {
            let view = MasterView {
                base: store.backend(),
                master: &master,
            };
            let wave_fps: Vec<&Footprint> = runnable.iter().map(|&t| &footprints[t]).collect();
            let snapshot = Arc::new(build_snapshot(&view, &wave_fps));

            if threads > 1 && runnable.len() > 1 {
                let chunk = runnable.len().div_ceil(threads);
                let mut parts = runnable.chunks(chunk);
                let mine = parts.next().expect("runnable is non-empty");
                let rest: Vec<Vec<usize>> = parts.map(<[usize]>::to_vec).collect();
                let senders = pool_senders(rest.len());
                let (done, collected) = mpsc::channel::<(usize, TxExec)>();
                for (i, part) in rest.into_iter().enumerate() {
                    let ctx = Arc::clone(&ctx);
                    let snap = Arc::clone(&snapshot);
                    let done = done.clone();
                    let job: Job = Box::new(move || {
                        for t in part {
                            let out = run_worker_tx(&ctx, &snap, t);
                            let _ = done.send((t, out));
                        }
                    });
                    match senders.get(i) {
                        Some(s) => {
                            // A send fails only if the worker died; the
                            // job owns everything it needs, so run it
                            // here instead.
                            if let Err(mpsc::SendError(job)) = s.send(job) {
                                job();
                            }
                        }
                        None => job(),
                    }
                }
                drop(done);
                for &t in mine {
                    executed.insert(t, run_worker_tx(&ctx, &snapshot, t));
                }
                // The channel closes once every job has dropped its
                // handle. A worker that died mid-job yields fewer
                // results; its transactions re-run sequentially at
                // commit, so the close stays correct.
                while let Ok((t, out)) = collected.recv() {
                    executed.insert(t, out);
                }
            } else {
                for &t in &runnable {
                    executed.insert(t, run_worker_tx(&ctx, &snapshot, t));
                }
            }
        }

        // Commit in canonical order; escapes and dirty-read overlaps
        // re-run sequentially against the master.
        let mut dirty = DirtySet::default();
        for &t in wave {
            let exec_out = executed.remove(&t);
            let commit_worker = exec_out
                .as_ref()
                .is_some_and(|e| !e.log.escaped && !dirty.overlaps(&e.log));
            let (result, changes) = if commit_worker {
                stats.parallel_txs += 1;
                let e = exec_out.expect("checked above");
                (e.result, e.changes)
            } else {
                if exec_out.is_some() {
                    // A worker ran it but the output was discarded:
                    // escaped its footprint or read a re-run's writes.
                    stats.conflict_reruns += 1;
                } else if !footprints[t].precise {
                    stats.footprint_fallbacks += 1;
                }
                // Remaining case: a solo-wave transaction, sequential
                // by design — neither counter.
                let view = MasterView {
                    base: store.backend(),
                    master: &master,
                };
                let mut delta = LedgerDelta::over(&view, provisional_base(initial_next, t));
                let result = apply_transaction_with_keys(
                    &mut delta,
                    &tx_set.txs[t],
                    close_time,
                    clearing(t),
                    &exec,
                    &signer_keys[t],
                );
                let changes = delta.into_changes();
                dirty.add(&changes, store.backend(), &master);
                (result, changes)
            };
            alloc_counts[t] = changes
                .next_offer_id
                .saturating_sub(provisional_base(initial_next, t));
            match &result {
                TxResult::Success { fee_charged } | TxResult::Failed { fee_charged, .. } => {
                    fees += fee_charged;
                }
                TxResult::Invalid(_) => {}
            }
            results[t] = Some(result);
            master.absorb(changes);
        }
    }

    // Renumber provisional offer ids into the exact sequence sequential
    // apply would have allocated. The mapping is monotone (provisional
    // bases ascend in canonical order, real ids are handed out in the
    // same order), so book-order ties by id are preserved.
    let provisional_floor = initial_next + PROVISIONAL_STRIDE;
    let mut id_map: HashMap<u64, u64> = HashMap::new();
    let mut next_real = initial_next;
    for (t, &count) in alloc_counts.iter().enumerate() {
        let base = provisional_base(initial_next, t);
        for off in 0..count {
            id_map.insert(base + off, next_real);
            next_real += 1;
        }
    }
    let mut offers: BTreeMap<u64, Option<OfferEntry>> = BTreeMap::new();
    for (id, slot) in master.offers {
        let real = if id >= provisional_floor {
            *id_map.get(&id).expect("every provisional id was allocated")
        } else {
            id
        };
        let slot = slot.map(|mut o| {
            o.id = real;
            o
        });
        offers.insert(real, slot);
    }

    let changes = DeltaChanges {
        accounts: master.accounts,
        trustlines: master.trustlines,
        offers,
        data: master.data,
        next_offer_id: next_real,
    };
    let feed = store.commit(changes);
    let results = results
        .into_iter()
        .map(|r| r.expect("every tx committed"))
        .collect();
    (results, feed, fees, stats)
}

//! Ledger headers (Fig. 3).
//!
//! Each header chains to the previous header's hash, records the SCP
//! output (transaction-set hash and close time), a hash of the transaction
//! results, and the snapshot hash of all ledger entries (the bucket-list
//! hash from `stellar-buckets`). "Because the snapshot hash includes all
//! ledger contents, validators need not retain history to validate
//! transactions."

use stellar_crypto::Hash256;

/// Global chain parameters carried in every header and adjustable by
/// consensus upgrades (§5.3).
///
/// `apply_threads` is deliberately **not** consensus state: it is a local
/// execution knob (how many worker threads `close_ledger` may use) that
/// must never influence the bytes a validator externalizes. It is
/// therefore excluded from the codec, from equality, and from the header
/// hash — two validators closing the same ledger with different thread
/// counts produce identical headers.
#[derive(Clone, Copy, Eq, Debug)]
pub struct LedgerParams {
    /// Protocol version; upgrades take the highest nominated.
    pub protocol_version: u32,
    /// Base fee per operation, stroops.
    pub base_fee: i64,
    /// Base reserve per ledger entry, stroops.
    pub base_reserve: i64,
    /// Maximum operations per transaction set (surge-pricing threshold).
    pub max_tx_set_ops: u32,
    /// Worker threads for parallel ledger apply (local knob, ≤ 1 means
    /// sequential). Not part of consensus: ignored by codec and equality.
    pub apply_threads: u32,
}

impl PartialEq for LedgerParams {
    fn eq(&self, other: &Self) -> bool {
        // apply_threads is a local knob, not chain state.
        self.protocol_version == other.protocol_version
            && self.base_fee == other.base_fee
            && self.base_reserve == other.base_reserve
            && self.max_tx_set_ops == other.max_tx_set_ops
    }
}

impl Default for LedgerParams {
    fn default() -> Self {
        LedgerParams {
            protocol_version: 1,
            base_fee: crate::amount::BASE_FEE,
            base_reserve: crate::amount::BASE_RESERVE,
            max_tx_set_ops: 1000,
            apply_threads: 1,
        }
    }
}

// Hand-written codec (instead of `impl_codec_struct!`): only the four
// consensus fields are on the wire; `apply_threads` decodes to its
// default so a header round-trip never smuggles a local knob.
impl stellar_crypto::codec::Encode for LedgerParams {
    fn encode(&self, out: &mut Vec<u8>) {
        self.protocol_version.encode(out);
        self.base_fee.encode(out);
        self.base_reserve.encode(out);
        self.max_tx_set_ops.encode(out);
    }
}

impl stellar_crypto::codec::Decode for LedgerParams {
    fn decode(input: &mut &[u8]) -> Result<Self, stellar_crypto::codec::DecodeError> {
        Ok(LedgerParams {
            protocol_version: stellar_crypto::codec::Decode::decode(input)?,
            base_fee: stellar_crypto::codec::Decode::decode(input)?,
            base_reserve: stellar_crypto::codec::Decode::decode(input)?,
            max_tx_set_ops: stellar_crypto::codec::Decode::decode(input)?,
            apply_threads: 1,
        })
    }
}

/// A ledger header (Fig. 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LedgerHeader {
    /// Ledger sequence number.
    pub ledger_seq: u64,
    /// Hash of the previous ledger header.
    pub prev_header_hash: Hash256,
    /// Hash of the transaction set this ledger applied (SCP output).
    pub tx_set_hash: Hash256,
    /// Close time agreed through SCP (seconds).
    pub close_time: u64,
    /// Hash of the transaction results (success/failure of each).
    pub results_hash: Hash256,
    /// Snapshot hash of all ledger entries (bucket-list hash).
    pub snapshot_hash: Hash256,
    /// Chain parameters in force for this ledger.
    pub params: LedgerParams,
    /// Total fees collected this ledger (recycled per §5.2; tracked here).
    pub fee_pool: i64,
}

stellar_crypto::impl_codec_struct!(LedgerHeader {
    ledger_seq,
    prev_header_hash,
    tx_set_hash,
    close_time,
    results_hash,
    snapshot_hash,
    params,
    fee_pool,
});

impl LedgerHeader {
    /// The genesis header.
    pub fn genesis(snapshot_hash: Hash256) -> LedgerHeader {
        LedgerHeader {
            ledger_seq: 1,
            prev_header_hash: Hash256::ZERO,
            tx_set_hash: Hash256::ZERO,
            close_time: 0,
            results_hash: Hash256::ZERO,
            snapshot_hash,
            params: LedgerParams::default(),
            fee_pool: 0,
        }
    }

    /// This header's content hash (the next ledger's `prev_header_hash`).
    pub fn hash(&self) -> Hash256 {
        stellar_crypto::hash_xdr(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_links_to_zero() {
        let g = LedgerHeader::genesis(Hash256::ZERO);
        assert_eq!(g.ledger_seq, 1);
        assert_eq!(g.prev_header_hash, Hash256::ZERO);
    }

    #[test]
    fn hash_covers_all_fields() {
        let g = LedgerHeader::genesis(Hash256::ZERO);
        let mut h2 = g.clone();
        h2.close_time = 5;
        assert_ne!(g.hash(), h2.hash());
        let mut h3 = g.clone();
        h3.params.base_fee += 1;
        assert_ne!(g.hash(), h3.hash());
    }

    #[test]
    fn apply_threads_is_not_consensus_state() {
        let g = LedgerHeader::genesis(Hash256::ZERO);
        let mut h2 = g.clone();
        h2.params.apply_threads = 8;
        // Same hash, same equality, same wire bytes: the knob is local.
        assert_eq!(g.hash(), h2.hash());
        assert_eq!(g, h2);
        use stellar_crypto::codec::{Decode, Encode};
        let decoded = LedgerParams::from_bytes(&h2.params.to_bytes()).unwrap();
        assert_eq!(decoded.apply_threads, 1);
    }

    #[test]
    fn codec_roundtrip() {
        use stellar_crypto::codec::{Decode, Encode};
        let g = LedgerHeader::genesis(stellar_crypto::sha256::sha256(b"snap"));
        assert_eq!(LedgerHeader::from_bytes(&g.to_bytes()).unwrap(), g);
    }
}

//! Ledger close: applying an agreed transaction set to the store.
//!
//! Once SCP externalizes a value, every validator deterministically applies
//! the same transaction set in the same order and must arrive at the same
//! results hash and snapshot hash — this function *is* the replicated
//! state machine (§5). Transaction semantics per §5.2:
//!
//! * an **invalid** transaction (bad sequence, bad signatures, expired
//!   time bounds…) has no effect;
//! * a **valid** transaction always charges its fee and consumes its
//!   sequence number, even if an operation fails;
//! * operations are atomic as a group: the first failure rolls back every
//!   operation effect (but not fee/sequence).

use crate::entry::{AccountId, LedgerEntry, LedgerKey, ThresholdLevel};
use crate::header::{LedgerHeader, LedgerParams};
use crate::ops::{apply_operation, ExecEnv};
use crate::parallel::ApplyStats;
use crate::sigcache::SigVerifyCache;
use crate::store::{LedgerDelta, LedgerStore};
use crate::tx::{Transaction, TransactionEnvelope, TxError, TxResult};
use crate::txset::TransactionSet;
use stellar_crypto::codec::Encode;
use stellar_crypto::sign::PublicKey;
use stellar_crypto::Hash256;

/// Everything produced by closing one ledger.
#[derive(Debug)]
pub struct CloseResult {
    /// The new header (minus the snapshot hash the caller may patch in
    /// after updating its bucket list).
    pub header: LedgerHeader,
    /// Per-transaction results, in apply order.
    pub results: Vec<TxResult>,
    /// Entry change feed for the bucket list: `None` = deleted.
    pub changes: Vec<(LedgerKey, Option<LedgerEntry>)>,
    /// Fees collected.
    pub fees_collected: i64,
    /// Parallel-apply counters (all zero for a sequential close).
    pub stats: ApplyStats,
}

/// Validates a transaction against current state (no effects).
///
/// `sig_cache` memoizes Schnorr verification, so a transaction already
/// checked at submission or nomination does not re-verify at apply.
/// Callers without a cache pass `&mut SigVerifyCache::disabled()` — a
/// capacity-0 cache that costs one stack allocation.
pub fn check_validity(
    delta: &LedgerDelta<'_>,
    env: &TransactionEnvelope,
    close_time: u64,
    clearing_fee: i64,
    sig_cache: &mut SigVerifyCache,
) -> Result<(), TxError> {
    let signer_keys = env.valid_signer_keys_cached(sig_cache);
    check_validity_with_keys(delta, env, close_time, clearing_fee, &signer_keys)
}

/// [`check_validity`] with the envelope's valid signer keys already
/// resolved. The parallel apply path verifies signatures up front on the
/// main thread (the verify cache is not shareable across workers) and
/// threads the keys through; both paths share this one implementation.
pub fn check_validity_with_keys(
    delta: &LedgerDelta<'_>,
    env: &TransactionEnvelope,
    close_time: u64,
    clearing_fee: i64,
    signer_keys: &[PublicKey],
) -> Result<(), TxError> {
    let tx = &env.tx;
    if tx.operations.is_empty() {
        return Err(TxError::MissingOperations);
    }
    if tx.fee < tx.min_fee() {
        return Err(TxError::InsufficientFee);
    }
    if let Some(tb) = &tx.time_bounds {
        if tb.min_time != 0 && close_time < tb.min_time {
            return Err(TxError::TooEarly);
        }
        if tb.max_time != 0 && close_time > tb.max_time {
            return Err(TxError::TooLate);
        }
    }
    let source = delta.account(tx.source).ok_or(TxError::NoSourceAccount)?;
    if tx.seq_num != source.seq_num + 1 {
        return Err(TxError::BadSequence);
    }
    if source.balance < clearing_fee.min(tx.fee) {
        return Err(TxError::InsufficientBalance);
    }
    check_signatures(delta, env, signer_keys)?;
    Ok(())
}

/// Verifies that every source account's signature threshold is met (§5.2:
/// "A transaction must be signed by keys corresponding to every source
/// account in an operation").
fn check_signatures(
    delta: &LedgerDelta<'_>,
    env: &TransactionEnvelope,
    signer_keys: &[PublicKey],
) -> Result<(), TxError> {
    for account_id in env.tx.signing_accounts() {
        let account = delta.account(account_id).ok_or(TxError::NoSourceAccount)?;
        let weight = account.signing_weight_with_preimages(signer_keys, &env.preimages);
        let required = required_threshold(&env.tx, account_id, &account);
        if weight < required {
            return Err(TxError::BadAuth);
        }
    }
    Ok(())
}

fn required_threshold(
    tx: &Transaction,
    account_id: AccountId,
    account: &crate::entry::AccountEntry,
) -> u32 {
    let mut level = ThresholdLevel::Low; // fee/sequence consumption
    for so in &tx.operations {
        let src = so.source.unwrap_or(tx.source);
        if src == account_id {
            let l = so.op.threshold_level();
            if threshold_rank(l) > threshold_rank(level) {
                level = l;
            }
        }
    }
    account.threshold(level)
}

fn threshold_rank(l: ThresholdLevel) -> u8 {
    match l {
        ThresholdLevel::Low => 0,
        ThresholdLevel::Medium => 1,
        ThresholdLevel::High => 2,
    }
}

/// Charges `fee` to the transaction's source and consumes its sequence
/// number. The **one** place fee/failure-path store mutations happen:
/// sequential and parallel apply both run it (via
/// [`apply_transaction_with_keys`]) strictly *after* validity checking,
/// so a failed transaction produces exactly the same mutations — fee
/// deducted, sequence bumped, nothing else — on both paths.
fn charge_fee(delta: &mut LedgerDelta<'_>, tx: &Transaction, fee: i64) {
    let mut source = delta.account(tx.source).expect("validated before charging");
    source.balance -= fee;
    source.seq_num = tx.seq_num;
    delta.put_account(source);
}

/// Applies one transaction to `delta`, returning its result.
///
/// Fee and sequence effects land in `delta` even on operation failure;
/// operation effects land only on success. `sig_cache` as in
/// [`check_validity`].
pub fn apply_transaction(
    delta: &mut LedgerDelta<'_>,
    env: &TransactionEnvelope,
    close_time: u64,
    clearing_fee: i64,
    exec: &ExecEnv,
    sig_cache: &mut SigVerifyCache,
) -> TxResult {
    let signer_keys = env.valid_signer_keys_cached(sig_cache);
    apply_transaction_with_keys(delta, env, close_time, clearing_fee, exec, &signer_keys)
}

/// [`apply_transaction`] with pre-resolved signer keys — the single
/// implementation both the sequential and the parallel path execute, so
/// their fee/validity/failure semantics cannot drift.
pub fn apply_transaction_with_keys(
    delta: &mut LedgerDelta<'_>,
    env: &TransactionEnvelope,
    close_time: u64,
    clearing_fee: i64,
    exec: &ExecEnv,
    signer_keys: &[PublicKey],
) -> TxResult {
    if let Err(e) = check_validity_with_keys(delta, env, close_time, clearing_fee, signer_keys) {
        return TxResult::Invalid(e);
    }
    let tx = &env.tx;
    let fee = clearing_fee.min(tx.fee);

    // Charge the fee and consume the sequence number unconditionally.
    charge_fee(delta, tx, fee);

    // Operations execute on a fork; first failure discards it.
    let mut fork = delta.fork();
    for (i, so) in tx.operations.iter().enumerate() {
        let op_source = so.source.unwrap_or(tx.source);
        if fork.account(op_source).is_none() {
            return TxResult::Failed {
                fee_charged: fee,
                failed_op: i,
                error: crate::tx::OpError::NoDestination,
            };
        }
        if let Err(e) = apply_operation(&mut fork, op_source, &so.op, exec) {
            return TxResult::Failed {
                fee_charged: fee,
                failed_op: i,
                error: e,
            };
        }
    }
    let changes = fork.into_changes();
    delta.absorb(changes);
    TxResult::Success { fee_charged: fee }
}

/// Closes a ledger: applies `tx_set` on top of `store`, commits, and
/// produces the next header.
///
/// `snapshot_hash` is the bucket-list hash *after* the caller feeds the
/// returned change feed to its bucket list; pass `Hash256::ZERO` and patch
/// the header afterwards, or close in two phases as `stellar-herder` does.
///
/// `sig_cache` is the node's signature-verify cache: transactions this
/// node already verified at submission or nomination skip Schnorr
/// verification entirely at apply. The cache never changes results — it
/// memoizes a pure function — so cached and disabled-cache closes
/// externalize identical headers (`tests/cache_determinism.rs`).
///
/// `params.apply_threads > 1` routes through the footprint-scheduled
/// parallel path ([`crate::parallel`]), which externalizes byte-identical
/// headers, results, and change feeds (`tests/parallel_determinism.rs`).
pub fn close_ledger(
    store: &mut LedgerStore,
    prev: &LedgerHeader,
    tx_set: &TransactionSet,
    close_time: u64,
    params: LedgerParams,
    sig_cache: &mut SigVerifyCache,
) -> CloseResult {
    let (results, changes, fees, stats) = if params.apply_threads > 1 && tx_set.txs.len() > 1 {
        crate::parallel::close_parallel(store, tx_set, close_time, &params, sig_cache)
    } else {
        let exec = ExecEnv {
            base_reserve: params.base_reserve,
            close_time,
        };
        let mut delta = store.begin();
        let mut results = Vec::with_capacity(tx_set.txs.len());
        let mut fees = 0i64;
        for env in &tx_set.txs {
            let clearing = tx_set.base_fee_rate * env.tx.op_count().max(1) as i64;
            let r = apply_transaction(&mut delta, env, close_time, clearing, &exec, sig_cache);
            match &r {
                TxResult::Success { fee_charged } | TxResult::Failed { fee_charged, .. } => {
                    fees += fee_charged;
                }
                TxResult::Invalid(_) => {}
            }
            results.push(r);
        }
        let changes = store.commit(delta.into_changes());
        (results, changes, fees, ApplyStats::default())
    };

    let header = LedgerHeader {
        ledger_seq: prev.ledger_seq + 1,
        prev_header_hash: prev.hash(),
        tx_set_hash: tx_set.hash(),
        close_time,
        results_hash: hash_results(&results),
        snapshot_hash: Hash256::ZERO, // patched by the caller (bucket list)
        params,
        fee_pool: prev.fee_pool + fees,
    };
    CloseResult {
        header,
        results,
        changes,
        fees_collected: fees,
        stats,
    }
}

/// Hashes the result list (success flags + fee charged + error codes).
pub fn hash_results(results: &[TxResult]) -> Hash256 {
    let mut buf = Vec::new();
    for r in results {
        match r {
            TxResult::Success { fee_charged } => {
                0u8.encode(&mut buf);
                fee_charged.encode(&mut buf);
            }
            TxResult::Failed {
                fee_charged,
                failed_op,
                error,
            } => {
                1u8.encode(&mut buf);
                fee_charged.encode(&mut buf);
                (*failed_op as u64).encode(&mut buf);
                (*error as u8 as u32).encode(&mut buf);
            }
            TxResult::Invalid(e) => {
                2u8.encode(&mut buf);
                (*e as u8 as u32).encode(&mut buf);
            }
        }
    }
    stellar_crypto::sha256::sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::{xlm, BASE_FEE};
    use crate::asset::Asset;
    use crate::entry::AccountEntry;
    use crate::tx::{Memo, Operation, SourcedOperation};
    use stellar_crypto::sign::KeyPair;

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(n)
    }

    /// Shadows the public `close_ledger` with a disabled-cache variant so
    /// the semantic tests below stay focused on apply behaviour.
    fn close_ledger(
        store: &mut LedgerStore,
        prev: &LedgerHeader,
        tx_set: &TransactionSet,
        close_time: u64,
        params: LedgerParams,
    ) -> CloseResult {
        super::close_ledger(
            store,
            prev,
            tx_set,
            close_time,
            params,
            &mut SigVerifyCache::disabled(),
        )
    }

    fn acct_of(k: &KeyPair) -> AccountId {
        AccountId(k.public())
    }

    fn funded_store(key_seeds: &[u64]) -> LedgerStore {
        let mut s = LedgerStore::new();
        for &n in key_seeds {
            s.put_account(AccountEntry::new(acct_of(&keys(n)), xlm(1000)));
        }
        s
    }

    fn payment_env(from: u64, to: u64, seq: u64, amount: i64) -> TransactionEnvelope {
        let k = keys(from);
        let tx = Transaction {
            source: acct_of(&k),
            seq_num: seq,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: acct_of(&keys(to)),
                    asset: Asset::Native,
                    amount,
                },
            }],
        };
        TransactionEnvelope::sign(tx, &[&k])
    }

    #[test]
    fn close_ledger_applies_payments() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let set = TransactionSet::assemble(prev.hash(), vec![payment_env(1, 2, 1, xlm(10))], 100);
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert!(res.results[0].is_success());
        assert_eq!(store.account(acct_of(&keys(2))).unwrap().balance, xlm(1010));
        assert_eq!(
            store.account(acct_of(&keys(1))).unwrap().balance,
            xlm(990) - BASE_FEE
        );
        assert_eq!(res.fees_collected, BASE_FEE);
        assert_eq!(res.header.ledger_seq, 2);
        assert_eq!(res.header.prev_header_hash, prev.hash());
    }

    #[test]
    fn bad_sequence_is_invalid_and_free() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let set = TransactionSet::assemble(prev.hash(), vec![payment_env(1, 2, 7, xlm(10))], 100);
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert_eq!(res.results[0], TxResult::Invalid(TxError::BadSequence));
        assert_eq!(store.account(acct_of(&keys(1))).unwrap().balance, xlm(1000));
        assert_eq!(res.fees_collected, 0);
    }

    #[test]
    fn failed_op_charges_fee_and_bumps_seq_but_rolls_back() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        // Two ops: a good payment then an overdraft — both must roll back.
        let k = keys(1);
        let tx = Transaction {
            source: acct_of(&k),
            seq_num: 1,
            fee: BASE_FEE * 2,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![
                SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct_of(&keys(2)),
                        asset: Asset::Native,
                        amount: xlm(10),
                    },
                },
                SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct_of(&keys(2)),
                        asset: Asset::Native,
                        amount: xlm(100000),
                    },
                },
            ],
        };
        let set =
            TransactionSet::assemble(prev.hash(), vec![TransactionEnvelope::sign(tx, &[&k])], 100);
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        match &res.results[0] {
            TxResult::Failed { failed_op: 1, .. } => {}
            other => panic!("expected op 1 failure, got {other:?}"),
        }
        // First payment rolled back; fee charged; sequence consumed.
        assert_eq!(store.account(acct_of(&keys(2))).unwrap().balance, xlm(1000));
        assert_eq!(
            store.account(acct_of(&keys(1))).unwrap().balance,
            xlm(1000) - BASE_FEE * 2
        );
        assert_eq!(store.account(acct_of(&keys(1))).unwrap().seq_num, 1);
    }

    #[test]
    fn unsigned_transaction_rejected() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let mut env = payment_env(1, 2, 1, xlm(1));
        env.signatures.clear();
        let set = TransactionSet {
            prev_ledger_hash: prev.hash(),
            txs: vec![env],
            base_fee_rate: BASE_FEE,
        };
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert_eq!(res.results[0], TxResult::Invalid(TxError::BadAuth));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let k_wrong = keys(5);
        let tx = payment_env(1, 2, 1, xlm(1)).tx;
        let env = TransactionEnvelope::sign(tx, &[&k_wrong]);
        let set = TransactionSet {
            prev_ledger_hash: prev.hash(),
            txs: vec![env],
            base_fee_rate: BASE_FEE,
        };
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert_eq!(res.results[0], TxResult::Invalid(TxError::BadAuth));
    }

    #[test]
    fn multisig_thresholds_enforced() {
        let mut store = funded_store(&[1, 2]);
        let k1 = keys(1);
        let k_extra = keys(50);
        // Require weight 2 for medium ops; master alone has weight 1.
        {
            let mut a = store.account(acct_of(&k1)).unwrap().clone();
            a.thresholds.medium = 2;
            a.signers
                .push(crate::entry::Signer::key(k_extra.public(), 1));
            store.put_account(a);
        }
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        // Master alone: rejected.
        let set = TransactionSet::assemble(prev.hash(), vec![payment_env(1, 2, 1, xlm(1))], 100);
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert_eq!(res.results[0], TxResult::Invalid(TxError::BadAuth));
        // Master + extra signer: accepted.
        let tx = payment_env(1, 2, 1, xlm(1)).tx;
        let env = TransactionEnvelope::sign(tx, &[&k1, &k_extra]);
        let set2 = TransactionSet {
            prev_ledger_hash: prev.hash(),
            txs: vec![env],
            base_fee_rate: BASE_FEE,
        };
        let res2 = close_ledger(&mut store, &prev, &set2, 1000, LedgerParams::default());
        assert!(res2.results[0].is_success(), "{:?}", res2.results[0]);
    }

    #[test]
    fn time_bounds_enforced_at_close() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let k = keys(1);
        let mut tx = payment_env(1, 2, 1, xlm(1)).tx;
        tx.time_bounds = Some(crate::tx::TimeBounds {
            min_time: 500,
            max_time: 800,
        });
        let env = TransactionEnvelope::sign(tx, &[&k]);
        let set = TransactionSet {
            prev_ledger_hash: prev.hash(),
            txs: vec![env],
            base_fee_rate: BASE_FEE,
        };
        let res = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert_eq!(res.results[0], TxResult::Invalid(TxError::TooLate));
        let res2 = close_ledger(&mut store, &prev, &set, 600, LedgerParams::default());
        assert!(res2.results[0].is_success());
    }

    #[test]
    fn replay_prevented_by_sequence() {
        let mut store = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let env = payment_env(1, 2, 1, xlm(10));
        let set = TransactionSet {
            prev_ledger_hash: prev.hash(),
            txs: vec![env.clone()],
            base_fee_rate: BASE_FEE,
        };
        let res1 = close_ledger(&mut store, &prev, &set, 1000, LedgerParams::default());
        assert!(res1.results[0].is_success());
        // Same envelope again: sequence has moved on.
        let res2 = close_ledger(
            &mut store,
            &res1.header,
            &set,
            1005,
            LedgerParams::default(),
        );
        assert_eq!(res2.results[0], TxResult::Invalid(TxError::BadSequence));
    }

    #[test]
    fn deterministic_results_hash() {
        let mut s1 = funded_store(&[1, 2]);
        let mut s2 = funded_store(&[1, 2]);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        let set = TransactionSet::assemble(
            prev.hash(),
            vec![payment_env(1, 2, 1, xlm(3)), payment_env(2, 1, 1, xlm(4))],
            100,
        );
        let r1 = close_ledger(&mut s1, &prev, &set, 1000, LedgerParams::default());
        let r2 = close_ledger(&mut s2, &prev, &set, 1000, LedgerParams::default());
        assert_eq!(r1.header.results_hash, r2.header.results_hash);
        assert_eq!(r1.header.hash(), r2.header.hash());
    }

    #[test]
    fn atomic_multiparty_swap() {
        // The paper's land-deal example: one tx, three ops, two signers.
        let mut store = funded_store(&[1, 2, 9]);
        let k1 = keys(1);
        let k2 = keys(2);
        let k9 = keys(9); // issuer of DEED and USD
        let deed = Asset::issued(acct_of(&k9), "DEED");
        let usd = Asset::issued(acct_of(&k9), "USD");
        // Setup: A(1) holds USD + a small parcel; B(2) holds the big parcel.
        {
            let prev = LedgerHeader::genesis(Hash256::ZERO);
            let mk_trust = |who: &KeyPair, asset: &Asset, seq: u64| {
                TransactionEnvelope::sign(
                    Transaction {
                        source: acct_of(who),
                        seq_num: seq,
                        fee: BASE_FEE,
                        time_bounds: None,
                        memo: Memo::None,
                        operations: vec![SourcedOperation {
                            source: None,
                            op: Operation::ChangeTrust {
                                asset: asset.clone(),
                                limit: xlm(100),
                            },
                        }],
                    },
                    &[who],
                )
            };
            let fund = TransactionEnvelope::sign(
                Transaction {
                    source: acct_of(&k9),
                    seq_num: 1,
                    fee: BASE_FEE * 3,
                    time_bounds: None,
                    memo: Memo::None,
                    operations: vec![
                        SourcedOperation {
                            source: None,
                            op: Operation::Payment {
                                destination: acct_of(&k1),
                                asset: usd.clone(),
                                amount: 20_000,
                            },
                        },
                        SourcedOperation {
                            source: None,
                            op: Operation::Payment {
                                destination: acct_of(&k1),
                                asset: deed.clone(),
                                amount: 1,
                            },
                        },
                        SourcedOperation {
                            source: None,
                            op: Operation::Payment {
                                destination: acct_of(&k2),
                                asset: deed.clone(),
                                amount: 5,
                            },
                        },
                    ],
                },
                &[&k9],
            );
            // Trustlines first (one ledger), then funding (the next) —
            // apply order within a set is canonical, not submission order.
            let set = TransactionSet::assemble(
                prev.hash(),
                vec![
                    mk_trust(&k1, &usd, 1),
                    mk_trust(&k1, &deed, 2),
                    mk_trust(&k2, &usd, 1),
                    mk_trust(&k2, &deed, 2),
                ],
                100,
            );
            let res = close_ledger(&mut store, &prev, &set, 10, LedgerParams::default());
            assert!(
                res.results.iter().all(TxResult::is_success),
                "{:?}",
                res.results
            );
            let set2 = TransactionSet::assemble(res.header.hash(), vec![fund], 100);
            let res2 = close_ledger(&mut store, &res.header, &set2, 15, LedgerParams::default());
            assert!(
                res2.results.iter().all(TxResult::is_success),
                "{:?}",
                res2.results
            );
        }
        // The swap: A pays small parcel + $10k; B pays the big parcel.
        let swap = Transaction {
            source: acct_of(&k1),
            seq_num: 3,
            fee: BASE_FEE * 3,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![
                SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct_of(&k2),
                        asset: deed.clone(),
                        amount: 1,
                    },
                },
                SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct_of(&k2),
                        asset: usd.clone(),
                        amount: 10_000,
                    },
                },
                SourcedOperation {
                    source: Some(acct_of(&k2)),
                    op: Operation::Payment {
                        destination: acct_of(&k1),
                        asset: deed.clone(),
                        amount: 5,
                    },
                },
            ],
        };
        // Both users sign the single transaction.
        let env = TransactionEnvelope::sign(swap, &[&k1, &k2]);
        let prev2 = LedgerHeader::genesis(Hash256::ZERO);
        let set = TransactionSet {
            prev_ledger_hash: prev2.hash(),
            txs: vec![env],
            base_fee_rate: BASE_FEE,
        };
        let res = close_ledger(&mut store, &prev2, &set, 20, LedgerParams::default());
        assert!(res.results[0].is_success(), "{:?}", res.results[0]);
        let d = store.begin();
        assert_eq!(d.trustline(acct_of(&k2), &deed).unwrap().balance, 1);
        assert_eq!(d.trustline(acct_of(&k1), &deed).unwrap().balance, 5);
        assert_eq!(d.trustline(acct_of(&k2), &usd).unwrap().balance, 10_000);
        assert_eq!(d.trustline(acct_of(&k1), &usd).unwrap().balance, 10_000);
    }
}

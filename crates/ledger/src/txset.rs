//! Transaction sets: what SCP actually agrees on (§5.3).
//!
//! Validators nominate a *transaction set* for each ledger; SCP agrees on
//! its hash. Assembly applies **surge pricing** when demand exceeds the
//! per-ledger operation budget: candidates are ranked by fee per
//! operation (a Dutch auction, §5.2) and the clearing rate — the lowest
//! included bid — sets everyone's effective fee.

use crate::amount::BASE_FEE;
use crate::tx::TransactionEnvelope;
use stellar_crypto::codec::Encode;
use stellar_crypto::Hash256;

/// An ordered set of transactions for one ledger.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TransactionSet {
    /// Hash of the previous ledger header (binds the set to a position in
    /// the chain, Fig. 3).
    pub prev_ledger_hash: Hash256,
    /// The transactions.
    pub txs: Vec<TransactionEnvelope>,
    /// The Dutch-auction clearing fee rate (stroops per operation).
    pub base_fee_rate: i64,
}

stellar_crypto::impl_codec_struct!(TransactionSet {
    prev_ledger_hash,
    txs,
    base_fee_rate
});

impl TransactionSet {
    /// An empty set for `prev_ledger_hash`.
    pub fn empty(prev_ledger_hash: Hash256) -> TransactionSet {
        TransactionSet {
            prev_ledger_hash,
            txs: Vec::new(),
            base_fee_rate: BASE_FEE,
        }
    }

    /// Assembles a set from candidates under an operation budget.
    ///
    /// Candidates bidding below `BASE_FEE` per op are dropped. Under
    /// congestion, the highest bidders win (ties broken by hash for
    /// determinism) and the clearing rate is the lowest included bid.
    pub fn assemble(
        prev_ledger_hash: Hash256,
        mut candidates: Vec<TransactionEnvelope>,
        max_ops: u32,
    ) -> TransactionSet {
        candidates.retain(|tx| tx.tx.fee_rate() >= BASE_FEE && !tx.tx.operations.is_empty());
        // Highest fee rate first; ties by hash.
        candidates.sort_by(|a, b| {
            b.tx.fee_rate()
                .cmp(&a.tx.fee_rate())
                .then_with(|| a.hash().cmp(&b.hash()))
        });
        let mut txs = Vec::new();
        let mut ops: u32 = 0;
        let congested = {
            let total: u32 = candidates.iter().map(|t| t.tx.op_count() as u32).sum();
            total > max_ops
        };
        for tx in candidates {
            let c = tx.tx.op_count() as u32;
            if ops + c > max_ops {
                continue;
            }
            ops += c;
            txs.push(tx);
        }
        let base_fee_rate = if congested {
            txs.iter()
                .map(|t| t.tx.fee_rate())
                .min()
                .unwrap_or(BASE_FEE)
        } else {
            BASE_FEE
        };
        // Canonical apply order: deterministic and seq-respecting — by
        // (source, seq), then hash.
        let mut set = TransactionSet {
            prev_ledger_hash,
            txs,
            base_fee_rate,
        };
        set.sort_canonical();
        set
    }

    fn sort_canonical(&mut self) {
        self.txs.sort_by(|a, b| {
            (a.tx.source, a.tx.seq_num, a.hash()).cmp(&(b.tx.source, b.tx.seq_num, b.hash()))
        });
    }

    /// Content hash (the SCP-agreed identifier of this set).
    pub fn hash(&self) -> Hash256 {
        stellar_crypto::hash_xdr(self)
    }

    /// Total operations across all transactions (the §5.3 nomination
    /// tie-breaker prefers the set with the most).
    pub fn op_count(&self) -> usize {
        self.txs.iter().map(|t| t.tx.op_count()).sum()
    }

    /// Total fees bid (secondary §5.3 tie-breaker).
    pub fn total_fees(&self) -> i64 {
        self.txs.iter().map(|t| t.tx.fee).sum()
    }

    /// The fee a transaction actually pays in this set: its bid capped by
    /// the clearing rate × its operations.
    pub fn effective_fee(&self, tx: &TransactionEnvelope) -> i64 {
        tx.tx
            .fee
            .min(self.base_fee_rate * tx.tx.op_count().max(1) as i64)
    }

    /// Encoded size in bytes (overlay accounting).
    pub fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::Asset;
    use crate::entry::AccountId;
    use crate::tx::{Memo, Operation, SourcedOperation, Transaction};
    use stellar_crypto::sign::{KeyPair, PublicKey};

    fn envelope(source: u64, seq: u64, fee: i64, ops: usize) -> TransactionEnvelope {
        let tx = Transaction {
            source: AccountId(PublicKey(source)),
            seq_num: seq,
            fee,
            time_bounds: None,
            memo: Memo::None,
            operations: (0..ops)
                .map(|_| SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: AccountId(PublicKey(99)),
                        asset: Asset::Native,
                        amount: 1,
                    },
                })
                .collect(),
        };
        let k = KeyPair::from_seed(source);
        TransactionEnvelope::sign(tx, &[&k])
    }

    #[test]
    fn uncongested_set_takes_everything_at_base_fee() {
        let set = TransactionSet::assemble(
            Hash256::ZERO,
            vec![envelope(1, 1, BASE_FEE, 1), envelope(2, 1, BASE_FEE * 7, 1)],
            100,
        );
        assert_eq!(set.txs.len(), 2);
        assert_eq!(set.base_fee_rate, BASE_FEE);
        assert_eq!(set.op_count(), 2);
    }

    #[test]
    fn surge_pricing_prefers_higher_bids() {
        // Budget of 2 ops; three 1-op candidates with different bids.
        let set = TransactionSet::assemble(
            Hash256::ZERO,
            vec![
                envelope(1, 1, BASE_FEE, 1),
                envelope(2, 1, BASE_FEE * 10, 1),
                envelope(3, 1, BASE_FEE * 5, 1),
            ],
            2,
        );
        assert_eq!(set.txs.len(), 2);
        let sources: Vec<u64> = set.txs.iter().map(|t| t.tx.source.0 .0).collect();
        assert!(sources.contains(&2) && sources.contains(&3), "{sources:?}");
        // Clearing rate = lowest included bid.
        assert_eq!(set.base_fee_rate, BASE_FEE * 5);
    }

    #[test]
    fn effective_fee_is_capped_by_clearing_rate() {
        let set = TransactionSet::assemble(
            Hash256::ZERO,
            vec![
                envelope(1, 1, BASE_FEE * 10, 1),
                envelope(2, 1, BASE_FEE * 5, 1),
                envelope(3, 1, BASE_FEE, 1),
            ],
            2,
        );
        let top = set
            .txs
            .iter()
            .find(|t| t.tx.source.0 .0 == 2 || t.tx.source.0 .0 == 1)
            .unwrap();
        assert_eq!(set.effective_fee(top), BASE_FEE * 5);
    }

    #[test]
    fn below_base_fee_dropped() {
        let set =
            TransactionSet::assemble(Hash256::ZERO, vec![envelope(1, 1, BASE_FEE - 1, 1)], 10);
        assert!(set.txs.is_empty());
    }

    #[test]
    fn canonical_order_respects_sequence() {
        let set = TransactionSet::assemble(
            Hash256::ZERO,
            vec![envelope(1, 2, BASE_FEE, 1), envelope(1, 1, BASE_FEE, 1)],
            10,
        );
        assert_eq!(set.txs[0].tx.seq_num, 1);
        assert_eq!(set.txs[1].tx.seq_num, 2);
    }

    #[test]
    fn hash_depends_on_contents_and_prev() {
        let a = TransactionSet::assemble(Hash256::ZERO, vec![envelope(1, 1, BASE_FEE, 1)], 10);
        let b = TransactionSet::assemble(
            stellar_crypto::sha256::sha256(b"other"),
            vec![envelope(1, 1, BASE_FEE, 1)],
            10,
        );
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), TransactionSet::empty(Hash256::ZERO).hash());
    }

    #[test]
    fn multi_op_transactions_count_against_budget() {
        let set = TransactionSet::assemble(
            Hash256::ZERO,
            vec![
                envelope(1, 1, BASE_FEE * 3, 3),
                envelope(2, 1, BASE_FEE * 2, 2),
            ],
            4,
        );
        // 3 + 2 > 4: only the first (by fee rate then hash) fits… both
        // bid BASE_FEE per op, so whichever sorts first fills 3 ops and
        // the 2-op one no longer fits.
        assert_eq!(set.txs.len(), 1);
        assert_eq!(set.base_fee_rate, set.txs[0].tx.fee_rate());
    }
}

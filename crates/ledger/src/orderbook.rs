//! The built-in order book and matching engine (§5.1, §5.2).
//!
//! Offers are "an account's willingness to trade up to a certain amount of
//! a particular asset for another at a given price; they are automatically
//! matched and filled when buy/sell prices cross." Matching executes at the
//! resting (maker) offer's price, best price first with time priority.
//! *Passive* offers decline to cross offers at exactly the reciprocal
//! price, enabling zero-spread market making.
//!
//! The engine operates on a [`LedgerDelta`], so partially matched books
//! roll back together with the failing transaction.

use crate::amount::Price;
use crate::asset::Asset;
use crate::entry::{AccountId, OfferEntry};
use crate::store::{book_key, BookCursor, LedgerDelta};

/// Resting offers fetched from the book per matching round. Most orders
/// fill within one page; deep sweeps fetch more pages as they go.
const BOOK_PAGE: usize = 16;

/// Outcome of crossing an incoming order against the book.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrossResult {
    /// Amount of the incoming order's *selling* asset actually sold.
    pub sold: i64,
    /// Amount of the *buying* asset acquired in exchange.
    pub bought: i64,
    /// Trades executed: (maker offer id, maker account, sold, bought)
    /// where `sold`/`bought` are from the *taker's* perspective.
    pub fills: Vec<Fill>,
}

/// One fill against a resting offer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fill {
    /// The resting offer's id.
    pub offer_id: u64,
    /// The resting offer's owner.
    pub maker: AccountId,
    /// Taker's selling asset transferred to the maker.
    pub taker_sold: i64,
    /// Taker's buying asset received from the maker.
    pub taker_bought: i64,
}

/// Limits on how much an order may trade, from trustline balances/limits.
#[derive(Clone, Copy, Debug)]
pub struct TradeCaps {
    /// Maximum of the selling asset the taker can deliver.
    pub max_sell: i64,
    /// Maximum of the buying asset the taker can receive.
    pub max_buy: i64,
}

/// Crosses an incoming order (sell `selling`, buy `buying`, limit price
/// `price` = minimum buying units per selling unit) against the book.
///
/// Consumes resting offers selling `buying` for `selling` whose price
/// crosses. Stops when caps are exhausted, the price stops crossing, or the
/// book empties. Mutates consumed offers in `delta` but does **not** move
/// balances — the caller (operation execution) settles balances using the
/// returned fills, because balance rules (trustlines, auth, reserves)
/// live at that layer.
///
/// `taker` never self-crosses: the taker's own offers are skipped
/// (production Stellar fails the op instead; we skip for simplicity and
/// document the difference in DESIGN.md).
pub fn cross(
    delta: &mut LedgerDelta<'_>,
    taker: AccountId,
    selling: &Asset,
    buying: &Asset,
    price: &Price,
    caps: TradeCaps,
    passive: bool,
) -> CrossResult {
    let mut result = CrossResult {
        sold: 0,
        bought: 0,
        fills: Vec::new(),
    };
    let mut remaining_sell = caps.max_sell;
    let mut remaining_buy = caps.max_buy;

    // Resting offers sell `buying` and buy `selling`. Page through the
    // book index lazily — a typical order fills within the first page, so
    // a 10k-offer book costs the same as a 16-offer one. The cursor
    // advances past each examined maker; consumed offers mutate only at
    // or before the cursor, so pages never replay them.
    let mut cursor: Option<BookCursor> = None;
    'sweep: loop {
        let page = delta.offers_page(buying, selling, cursor, BOOK_PAGE);
        if page.is_empty() {
            break;
        }
        for maker in page {
            cursor = Some(book_key(&maker));
            if remaining_sell <= 0 || remaining_buy <= 0 {
                break 'sweep;
            }
            if maker.account == taker {
                continue; // no self-cross
            }
            // Crossing test: taker price (buy per sell) and maker price
            // (sell per buy, in taker terms) must multiply to ≤ 1.
            if !price.crosses(&maker.price) {
                break 'sweep; // book is sorted; nothing further crosses
            }
            // Passive orders do not take exactly-reciprocal prices.
            let exactly_reciprocal = u64::from(price.n) * u64::from(maker.price.n)
                == u64::from(price.d) * u64::from(maker.price.d);
            if passive && exactly_reciprocal {
                continue;
            }

            // Trade at the maker's price: maker sells `buying` at
            // maker.price (units of `selling` per unit of `buying`).
            // Max the taker can buy from this maker:
            let maker_available = maker.amount.min(remaining_buy);
            if maker_available <= 0 {
                continue;
            }
            // What the taker must pay for that, rounded up in maker's favor.
            let full_cost = match maker.price.convert_ceil(maker_available) {
                Some(c) => c,
                None => break 'sweep,
            };
            let (bought, sold) = if full_cost <= remaining_sell {
                (maker_available, full_cost)
            } else {
                // Partial: how much can we buy with remaining_sell?
                let b = match maker.price.invert().convert_floor(remaining_sell) {
                    Some(b) => b.min(maker_available),
                    None => break 'sweep,
                };
                if b <= 0 {
                    break 'sweep;
                }
                let c = maker.price.convert_ceil(b).unwrap_or(i64::MAX);
                if c > remaining_sell {
                    break 'sweep;
                }
                (b, c)
            };
            if bought <= 0 || sold <= 0 {
                break 'sweep;
            }

            // Consume the maker's offer.
            let mut updated = maker.clone();
            updated.amount -= bought;
            if updated.amount <= 0 {
                delta.delete_offer(updated.id);
                release_offer_subentry(delta, updated.account);
            } else {
                delta.put_offer(updated);
            }

            remaining_sell -= sold;
            remaining_buy -= bought;
            result.sold += sold;
            result.bought += bought;
            result.fills.push(Fill {
                offer_id: maker.id,
                maker: maker.account,
                taker_sold: sold,
                taker_bought: bought,
            });
        }
    }
    result
}

/// Decrements the maker's subentry count when their offer is fully
/// consumed (the reserve "decreases when the ledger entry disappears,
/// e.g. when an order is filled", §5.1).
fn release_offer_subentry(delta: &mut LedgerDelta<'_>, account: AccountId) {
    if let Some(mut a) = delta.account(account) {
        a.num_subentries = a.num_subentries.saturating_sub(1);
        delta.put_account(a);
    }
}

/// Creates a resting offer entry for whatever remains of an order.
pub fn make_offer(
    delta: &mut LedgerDelta<'_>,
    account: AccountId,
    selling: Asset,
    buying: Asset,
    amount: i64,
    price: Price,
    passive: bool,
) -> OfferEntry {
    let offer = OfferEntry {
        id: delta.allocate_offer_id(),
        account,
        selling,
        buying,
        amount,
        price,
        passive,
    };
    delta.put_offer(offer.clone());
    if let Some(mut a) = delta.account(account) {
        a.num_subentries += 1;
        delta.put_account(a);
    }
    offer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::AccountEntry;
    use crate::store::LedgerStore;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    fn usd() -> Asset {
        Asset::issued(acct(99), "USD")
    }

    fn store_with_accounts(ids: &[u64]) -> LedgerStore {
        let mut s = LedgerStore::new();
        for &i in ids {
            s.put_account(AccountEntry::new(acct(i), 1_000_000_000));
        }
        s
    }

    /// Places a maker offer selling USD for XLM at `price` (XLM per USD).
    fn place_maker(delta: &mut LedgerDelta<'_>, owner: u64, amount: i64, price: Price) -> u64 {
        make_offer(
            delta,
            acct(owner),
            usd(),
            Asset::Native,
            amount,
            price,
            false,
        )
        .id
    }

    #[test]
    fn full_fill_at_maker_price() {
        let store = store_with_accounts(&[1, 2]);
        let mut delta = store.begin();
        // Maker sells 100 USD at 2 XLM per USD.
        let oid = place_maker(&mut delta, 2, 100, Price::new(2, 1));
        // Taker sells up to 200 XLM for USD at limit 1 USD per 2 XLM.
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 2),
            TradeCaps {
                max_sell: 200,
                max_buy: i64::MAX,
            },
            false,
        );
        assert_eq!(res.bought, 100);
        assert_eq!(res.sold, 200);
        assert_eq!(res.fills.len(), 1);
        assert_eq!(res.fills[0].offer_id, oid);
        assert!(delta.offer(oid).is_none(), "maker offer fully consumed");
    }

    #[test]
    fn partial_fill_leaves_remainder() {
        let store = store_with_accounts(&[1, 2]);
        let mut delta = store.begin();
        let oid = place_maker(&mut delta, 2, 100, Price::new(2, 1));
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 2),
            TradeCaps {
                max_sell: 50,
                max_buy: i64::MAX,
            },
            false,
        );
        assert_eq!(res.bought, 25);
        assert_eq!(res.sold, 50);
        assert_eq!(delta.offer(oid).unwrap().amount, 75);
    }

    #[test]
    fn non_crossing_price_does_not_trade() {
        let store = store_with_accounts(&[1, 2]);
        let mut delta = store.begin();
        place_maker(&mut delta, 2, 100, Price::new(2, 1)); // asks 2 XLM/USD
                                                           // Taker will pay at most 1 XLM per USD (limit 1 USD per XLM):
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 1),
            TradeCaps {
                max_sell: 100,
                max_buy: i64::MAX,
            },
            false,
        );
        assert_eq!(res.sold, 0);
        assert_eq!(res.bought, 0);
    }

    #[test]
    fn best_price_first_with_time_priority() {
        let store = store_with_accounts(&[1, 2, 3]);
        let mut delta = store.begin();
        let cheap = place_maker(&mut delta, 2, 10, Price::new(1, 1));
        let pricey = place_maker(&mut delta, 3, 10, Price::new(3, 1));
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 3),
            TradeCaps {
                max_sell: 100,
                max_buy: i64::MAX,
            },
            false,
        );
        assert_eq!(res.fills.len(), 2);
        assert_eq!(res.fills[0].offer_id, cheap);
        assert_eq!(res.fills[1].offer_id, pricey);
        // 10 USD at 1 + 10 USD at 3 = 40 XLM.
        assert_eq!(res.sold, 40);
        assert_eq!(res.bought, 20);
    }

    #[test]
    fn passive_skips_exact_reciprocal() {
        let store = store_with_accounts(&[1, 2]);
        let mut delta = store.begin();
        place_maker(&mut delta, 2, 100, Price::new(1, 1));
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 1),
            TradeCaps {
                max_sell: 100,
                max_buy: i64::MAX,
            },
            true, // passive
        );
        assert_eq!(res.sold, 0, "passive order must not cross equal price");
        // Non-passive at the same price does cross.
        let res2 = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 1),
            TradeCaps {
                max_sell: 100,
                max_buy: i64::MAX,
            },
            false,
        );
        assert_eq!(res2.sold, 100);
    }

    #[test]
    fn self_cross_skipped() {
        let store = store_with_accounts(&[1]);
        let mut delta = store.begin();
        place_maker(&mut delta, 1, 100, Price::new(1, 1));
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 1),
            TradeCaps {
                max_sell: 100,
                max_buy: i64::MAX,
            },
            false,
        );
        assert_eq!(res.sold, 0);
    }

    #[test]
    fn max_buy_cap_respected() {
        let store = store_with_accounts(&[1, 2]);
        let mut delta = store.begin();
        place_maker(&mut delta, 2, 100, Price::new(2, 1));
        let res = cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 2),
            TradeCaps {
                max_sell: i64::MAX / 4,
                max_buy: 30,
            },
            false,
        );
        assert_eq!(res.bought, 30);
        assert_eq!(res.sold, 60);
    }

    #[test]
    fn fully_consumed_offer_releases_subentry() {
        let mut store = store_with_accounts(&[1, 2]);
        {
            let mut delta = store.begin();
            place_maker(&mut delta, 2, 10, Price::new(1, 1));
            let ch = delta.into_changes();
            store.commit(ch);
        }
        assert_eq!(store.account(acct(2)).unwrap().num_subentries, 1);
        let mut delta = store.begin();
        cross(
            &mut delta,
            acct(1),
            &Asset::Native,
            &usd(),
            &Price::new(1, 1),
            TradeCaps {
                max_sell: 10,
                max_buy: i64::MAX,
            },
            false,
        );
        let ch = delta.into_changes();
        store.commit(ch);
        assert_eq!(store.account(acct(2)).unwrap().num_subentries, 0);
    }
}

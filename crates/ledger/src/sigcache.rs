//! Verified-signature cache.
//!
//! Every transaction is signature-checked at least three times on its way
//! into a ledger: once when it is admitted to the pending queue, once when
//! the nominated transaction set is validated, and once inside
//! `close_ledger` when it is applied (§5.2: every validator replays the
//! full apply path). The Schnorr verification each check performs — two
//! modular exponentiations — is the most expensive single operation on the
//! close path, yet its outcome is a pure function of `(message, key,
//! signature)`. Production stellar-core keeps exactly such a cache; this
//! is ours.
//!
//! The cache is **two-generation bounded**: inserts go to a fresh
//! generation, and when it fills to half the configured capacity the old
//! generation is discarded wholesale and the fresh one takes its place.
//! That keeps eviction O(1) amortized and deterministic (no clocks, no
//! randomized LRU sampling), so twin runs produce identical results — a
//! cache hit returns bit-for-bit what verification would have.
//!
//! Negative results are cached too: a flood of copies of one bad
//! signature costs one verification, not one per copy.

use std::collections::HashMap;
use stellar_crypto::sign::{verify_hash, PublicKey, Signature};
use stellar_crypto::Hash256;

/// Cache key: the signed message hash plus the full `(key, signature)`
/// triple, so distinct signatures over one transaction never collide.
type SigKey = (Hash256, u64, u64, u64);

/// A bounded memo table for Schnorr verification outcomes.
///
/// Correctness does not depend on the cache: it stores only pure
/// verification outcomes, keyed by every input of the verification. A
/// disabled cache (capacity 0) degrades to calling `verify` every time,
/// which the twin-run determinism test exploits.
#[derive(Debug)]
pub struct SigVerifyCache {
    /// Maximum total entries across both generations (0 = disabled).
    capacity: usize,
    /// Fresh generation: receives all inserts.
    young: HashMap<SigKey, bool>,
    /// Previous generation: read-only; hits are promoted back to `young`.
    old: HashMap<SigKey, bool>,
    hits: u64,
    misses: u64,
}

impl SigVerifyCache {
    /// A cache holding at most `capacity` verified outcomes.
    pub fn new(capacity: usize) -> SigVerifyCache {
        SigVerifyCache {
            capacity,
            young: HashMap::new(),
            old: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A disabled cache: every check verifies from scratch.
    pub fn disabled() -> SigVerifyCache {
        SigVerifyCache::new(0)
    }

    /// True when the cache actually memoizes.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Verifies `sig` by `pk` over `msg`, consulting the cache first.
    pub fn check(&mut self, msg: &Hash256, pk: PublicKey, sig: &Signature) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return verify_hash(pk, msg, sig);
        }
        let key = (*msg, pk.0, sig.e, sig.s);
        if let Some(&ok) = self.young.get(&key) {
            self.hits += 1;
            return ok;
        }
        if let Some(ok) = self.old.remove(&key) {
            self.hits += 1;
            self.insert(key, ok);
            return ok;
        }
        self.misses += 1;
        let ok = verify_hash(pk, msg, sig);
        self.insert(key, ok);
        ok
    }

    fn insert(&mut self, key: SigKey, ok: bool) {
        if self.young.len() >= self.capacity.div_ceil(2).max(1) {
            self.old = std::mem::take(&mut self.young);
        }
        self.young.insert(key, ok);
    }

    /// Checks answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checks that had to run a real verification.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.young.len() + self.old.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.young.is_empty() && self.old.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::KeyPair;
    use stellar_crypto::Hash256;

    fn msg(n: u8) -> Hash256 {
        Hash256([n; 32])
    }

    #[test]
    fn caches_positive_and_negative_outcomes() {
        let kp = KeyPair::from_seed(1);
        let good = kp.sign(msg(7).as_bytes());
        let bad = kp.sign(msg(8).as_bytes()); // valid for a different msg
        let mut c = SigVerifyCache::new(64);
        assert!(c.check(&msg(7), kp.public(), &good));
        assert!(!c.check(&msg(7), kp.public(), &bad));
        assert_eq!(c.hits(), 0);
        assert!(c.check(&msg(7), kp.public(), &good));
        assert!(!c.check(&msg(7), kp.public(), &bad));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn disabled_cache_still_verifies_correctly() {
        let kp = KeyPair::from_seed(2);
        let sig = kp.sign(msg(1).as_bytes());
        let mut c = SigVerifyCache::disabled();
        assert!(!c.is_enabled());
        assert!(c.check(&msg(1), kp.public(), &sig));
        assert!(c.check(&msg(1), kp.public(), &sig));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_bounded_and_hot_keys_survive_rotation() {
        let kp = KeyPair::from_seed(3);
        let hot = kp.sign(msg(0).as_bytes());
        let mut c = SigVerifyCache::new(32);
        for i in 0..1000u64 {
            // Re-touch the hot key between batches of one-shot fillers.
            assert!(c.check(&msg(0), kp.public(), &hot));
            let m = Hash256([i as u8; 32]);
            let filler = Signature {
                e: i % stellar_crypto::sign::Q,
                s: i % stellar_crypto::sign::Q,
            };
            c.check(&m, kp.public(), &filler);
        }
        assert!(c.len() <= 32 + 1, "len {} exceeds bound", c.len());
        // The hot key was touched every round: almost all of its checks hit.
        assert!(c.hits() > 900, "hits {}", c.hits());
    }

    #[test]
    fn distinct_signatures_over_same_message_do_not_collide() {
        let k1 = KeyPair::from_seed(4);
        let k2 = KeyPair::from_seed(5);
        let s1 = k1.sign(msg(9).as_bytes());
        let s2 = k2.sign(msg(9).as_bytes());
        let mut c = SigVerifyCache::new(16);
        assert!(c.check(&msg(9), k1.public(), &s1));
        assert!(c.check(&msg(9), k2.public(), &s2));
        // Cross-wiring key and signature must fail even with warm cache.
        assert!(!c.check(&msg(9), k1.public(), &s2));
        assert!(!c.check(&msg(9), k2.public(), &s1));
    }
}

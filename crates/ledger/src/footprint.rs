//! Static read/write footprints for transactions, and wave scheduling.
//!
//! The parallel apply path ([`crate::parallel`]) executes mutually
//! non-conflicting transactions concurrently. To decide which
//! transactions *might* conflict, each transaction's operations are
//! inspected and compiled into a **footprint**: the set of ledger keys it
//! may read and the set it may write. Footprints are a *scheduling
//! heuristic*, not a correctness contract — a transaction whose actual
//! reads escape its declared footprint is detected at runtime and re-run
//! sequentially (Block-STM-style: never wrong, only slower). Declaring
//! too much only costs parallelism; declaring too little only costs a
//! re-run.
//!
//! Footprint rules per operation type are documented in `DESIGN.md`
//! ("Parallel ledger apply"). The two data-dependent cases:
//!
//! * `ManageOffer` crossings touch the *makers* of resting offers. The
//!   extractor peeks at the current top of the book and declares resting
//!   offers' makers (accounts, trustlines, offer ids) until their depth
//!   covers the taker's amount — at most [`CROSS_PEEK`]. Deeper
//!   crossings escape and re-run.
//! * `PathPayment` hops cross arbitrary books with amounts that depend on
//!   earlier hops; its footprint (declared pairs + endpoints) is marked
//!   imprecise, and the transaction always takes the sequential fallback.

use crate::asset::Asset;
use crate::backend::LedgerBackend;
use crate::entry::AccountId;
use crate::tx::{Operation, TransactionEnvelope};
use std::collections::{BTreeSet, HashMap};

/// How many resting offers per book direction a `ManageOffer` footprint
/// pre-declares as potential fill counterparties.
pub const CROSS_PEEK: usize = 48;

/// One schedulable ledger key. `Book` is a *normalized* (unordered) asset
/// pair covering both directions of an order book: any crossing or
/// resting on either side of the pair conflicts through it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FpKey {
    /// An account entry.
    Account(AccountId),
    /// A trustline entry.
    TrustLine(AccountId, Asset),
    /// An offer entry by id.
    Offer(u64),
    /// An account-data entry.
    Data(AccountId, String),
    /// A whole order-book pair, normalized so that the first asset is
    /// `<=` the second.
    Book(Asset, Asset),
}

/// Builds the normalized book key for a (selling, buying) pair.
pub fn book_pair(a: &Asset, b: &Asset) -> FpKey {
    if a <= b {
        FpKey::Book(a.clone(), b.clone())
    } else {
        FpKey::Book(b.clone(), a.clone())
    }
}

/// A transaction's declared footprint.
#[derive(Clone, Debug, Default)]
pub struct Footprint {
    /// Keys the transaction may read.
    pub reads: BTreeSet<FpKey>,
    /// Keys the transaction may write. Every write is also treated as a
    /// read for scheduling (read-modify-write is the common case).
    pub writes: BTreeSet<FpKey>,
    /// `false` when the true access set is data-dependent beyond what
    /// static inspection can bound (path payments): such transactions
    /// always take the sequential fallback at commit time.
    pub precise: bool,
}

impl Footprint {
    fn read(&mut self, k: FpKey) {
        self.reads.insert(k);
    }

    /// Declares a read-modify-write key.
    fn rw(&mut self, k: FpKey) {
        self.reads.insert(k.clone());
        self.writes.insert(k);
    }

    /// Whether `key` is covered by this footprint (reads or writes).
    pub fn covers(&self, key: &FpKey) -> bool {
        self.reads.contains(key) || self.writes.contains(key)
    }

    /// Whether two footprints conflict: a write in one overlapping a read
    /// or write in the other.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        overlap(&self.writes, &other.reads)
            || overlap(&self.writes, &other.writes)
            || overlap(&self.reads, &other.writes)
    }
}

fn overlap(a: &BTreeSet<FpKey>, b: &BTreeSet<FpKey>) -> bool {
    // Iterate the smaller set, probe the larger.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|k| large.contains(k))
}

/// Declares both endpoints of a value transfer of `asset` touching
/// `account`: the account itself plus, for issued assets, the trustline.
fn asset_access(fp: &mut Footprint, account: AccountId, asset: &Asset) {
    fp.rw(FpKey::Account(account));
    if let Asset::Issued { .. } = asset {
        fp.rw(FpKey::TrustLine(account, asset.clone()));
    }
}

/// Extra offers declared past the depth that already covers the taker's
/// amount, absorbing rounding and partial-fill boundary reads.
const CROSS_SLACK: usize = 4;

/// Declares the makers currently resting on the `(selling, buying)` book
/// a crossing may fill against: their offers, accounts, and trustlines.
/// The peek runs against the *pre-close* state; offers placed earlier in
/// the same close are caught by escape detection instead.
fn declare_makers(
    fp: &mut Footprint,
    base: &dyn LedgerBackend,
    selling: &Asset,
    buying: &Asset,
    amount: i64,
) {
    // A taker selling `selling` crosses offers that sell `buying`. The
    // peek is amount-bounded: makers are declared until the resting
    // depth covers the taker's amount, plus [`CROSS_SLACK`] more, capped
    // at [`CROSS_PEEK`]. Under-declaration is always safe — a sweep past
    // the declared depth escapes and re-runs sequentially.
    let mut absorbed: i128 = 0;
    let mut slack = 0usize;
    for (_, id) in base.book_page(buying, selling, None, CROSS_PEEK) {
        let Some(offer) = base.offer(id) else {
            continue;
        };
        if absorbed >= amount as i128 {
            slack += 1;
            if slack > CROSS_SLACK {
                break;
            }
        }
        // The resting offer sells `buying` at `price` units of the
        // taker's `selling` per unit sold: it absorbs roughly
        // amount × n / d of the taker's amount (rounded down, so the
        // estimate errs toward declaring one offer more).
        absorbed += offer.amount as i128 * offer.price.n as i128 / offer.price.d.max(1) as i128;
        fp.rw(FpKey::Offer(id));
        asset_access(fp, offer.account, selling);
        asset_access(fp, offer.account, buying);
    }
}

/// Compiles one transaction's footprint. `base` is the pre-close store
/// state, used only for the book peek (`ManageOffer` maker declaration).
pub fn tx_footprint(base: &dyn LedgerBackend, env: &TransactionEnvelope) -> Footprint {
    let mut fp = Footprint {
        precise: true,
        ..Footprint::default()
    };
    let tx = &env.tx;
    // Fee + sequence consumption writes the source; signature checking
    // reads every signing account.
    fp.rw(FpKey::Account(tx.source));
    for id in tx.signing_accounts() {
        fp.read(FpKey::Account(id));
    }
    for so in &tx.operations {
        let source = so.source.unwrap_or(tx.source);
        fp.read(FpKey::Account(source)); // op-source existence check
        match &so.op {
            Operation::CreateAccount { destination, .. }
            | Operation::AccountMerge { destination } => {
                fp.rw(FpKey::Account(source));
                fp.rw(FpKey::Account(*destination));
            }
            Operation::SetOptions { .. } | Operation::BumpSequence { .. } => {
                fp.rw(FpKey::Account(source));
            }
            Operation::Payment {
                destination, asset, ..
            } => {
                asset_access(&mut fp, source, asset);
                asset_access(&mut fp, *destination, asset);
            }
            Operation::PathPayment {
                send_asset,
                destination,
                dest_asset,
                path,
                ..
            } => {
                asset_access(&mut fp, source, send_asset);
                asset_access(&mut fp, *destination, dest_asset);
                // Conservative: every hop's book, both directions. The
                // makers filled along the way are unknowable statically.
                let mut chain: Vec<&Asset> = Vec::with_capacity(path.len() + 2);
                chain.push(send_asset);
                chain.extend(path.iter());
                chain.push(dest_asset);
                chain.dedup();
                for pair in chain.windows(2) {
                    fp.rw(book_pair(pair[0], pair[1]));
                }
                fp.precise = false;
            }
            Operation::ManageOffer {
                offer_id,
                selling,
                buying,
                amount,
                ..
            } => {
                asset_access(&mut fp, source, selling);
                asset_access(&mut fp, source, buying);
                fp.rw(book_pair(selling, buying));
                if *offer_id != 0 {
                    fp.rw(FpKey::Offer(*offer_id));
                }
                if *amount > 0 {
                    declare_makers(&mut fp, base, selling, buying, *amount);
                }
            }
            Operation::ManageData { name, .. } => {
                fp.rw(FpKey::Account(source));
                fp.rw(FpKey::Data(source, name.clone()));
            }
            Operation::ChangeTrust { asset, .. } => {
                fp.rw(FpKey::Account(source));
                fp.rw(FpKey::TrustLine(source, asset.clone()));
                if let Asset::Issued { issuer, .. } = asset {
                    fp.read(FpKey::Account(*issuer));
                }
            }
            Operation::AllowTrust {
                trustor,
                asset_code,
                ..
            } => {
                fp.read(FpKey::Account(source));
                let asset = Asset::issued(source, asset_code.as_str());
                fp.rw(FpKey::TrustLine(*trustor, asset));
            }
        }
    }
    fp
}

/// Greedy list scheduling of the transaction set into **waves** of
/// mutually non-conflicting transactions, preserving canonical order for
/// every conflicting pair: a transaction lands in the first wave after
/// the last wave that wrote any key it reads (or read/wrote any key it
/// writes). Returns wave → ascending transaction indices; every index
/// appears exactly once.
pub fn schedule_waves(footprints: &[Footprint]) -> Vec<Vec<usize>> {
    let mut last_read: HashMap<&FpKey, usize> = HashMap::new();
    let mut last_write: HashMap<&FpKey, usize> = HashMap::new();
    let mut waves: Vec<Vec<usize>> = Vec::new();
    for (i, fp) in footprints.iter().enumerate() {
        let mut wave = 0usize;
        for k in &fp.reads {
            if let Some(&w) = last_write.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in &fp.writes {
            if let Some(&w) = last_write.get(k) {
                wave = wave.max(w + 1);
            }
            if let Some(&w) = last_read.get(k) {
                wave = wave.max(w + 1);
            }
        }
        if wave == waves.len() {
            waves.push(Vec::new());
        }
        waves[wave].push(i);
        for k in &fp.reads {
            let e = last_read.entry(k).or_insert(wave);
            *e = (*e).max(wave);
        }
        for k in &fp.writes {
            let e = last_write.entry(k).or_insert(wave);
            *e = (*e).max(wave);
        }
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::{xlm, BASE_FEE};
    use crate::backend::MemBackend;
    use crate::tx::{Memo, SourcedOperation, Transaction};
    use stellar_crypto::sign::KeyPair;

    fn acct(n: u64) -> AccountId {
        AccountId(KeyPair::from_seed(n).public())
    }

    fn pay_env(from: u64, to: u64) -> TransactionEnvelope {
        let k = KeyPair::from_seed(from);
        TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(to),
                        asset: Asset::Native,
                        amount: xlm(1),
                    },
                }],
            },
            &[&k],
        )
    }

    #[test]
    fn disjoint_payments_share_a_wave() {
        let base = MemBackend::new();
        let fps: Vec<Footprint> = [pay_env(1, 2), pay_env(3, 4), pay_env(5, 6)]
            .iter()
            .map(|e| tx_footprint(&base, e))
            .collect();
        assert!(!fps[0].conflicts(&fps[1]));
        let waves = schedule_waves(&fps);
        assert_eq!(waves, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn chained_payments_serialize() {
        let base = MemBackend::new();
        // 1→2, 2→3 conflict on account 2; 4→5 is independent.
        let fps: Vec<Footprint> = [pay_env(1, 2), pay_env(2, 3), pay_env(4, 5)]
            .iter()
            .map(|e| tx_footprint(&base, e))
            .collect();
        assert!(fps[0].conflicts(&fps[1]));
        let waves = schedule_waves(&fps);
        assert_eq!(waves, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn same_book_offers_serialize() {
        let base = MemBackend::new();
        let usd = Asset::issued(acct(9), "USD");
        let offer = |n: u64, selling: Asset, buying: Asset| {
            let k = KeyPair::from_seed(n);
            TransactionEnvelope::sign(
                Transaction {
                    source: acct(n),
                    seq_num: 1,
                    fee: BASE_FEE,
                    time_bounds: None,
                    memo: Memo::None,
                    operations: vec![SourcedOperation {
                        source: None,
                        op: Operation::ManageOffer {
                            offer_id: 0,
                            selling,
                            buying,
                            amount: 10,
                            price: crate::amount::Price::new(1, 1),
                            passive: false,
                        },
                    }],
                },
                &[&k],
            )
        };
        // Opposite directions of the same pair still conflict (normalized
        // book key); a different pair does not.
        let eur = Asset::issued(acct(9), "EUR");
        let envs = [
            offer(1, Asset::Native, usd.clone()),
            offer(2, usd.clone(), Asset::Native),
            offer(3, Asset::Native, eur.clone()),
        ];
        let fps: Vec<Footprint> = envs.iter().map(|e| tx_footprint(&base, e)).collect();
        assert!(fps[0].conflicts(&fps[1]));
        assert!(!fps[0].conflicts(&fps[2]));
        let waves = schedule_waves(&fps);
        assert_eq!(waves, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn path_payment_is_imprecise() {
        let base = MemBackend::new();
        let k = KeyPair::from_seed(1);
        let usd = Asset::issued(acct(9), "USD");
        let env = TransactionEnvelope::sign(
            Transaction {
                source: acct(1),
                seq_num: 1,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::PathPayment {
                        send_asset: Asset::Native,
                        send_max: xlm(10),
                        destination: acct(2),
                        dest_asset: usd.clone(),
                        dest_amount: 5,
                        path: vec![],
                    },
                }],
            },
            &[&k],
        );
        let fp = tx_footprint(&base, &env);
        assert!(!fp.precise);
        assert!(fp.covers(&book_pair(&Asset::Native, &usd)));
    }
}

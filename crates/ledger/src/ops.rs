//! Operation execution (Fig. 4 semantics).
//!
//! Each function mutates a per-transaction [`LedgerDelta`]; the caller
//! (transaction apply in [`crate::apply`]) discards the delta wholesale if
//! any operation fails, which is what makes multi-operation transactions
//! atomic (§5.2).

use crate::amount::Price;
use crate::asset::{Asset, AssetCode};
use crate::entry::{AccountEntry, AccountId, DataEntry, TrustLineEntry};
use crate::orderbook::{self, Fill, TradeCaps};
use crate::store::LedgerDelta;
use crate::tx::{OpError, OpResult, Operation};

/// Ledger-wide parameters needed during execution.
#[derive(Clone, Copy, Debug)]
pub struct ExecEnv {
    /// Per-entry base reserve in stroops (§5.1).
    pub base_reserve: i64,
    /// The close time of the ledger being built.
    pub close_time: u64,
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv {
            base_reserve: crate::amount::BASE_RESERVE,
            close_time: 0,
        }
    }
}

/// Credits `amount` of `asset` to `account`.
///
/// Issued assets credited to their issuer are burned (the issuer's own
/// balance is not tracked); anyone else needs an authorized trustline with
/// headroom.
pub fn credit(
    delta: &mut LedgerDelta<'_>,
    account: AccountId,
    asset: &Asset,
    amount: i64,
) -> OpResult {
    if amount < 0 {
        return Err(OpError::Malformed);
    }
    match asset {
        Asset::Native => {
            let mut a = delta.account(account).ok_or(OpError::NoDestination)?;
            a.balance = a.balance.checked_add(amount).ok_or(OpError::LineFull)?;
            delta.put_account(a);
            Ok(())
        }
        Asset::Issued { issuer, .. } => {
            if *issuer == account {
                // Redeeming with the issuer burns the tokens.
                return if delta.account(account).is_some() {
                    Ok(())
                } else {
                    Err(OpError::NoDestination)
                };
            }
            let mut tl = delta
                .trustline(account, asset)
                .ok_or(OpError::NoTrustLine)?;
            if !tl.authorized {
                return Err(OpError::NotAuthorized);
            }
            if tl.headroom() < amount {
                return Err(OpError::LineFull);
            }
            tl.balance += amount;
            delta.put_trustline(tl);
            Ok(())
        }
    }
}

/// Debits `amount` of `asset` from `account`.
///
/// Native debits respect the reserve; issued-asset debits from the issuer
/// mint new tokens.
pub fn debit(
    delta: &mut LedgerDelta<'_>,
    account: AccountId,
    asset: &Asset,
    amount: i64,
    base_reserve: i64,
) -> OpResult {
    if amount < 0 {
        return Err(OpError::Malformed);
    }
    match asset {
        Asset::Native => {
            let mut a = delta.account(account).ok_or(OpError::NoDestination)?;
            if a.available(base_reserve) < amount {
                return Err(OpError::Underfunded);
            }
            a.balance -= amount;
            delta.put_account(a);
            Ok(())
        }
        Asset::Issued { issuer, .. } => {
            if *issuer == account {
                // The issuer mints on demand.
                return if delta.account(account).is_some() {
                    Ok(())
                } else {
                    Err(OpError::NoDestination)
                };
            }
            let mut tl = delta
                .trustline(account, asset)
                .ok_or(OpError::NoTrustLine)?;
            if !tl.authorized {
                return Err(OpError::NotAuthorized);
            }
            if tl.balance < amount {
                return Err(OpError::Underfunded);
            }
            tl.balance -= amount;
            delta.put_trustline(tl);
            Ok(())
        }
    }
}

/// Moves balances for a batch of order-book fills: the taker sold
/// `selling` and bought `buying` from each maker.
pub fn settle_fills(
    delta: &mut LedgerDelta<'_>,
    taker: AccountId,
    selling: &Asset,
    buying: &Asset,
    fills: &[Fill],
    base_reserve: i64,
) -> OpResult {
    for f in fills {
        debit(delta, taker, selling, f.taker_sold, base_reserve)?;
        credit(delta, f.maker, selling, f.taker_sold)?;
        debit(delta, f.maker, buying, f.taker_bought, base_reserve)?;
        credit(delta, taker, buying, f.taker_bought)?;
    }
    Ok(())
}

/// How much of `asset` `account` could deliver right now.
fn deliverable(
    delta: &LedgerDelta<'_>,
    account: AccountId,
    asset: &Asset,
    base_reserve: i64,
) -> i64 {
    match asset {
        Asset::Native => delta
            .account(account)
            .map_or(0, |a| a.available(base_reserve).max(0)),
        Asset::Issued { issuer, .. } if *issuer == account => i64::MAX / 4,
        Asset::Issued { .. } => delta
            .trustline(account, asset)
            .filter(|t| t.authorized)
            .map_or(0, |t| t.balance),
    }
}

/// How much of `asset` `account` could receive right now.
fn receivable(delta: &LedgerDelta<'_>, account: AccountId, asset: &Asset) -> i64 {
    match asset {
        Asset::Native => i64::MAX / 4,
        Asset::Issued { issuer, .. } if *issuer == account => i64::MAX / 4,
        Asset::Issued { .. } => delta
            .trustline(account, asset)
            .filter(|t| t.authorized)
            .map_or(0, |t| t.headroom().max(0)),
    }
}

/// Applies one operation for `source`.
pub fn apply_operation(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    op: &Operation,
    env: &ExecEnv,
) -> OpResult {
    match op {
        Operation::CreateAccount {
            destination,
            starting_balance,
        } => apply_create_account(delta, source, *destination, *starting_balance, env),
        Operation::AccountMerge { destination } => apply_account_merge(delta, source, *destination),
        Operation::SetOptions {
            auth_required,
            auth_revocable,
            master_weight,
            low_threshold,
            medium_threshold,
            high_threshold,
            signer,
        } => apply_set_options(
            delta,
            source,
            *auth_required,
            *auth_revocable,
            *master_weight,
            *low_threshold,
            *medium_threshold,
            *high_threshold,
            *signer,
            env,
        ),
        Operation::Payment {
            destination,
            asset,
            amount,
        } => {
            if *amount <= 0 {
                return Err(OpError::Malformed);
            }
            if delta.account(*destination).is_none() {
                return Err(OpError::NoDestination);
            }
            debit(delta, source, asset, *amount, env.base_reserve)?;
            credit(delta, *destination, asset, *amount)
        }
        Operation::PathPayment {
            send_asset,
            send_max,
            destination,
            dest_asset,
            dest_amount,
            path,
        } => crate::pathfind::apply_path_payment(
            delta,
            source,
            send_asset,
            *send_max,
            *destination,
            dest_asset,
            *dest_amount,
            path,
            env,
        ),
        Operation::ManageOffer {
            offer_id,
            selling,
            buying,
            amount,
            price,
            passive,
        } => apply_manage_offer(
            delta, source, *offer_id, selling, buying, *amount, *price, *passive, env,
        ),
        Operation::ManageData { name, value } => apply_manage_data(delta, source, name, value, env),
        Operation::ChangeTrust { asset, limit } => {
            apply_change_trust(delta, source, asset, *limit, env)
        }
        Operation::AllowTrust {
            trustor,
            asset_code,
            authorize,
        } => apply_allow_trust(delta, source, *trustor, asset_code, *authorize),
        Operation::BumpSequence { bump_to } => {
            let mut a = delta.account(source).ok_or(OpError::NoDestination)?;
            if *bump_to > a.seq_num {
                a.seq_num = *bump_to;
                delta.put_account(a);
            }
            Ok(())
        }
    }
}

fn apply_create_account(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    destination: AccountId,
    starting_balance: i64,
    env: &ExecEnv,
) -> OpResult {
    if delta.account(destination).is_some() {
        return Err(OpError::AccountExists);
    }
    if starting_balance < 2 * env.base_reserve {
        return Err(OpError::BelowReserve);
    }
    debit(
        delta,
        source,
        &Asset::Native,
        starting_balance,
        env.base_reserve,
    )?;
    delta.put_account(AccountEntry::new(destination, starting_balance));
    Ok(())
}

fn apply_account_merge(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    destination: AccountId,
) -> OpResult {
    if source == destination {
        return Err(OpError::Malformed);
    }
    let src = delta.account(source).ok_or(OpError::NoDestination)?;
    if src.num_subentries > 0 {
        return Err(OpError::HasSubEntries);
    }
    let mut dst = delta.account(destination).ok_or(OpError::NoDestination)?;
    dst.balance = dst
        .balance
        .checked_add(src.balance)
        .ok_or(OpError::LineFull)?;
    delta.put_account(dst);
    delta.delete_account(source);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_set_options(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    auth_required: Option<bool>,
    auth_revocable: Option<bool>,
    master_weight: Option<u8>,
    low: Option<u8>,
    medium: Option<u8>,
    high: Option<u8>,
    signer: Option<crate::entry::Signer>,
    env: &ExecEnv,
) -> OpResult {
    let mut a = delta.account(source).ok_or(OpError::NoDestination)?;
    if (auth_required.is_some() || auth_revocable.is_some()) && a.flags.auth_immutable {
        return Err(OpError::Malformed);
    }
    if let Some(v) = auth_required {
        a.flags.auth_required = v;
    }
    if let Some(v) = auth_revocable {
        a.flags.auth_revocable = v;
    }
    if let Some(v) = master_weight {
        a.thresholds.master_weight = v;
    }
    if let Some(v) = low {
        a.thresholds.low = v;
    }
    if let Some(v) = medium {
        a.thresholds.medium = v;
    }
    if let Some(v) = high {
        a.thresholds.high = v;
    }
    if let Some(s) = signer {
        if s.key == crate::entry::SignerKey::Key(a.id.0) {
            return Err(OpError::Malformed); // master key is not a signer
        }
        let existing = a.signers.iter().position(|x| x.key == s.key);
        match (existing, s.weight) {
            (Some(i), 0) => {
                a.signers.remove(i);
                a.num_subentries = a.num_subentries.saturating_sub(1);
            }
            (Some(i), _) => a.signers[i].weight = s.weight,
            (None, 0) => {}
            (None, _) => {
                // New subentry must be covered by the reserve.
                if a.available(env.base_reserve) < env.base_reserve {
                    return Err(OpError::BelowReserve);
                }
                a.signers.push(s);
                a.num_subentries += 1;
            }
        }
    }
    delta.put_account(a);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_manage_offer(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    offer_id: u64,
    selling: &Asset,
    buying: &Asset,
    amount: i64,
    price: Price,
    passive: bool,
    env: &ExecEnv,
) -> OpResult {
    if selling == buying || amount < 0 {
        return Err(OpError::Malformed);
    }
    // Updating or deleting an existing offer: remove it first.
    if offer_id != 0 {
        let existing = delta.offer(offer_id).ok_or(OpError::NoOffer)?;
        if existing.account != source {
            return Err(OpError::NoOffer);
        }
        delta.delete_offer(offer_id);
        let mut a = delta.account(source).ok_or(OpError::NoDestination)?;
        a.num_subentries = a.num_subentries.saturating_sub(1);
        delta.put_account(a);
        if amount == 0 {
            return Ok(()); // pure deletion
        }
    } else if amount == 0 {
        return Err(OpError::Malformed);
    }

    // The taker can spend at most its deliverable balance and receive at
    // most its trustline headroom.
    let max_sell = deliverable(delta, source, selling, env.base_reserve).min(amount);
    if max_sell < amount {
        return Err(OpError::Underfunded);
    }
    let max_buy = receivable(delta, source, buying);
    if max_buy <= 0 && !matches!(buying, Asset::Native) {
        // Need an authorized trustline (or be the issuer) for proceeds.
        return Err(OpError::NoTrustLine);
    }

    // Cross the book first (marketable portion trades immediately).
    let res = orderbook::cross(
        delta,
        source,
        selling,
        buying,
        &price,
        TradeCaps { max_sell, max_buy },
        passive,
    );
    settle_fills(delta, source, selling, buying, &res.fills, env.base_reserve)?;

    // Rest the remainder on the book (reserve must cover the new entry;
    // `make_offer` accounts the subentry).
    let remainder = amount - res.sold;
    if remainder > 0 {
        let a = delta.account(source).ok_or(OpError::NoDestination)?;
        if a.available(env.base_reserve) < env.base_reserve {
            return Err(OpError::BelowReserve);
        }
        let mut offer = orderbook::make_offer(
            delta,
            source,
            selling.clone(),
            buying.clone(),
            remainder,
            price,
            passive,
        );
        // Preserve the original id on update.
        if offer_id != 0 {
            delta.delete_offer(offer.id);
            offer.id = offer_id;
            delta.put_offer(offer);
        }
    }
    Ok(())
}

fn apply_manage_data(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    name: &str,
    value: &Option<Vec<u8>>,
    env: &ExecEnv,
) -> OpResult {
    if name.is_empty() || name.len() > 64 {
        return Err(OpError::Malformed);
    }
    let mut a = delta.account(source).ok_or(OpError::NoDestination)?;
    let existing = delta.data(source, name);
    match (existing, value) {
        (None, None) => Err(OpError::Malformed),
        (Some(_), None) => {
            delta.delete_data(source, name);
            a.num_subentries = a.num_subentries.saturating_sub(1);
            delta.put_account(a);
            Ok(())
        }
        (None, Some(v)) => {
            if v.len() > 64 {
                return Err(OpError::Malformed);
            }
            if a.available(env.base_reserve) < env.base_reserve {
                return Err(OpError::BelowReserve);
            }
            a.num_subentries += 1;
            delta.put_account(a);
            delta.put_data(DataEntry {
                account: source,
                name: name.to_string(),
                value: v.clone(),
            });
            Ok(())
        }
        (Some(_), Some(v)) => {
            if v.len() > 64 {
                return Err(OpError::Malformed);
            }
            delta.put_data(DataEntry {
                account: source,
                name: name.to_string(),
                value: v.clone(),
            });
            Ok(())
        }
    }
}

fn apply_change_trust(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    asset: &Asset,
    limit: i64,
    env: &ExecEnv,
) -> OpResult {
    let issuer = match asset {
        Asset::Native => return Err(OpError::Malformed),
        Asset::Issued { issuer, .. } => *issuer,
    };
    if issuer == source || limit < 0 {
        return Err(OpError::Malformed);
    }
    let issuer_acct = delta.account(issuer).ok_or(OpError::NoDestination)?;
    match delta.trustline(source, asset) {
        Some(mut tl) => {
            if limit == 0 {
                if tl.balance != 0 {
                    return Err(OpError::TrustLineInUse);
                }
                delta.delete_trustline(source, asset);
                let mut a = delta.account(source).ok_or(OpError::NoDestination)?;
                a.num_subentries = a.num_subentries.saturating_sub(1);
                delta.put_account(a);
            } else {
                if limit < tl.balance {
                    return Err(OpError::TrustLineInUse);
                }
                tl.limit = limit;
                delta.put_trustline(tl);
            }
            Ok(())
        }
        None => {
            if limit == 0 {
                return Err(OpError::Malformed);
            }
            let mut a = delta.account(source).ok_or(OpError::NoDestination)?;
            if a.available(env.base_reserve) < env.base_reserve {
                return Err(OpError::BelowReserve);
            }
            a.num_subentries += 1;
            delta.put_account(a);
            delta.put_trustline(TrustLineEntry {
                account: source,
                asset: asset.clone(),
                balance: 0,
                limit,
                // KYC: issuers with auth_required start lines unauthorized.
                authorized: !issuer_acct.flags.auth_required,
            });
            Ok(())
        }
    }
}

fn apply_allow_trust(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    trustor: AccountId,
    asset_code: &str,
    authorize: bool,
) -> OpResult {
    let issuer_acct = delta.account(source).ok_or(OpError::NoDestination)?;
    let asset = Asset::Issued {
        issuer: source,
        code: AssetCode::new(asset_code),
    };
    let mut tl = delta
        .trustline(trustor, &asset)
        .ok_or(OpError::NoTrustLine)?;
    if !authorize && !issuer_acct.flags.auth_revocable {
        return Err(OpError::NotIssuer);
    }
    tl.authorized = authorize;
    delta.put_trustline(tl);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::{xlm, BASE_RESERVE};
    use crate::store::LedgerStore;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    fn env() -> ExecEnv {
        ExecEnv::default()
    }

    fn funded_store(ids: &[u64]) -> LedgerStore {
        let mut s = LedgerStore::new();
        for &i in ids {
            s.put_account(AccountEntry::new(acct(i), xlm(1000)));
        }
        s
    }

    #[test]
    fn native_payment_moves_balance() {
        let store = funded_store(&[1, 2]);
        let mut d = store.begin();
        let op = Operation::Payment {
            destination: acct(2),
            asset: Asset::Native,
            amount: xlm(10),
        };
        apply_operation(&mut d, acct(1), &op, &env()).unwrap();
        assert_eq!(d.account(acct(1)).unwrap().balance, xlm(990));
        assert_eq!(d.account(acct(2)).unwrap().balance, xlm(1010));
    }

    #[test]
    fn payment_respects_reserve() {
        let store = funded_store(&[1, 2]);
        let mut d = store.begin();
        let op = Operation::Payment {
            destination: acct(2),
            asset: Asset::Native,
            amount: xlm(1000),
        };
        assert_eq!(
            apply_operation(&mut d, acct(1), &op, &env()),
            Err(OpError::Underfunded)
        );
        // Leaving exactly the reserve is fine.
        let ok = Operation::Payment {
            destination: acct(2),
            asset: Asset::Native,
            amount: xlm(1000) - 2 * BASE_RESERVE,
        };
        apply_operation(&mut d, acct(1), &ok, &env()).unwrap();
    }

    #[test]
    fn issued_payment_needs_trustline_and_auth() {
        let store = funded_store(&[1, 2, 9]);
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        // Receiver has no trustline.
        let pay = Operation::Payment {
            destination: acct(2),
            asset: usd.clone(),
            amount: 10,
        };
        assert_eq!(
            apply_operation(&mut d, acct(9), &pay, &env()),
            Err(OpError::NoTrustLine)
        );
        // Open a trustline, then the issuer can mint to it.
        let trust = Operation::ChangeTrust {
            asset: usd.clone(),
            limit: 100,
        };
        apply_operation(&mut d, acct(2), &trust, &env()).unwrap();
        apply_operation(&mut d, acct(9), &pay, &env()).unwrap();
        assert_eq!(d.trustline(acct(2), &usd).unwrap().balance, 10);
        // Over the limit fails.
        let big = Operation::Payment {
            destination: acct(2),
            asset: usd.clone(),
            amount: 95,
        };
        assert_eq!(
            apply_operation(&mut d, acct(9), &big, &env()),
            Err(OpError::LineFull)
        );
    }

    #[test]
    fn kyc_auth_required_flow() {
        let store = funded_store(&[1, 2, 9]);
        let mut d = store.begin();
        // Issuer requires authorization (KYC).
        let setopt = Operation::SetOptions {
            auth_required: Some(true),
            auth_revocable: Some(true),
            master_weight: None,
            low_threshold: None,
            medium_threshold: None,
            high_threshold: None,
            signer: None,
        };
        apply_operation(&mut d, acct(9), &setopt, &env()).unwrap();
        let usd = Asset::issued(acct(9), "USD");
        apply_operation(
            &mut d,
            acct(2),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 100,
            },
            &env(),
        )
        .unwrap();
        // Unauthorized line cannot receive.
        let pay = Operation::Payment {
            destination: acct(2),
            asset: usd.clone(),
            amount: 10,
        };
        assert_eq!(
            apply_operation(&mut d, acct(9), &pay, &env()),
            Err(OpError::NotAuthorized)
        );
        // Issuer authorizes (photo ID checked!), then payment flows.
        let allow = Operation::AllowTrust {
            trustor: acct(2),
            asset_code: "USD".into(),
            authorize: true,
        };
        apply_operation(&mut d, acct(9), &allow, &env()).unwrap();
        apply_operation(&mut d, acct(9), &pay, &env()).unwrap();
        // And can revoke (auth_revocable set).
        let revoke = Operation::AllowTrust {
            trustor: acct(2),
            asset_code: "USD".into(),
            authorize: false,
        };
        apply_operation(&mut d, acct(9), &revoke, &env()).unwrap();
        assert!(!d.trustline(acct(2), &usd).unwrap().authorized);
    }

    #[test]
    fn create_account_and_merge_roundtrip() {
        let store = funded_store(&[1, 2]);
        let mut d = store.begin();
        let create = Operation::CreateAccount {
            destination: acct(3),
            starting_balance: xlm(5),
        };
        apply_operation(&mut d, acct(1), &create, &env()).unwrap();
        assert_eq!(d.account(acct(3)).unwrap().balance, xlm(5));
        assert_eq!(d.account(acct(1)).unwrap().balance, xlm(995));
        // "it is possible to reclaim the entire value of an account by
        // deleting it with an AccountMerge operation." (§5.1)
        let merge = Operation::AccountMerge {
            destination: acct(2),
        };
        apply_operation(&mut d, acct(3), &merge, &env()).unwrap();
        assert!(d.account(acct(3)).is_none());
        assert_eq!(d.account(acct(2)).unwrap().balance, xlm(1005));
    }

    #[test]
    fn create_account_rejects_duplicates_and_dust() {
        let store = funded_store(&[1, 2]);
        let mut d = store.begin();
        let dup = Operation::CreateAccount {
            destination: acct(2),
            starting_balance: xlm(5),
        };
        assert_eq!(
            apply_operation(&mut d, acct(1), &dup, &env()),
            Err(OpError::AccountExists)
        );
        let dust = Operation::CreateAccount {
            destination: acct(3),
            starting_balance: BASE_RESERVE,
        };
        assert_eq!(
            apply_operation(&mut d, acct(1), &dust, &env()),
            Err(OpError::BelowReserve)
        );
    }

    #[test]
    fn merge_with_subentries_fails() {
        let store = funded_store(&[1, 9]);
        let mut d = store.begin();
        let usd = Asset::issued(acct(9), "USD");
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ChangeTrust {
                asset: usd,
                limit: 10,
            },
            &env(),
        )
        .unwrap();
        let merge = Operation::AccountMerge {
            destination: acct(9),
        };
        assert_eq!(
            apply_operation(&mut d, acct(1), &merge, &env()),
            Err(OpError::HasSubEntries)
        );
    }

    #[test]
    fn manage_data_lifecycle() {
        let store = funded_store(&[1]);
        let mut d = store.begin();
        let put = Operation::ManageData {
            name: "k".into(),
            value: Some(vec![1, 2]),
        };
        apply_operation(&mut d, acct(1), &put, &env()).unwrap();
        assert_eq!(d.data(acct(1), "k").unwrap().value, vec![1, 2]);
        assert_eq!(d.account(acct(1)).unwrap().num_subentries, 1);
        let update = Operation::ManageData {
            name: "k".into(),
            value: Some(vec![3]),
        };
        apply_operation(&mut d, acct(1), &update, &env()).unwrap();
        assert_eq!(d.account(acct(1)).unwrap().num_subentries, 1);
        let del = Operation::ManageData {
            name: "k".into(),
            value: None,
        };
        apply_operation(&mut d, acct(1), &del, &env()).unwrap();
        assert!(d.data(acct(1), "k").is_none());
        assert_eq!(d.account(acct(1)).unwrap().num_subentries, 0);
        // Deleting a missing entry is malformed.
        assert_eq!(
            apply_operation(&mut d, acct(1), &del, &env()),
            Err(OpError::Malformed)
        );
    }

    #[test]
    fn change_trust_lifecycle() {
        let store = funded_store(&[1, 9]);
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 50,
            },
            &env(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(9),
            &Operation::Payment {
                destination: acct(1),
                asset: usd.clone(),
                amount: 20,
            },
            &env(),
        )
        .unwrap();
        // Cannot drop the limit below the balance or delete while in use.
        assert_eq!(
            apply_operation(
                &mut d,
                acct(1),
                &Operation::ChangeTrust {
                    asset: usd.clone(),
                    limit: 10
                },
                &env()
            ),
            Err(OpError::TrustLineInUse)
        );
        assert_eq!(
            apply_operation(
                &mut d,
                acct(1),
                &Operation::ChangeTrust {
                    asset: usd.clone(),
                    limit: 0
                },
                &env()
            ),
            Err(OpError::TrustLineInUse)
        );
        // Send it back, then delete.
        apply_operation(
            &mut d,
            acct(1),
            &Operation::Payment {
                destination: acct(9),
                asset: usd.clone(),
                amount: 20,
            },
            &env(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 0,
            },
            &env(),
        )
        .unwrap();
        assert!(d.trustline(acct(1), &usd).is_none());
    }

    #[test]
    fn manage_offer_rests_and_fills() {
        let store = funded_store(&[1, 2, 9]);
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        // Account 1 holds USD and offers it for XLM.
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: xlm(100),
            },
            &env(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(9),
            &Operation::Payment {
                destination: acct(1),
                asset: usd.clone(),
                amount: 100,
            },
            &env(),
        )
        .unwrap();
        let sell = Operation::ManageOffer {
            offer_id: 0,
            selling: usd.clone(),
            buying: Asset::Native,
            amount: 100,
            price: Price::new(2, 1),
            passive: false,
        };
        apply_operation(&mut d, acct(1), &sell, &env()).unwrap();
        assert_eq!(d.offers_for_pair(&usd, &Asset::Native).len(), 1);

        // Account 2 buys USD by selling XLM; needs a trustline first.
        apply_operation(
            &mut d,
            acct(2),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: xlm(100),
            },
            &env(),
        )
        .unwrap();
        let buy = Operation::ManageOffer {
            offer_id: 0,
            selling: Asset::Native,
            buying: usd.clone(),
            amount: 100,
            price: Price::new(1, 2),
            passive: false,
        };
        apply_operation(&mut d, acct(2), &buy, &env()).unwrap();
        // 100 XLM bought 50 USD at 2 XLM/USD.
        assert_eq!(d.trustline(acct(2), &usd).unwrap().balance, 50);
        assert_eq!(d.trustline(acct(1), &usd).unwrap().balance, 50);
        assert_eq!(d.account(acct(2)).unwrap().balance, xlm(1000) - 100);
        assert_eq!(d.account(acct(1)).unwrap().balance, xlm(1000) + 100);
    }

    #[test]
    fn manage_offer_update_and_delete() {
        let store = funded_store(&[1, 9]);
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 1000,
            },
            &env(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(9),
            &Operation::Payment {
                destination: acct(1),
                asset: usd.clone(),
                amount: 500,
            },
            &env(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ManageOffer {
                offer_id: 0,
                selling: usd.clone(),
                buying: Asset::Native,
                amount: 100,
                price: Price::new(2, 1),
                passive: false,
            },
            &env(),
        )
        .unwrap();
        let book = d.offers_for_pair(&usd, &Asset::Native);
        let id = book[0].id;
        // Update amount.
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ManageOffer {
                offer_id: id,
                selling: usd.clone(),
                buying: Asset::Native,
                amount: 40,
                price: Price::new(3, 1),
                passive: false,
            },
            &env(),
        )
        .unwrap();
        let offer = d.offer(id).unwrap();
        assert_eq!(offer.amount, 40);
        assert_eq!(offer.price, Price::new(3, 1));
        // Delete.
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ManageOffer {
                offer_id: id,
                selling: usd.clone(),
                buying: Asset::Native,
                amount: 0,
                price: Price::new(1, 1),
                passive: false,
            },
            &env(),
        )
        .unwrap();
        assert!(d.offer(id).is_none());
        assert_eq!(d.account(acct(1)).unwrap().num_subentries, 1); // just the trustline
                                                                   // Deleting again: NoOffer.
        assert_eq!(
            apply_operation(
                &mut d,
                acct(1),
                &Operation::ManageOffer {
                    offer_id: id,
                    selling: usd,
                    buying: Asset::Native,
                    amount: 0,
                    price: Price::new(1, 1),
                    passive: false,
                },
                &env()
            ),
            Err(OpError::NoOffer)
        );
    }

    #[test]
    fn offer_without_funds_fails() {
        let store = funded_store(&[1, 9]);
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        apply_operation(
            &mut d,
            acct(1),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 1000,
            },
            &env(),
        )
        .unwrap();
        let sell = Operation::ManageOffer {
            offer_id: 0,
            selling: usd,
            buying: Asset::Native,
            amount: 10,
            price: Price::new(1, 1),
            passive: false,
        };
        assert_eq!(
            apply_operation(&mut d, acct(1), &sell, &env()),
            Err(OpError::Underfunded)
        );
    }

    #[test]
    fn set_options_multisig() {
        let store = funded_store(&[1]);
        let mut d = store.begin();
        let add = Operation::SetOptions {
            auth_required: None,
            auth_revocable: None,
            master_weight: Some(2),
            low_threshold: Some(1),
            medium_threshold: Some(3),
            high_threshold: Some(4),
            signer: Some(crate::entry::Signer::key(PublicKey(42), 2)),
        };
        apply_operation(&mut d, acct(1), &add, &env()).unwrap();
        let a = d.account(acct(1)).unwrap();
        assert_eq!(a.thresholds.master_weight, 2);
        assert_eq!(a.thresholds.medium, 3);
        assert_eq!(a.signers.len(), 1);
        assert_eq!(a.num_subentries, 1);
        // Remove the signer with weight 0.
        let rm = Operation::SetOptions {
            auth_required: None,
            auth_revocable: None,
            master_weight: None,
            low_threshold: None,
            medium_threshold: None,
            high_threshold: None,
            signer: Some(crate::entry::Signer::key(PublicKey(42), 0)),
        };
        apply_operation(&mut d, acct(1), &rm, &env()).unwrap();
        assert!(d.account(acct(1)).unwrap().signers.is_empty());
        assert_eq!(d.account(acct(1)).unwrap().num_subentries, 0);
    }

    #[test]
    fn bump_sequence() {
        let store = funded_store(&[1]);
        let mut d = store.begin();
        apply_operation(
            &mut d,
            acct(1),
            &Operation::BumpSequence { bump_to: 77 },
            &env(),
        )
        .unwrap();
        assert_eq!(d.account(acct(1)).unwrap().seq_num, 77);
        // Bumping backwards is a no-op.
        apply_operation(
            &mut d,
            acct(1),
            &Operation::BumpSequence { bump_to: 5 },
            &env(),
        )
        .unwrap();
        assert_eq!(d.account(acct(1)).unwrap().seq_num, 77);
    }
}

//! Path payments: atomic cross-asset transfers (§1, §5.2).
//!
//! A path payment delivers an exact amount of the destination asset while
//! spending at most `send_max` of the source asset, trading through up to
//! five intermediary order books along the way — "path payments that
//! atomically trade across several currency pairs while guaranteeing an
//! end-to-end limit price." This is the machinery behind the paper's
//! flagship scenario: sending $0.50 from the U.S. to Mexico in five
//! seconds for a fee of $0.000001.
//!
//! Execution works backwards from the destination: each hop buys exactly
//! the amount the next hop needs, consuming resting offers at maker
//! prices. The sender never needs trustlines on intermediary assets; only
//! the makers' balances move for the middle legs.

use crate::amount::Price;
use crate::asset::Asset;
use crate::entry::AccountId;
use crate::ops::{credit, debit, ExecEnv};
use crate::orderbook::{cross, TradeCaps};
use crate::store::LedgerDelta;
use crate::tx::{OpError, OpResult};

/// Maximum number of intermediary assets in a path (Fig. 4: "up to 5").
pub const MAX_PATH_LEN: usize = 5;

/// A price limit that crosses everything (the end-to-end limit is enforced
/// by `send_max`, not per hop).
fn permissive_price() -> Price {
    // The taker's price is its minimum acceptable buy-per-sell ratio;
    // ~zero accepts every maker price.
    Price::new(1, u32::MAX)
}

/// Applies a `PathPayment` operation.
///
/// Delivers exactly `dest_amount` of `dest_asset` to `destination`,
/// spending at most `send_max` of `send_asset` from `source`, converting
/// through `path` (source-to-destination order, as on the wire).
#[allow(clippy::too_many_arguments)]
pub fn apply_path_payment(
    delta: &mut LedgerDelta<'_>,
    source: AccountId,
    send_asset: &Asset,
    send_max: i64,
    destination: AccountId,
    dest_asset: &Asset,
    dest_amount: i64,
    path: &[Asset],
    env: &ExecEnv,
) -> OpResult {
    if dest_amount <= 0 || send_max <= 0 || path.len() > MAX_PATH_LEN {
        return Err(OpError::Malformed);
    }
    if delta.account(destination).is_none() {
        return Err(OpError::NoDestination);
    }

    // The full conversion chain: send → path… → dest.
    let mut chain: Vec<Asset> = Vec::with_capacity(path.len() + 2);
    chain.push(send_asset.clone());
    chain.extend(path.iter().cloned());
    chain.push(dest_asset.clone());
    chain.dedup();

    if chain.len() == 1 {
        // Same asset end to end: a direct transfer.
        if dest_amount > send_max {
            return Err(OpError::OverSendMax);
        }
        debit(delta, source, send_asset, dest_amount, env.base_reserve)?;
        return credit(delta, destination, dest_asset, dest_amount);
    }

    // Work backwards: `needed` is how much of chain[i+1] the hop from
    // chain[i] must produce.
    let mut needed = dest_amount;
    for i in (0..chain.len() - 1).rev() {
        let input = &chain[i];
        let output = &chain[i + 1];
        let res = cross(
            delta,
            source,
            input,
            output,
            &permissive_price(),
            TradeCaps {
                max_sell: i64::MAX / 4,
                max_buy: needed,
            },
            false,
        );
        if res.bought < needed {
            return Err(OpError::TooFewOffers);
        }
        // Settle the makers of this hop: they receive `input`, deliver
        // `output`. The taker's own balances only move at the endpoints.
        for f in &res.fills {
            debit(delta, f.maker, output, f.taker_bought, env.base_reserve)?;
            credit(delta, f.maker, input, f.taker_sold)?;
        }
        needed = res.sold;
    }

    // `needed` is now the total of `send_asset` consumed at the first hop.
    if needed > send_max {
        return Err(OpError::OverSendMax);
    }
    debit(delta, source, send_asset, needed, env.base_reserve)?;
    credit(delta, destination, dest_asset, dest_amount)
}

/// Quotes the source-asset cost of delivering `dest_amount` along a path,
/// without committing any changes (dry run on a fork).
///
/// Returns `None` when the books cannot fill the path.
pub fn quote_path(
    delta: &LedgerDelta<'_>,
    send_asset: &Asset,
    dest_asset: &Asset,
    dest_amount: i64,
    path: &[Asset],
) -> Option<i64> {
    let mut scratch = delta.fork();
    let mut chain: Vec<Asset> = Vec::with_capacity(path.len() + 2);
    chain.push(send_asset.clone());
    chain.extend(path.iter().cloned());
    chain.push(dest_asset.clone());
    chain.dedup();
    if chain.len() == 1 {
        return Some(dest_amount);
    }
    let mut needed = dest_amount;
    for i in (0..chain.len() - 1).rev() {
        let res = cross(
            &mut scratch,
            // A taker id that never matches a real account: quoting only.
            AccountId(stellar_crypto::sign::PublicKey(u64::MAX)),
            &chain[i],
            &chain[i + 1],
            &permissive_price(),
            TradeCaps {
                max_sell: i64::MAX / 4,
                max_buy: needed,
            },
            false,
        );
        if res.bought < needed {
            return None;
        }
        needed = res.sold;
    }
    Some(needed)
}

/// Finds the cheapest path (by source cost) delivering `dest_amount`,
/// considering the direct pair and single-intermediary hops through
/// `candidates` (a horizon-style path-finding service, §5.4).
pub fn find_best_path(
    delta: &LedgerDelta<'_>,
    send_asset: &Asset,
    dest_asset: &Asset,
    dest_amount: i64,
    candidates: &[Asset],
) -> Option<(Vec<Asset>, i64)> {
    let mut best: Option<(Vec<Asset>, i64)> = None;
    let mut consider = |path: Vec<Asset>| {
        if let Some(cost) = quote_path(delta, send_asset, dest_asset, dest_amount, &path) {
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((path, cost));
            }
        }
    };
    consider(vec![]);
    for mid in candidates {
        if mid != send_asset && mid != dest_asset {
            consider(vec![mid.clone()]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::xlm;
    use crate::entry::AccountEntry;
    use crate::ops::apply_operation;
    use crate::store::LedgerStore;
    use crate::tx::Operation;
    use stellar_crypto::sign::PublicKey;

    fn acct(n: u64) -> AccountId {
        AccountId(PublicKey(n))
    }

    /// Issuers: 9 = USD, 8 = MXN. Market maker: 5. Sender: 1, receiver: 2.
    fn market() -> LedgerStore {
        let mut s = LedgerStore::new();
        for i in [1u64, 2, 5, 8, 9] {
            s.put_account(AccountEntry::new(acct(i), xlm(10_000)));
        }
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        let mut d = s.begin();
        for (holder, asset) in [
            (5u64, usd.clone()),
            (5, mxn.clone()),
            (1, usd.clone()),
            (2, mxn.clone()),
        ] {
            apply_operation(
                &mut d,
                acct(holder),
                &Operation::ChangeTrust {
                    asset,
                    limit: xlm(1_000_000),
                },
                &ExecEnv::default(),
            )
            .unwrap();
        }
        // Fund the maker and the sender.
        apply_operation(
            &mut d,
            acct(9),
            &Operation::Payment {
                destination: acct(5),
                asset: usd.clone(),
                amount: 1_000_000,
            },
            &ExecEnv::default(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(8),
            &Operation::Payment {
                destination: acct(5),
                asset: mxn.clone(),
                amount: 1_000_000,
            },
            &ExecEnv::default(),
        )
        .unwrap();
        apply_operation(
            &mut d,
            acct(9),
            &Operation::Payment {
                destination: acct(1),
                asset: usd,
                amount: 1_000,
            },
            &ExecEnv::default(),
        )
        .unwrap();
        // Maker sells MXN for USD at 1 USD per 20 MXN (i.e. 20 MXN/USD).
        let mxn2 = Asset::issued(acct(8), "MXN");
        let usd2 = Asset::issued(acct(9), "USD");
        apply_operation(
            &mut d,
            acct(5),
            &Operation::ManageOffer {
                offer_id: 0,
                selling: mxn2,
                buying: usd2,
                amount: 1_000_000,
                price: Price::new(1, 20),
                passive: false,
            },
            &ExecEnv::default(),
        )
        .unwrap();
        let ch = d.into_changes();
        s.commit(ch);
        s
    }

    #[test]
    fn direct_cross_asset_payment() {
        // "making it literally possible to send $0.50 to Mexico in 5
        // seconds": deliver 10 MXN for at most 0.50 USD.
        let store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        let mut d = store.begin();
        apply_path_payment(
            &mut d,
            acct(1),
            &usd,
            1,
            acct(2),
            &mxn,
            20,
            &[],
            &ExecEnv::default(),
        )
        .unwrap();
        assert_eq!(d.trustline(acct(2), &mxn).unwrap().balance, 20);
        assert_eq!(d.trustline(acct(1), &usd).unwrap().balance, 999);
        // Maker took the USD and gave MXN.
        assert_eq!(d.trustline(acct(5), &usd).unwrap().balance, 1_000_001);
        assert_eq!(d.trustline(acct(5), &mxn).unwrap().balance, 999_980);
    }

    #[test]
    fn send_max_enforced() {
        let store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        let mut d = store.begin();
        // 100 MXN costs 5 USD; cap at 4: must fail without side effects
        // (the enclosing tx delta would be discarded).
        let err = apply_path_payment(
            &mut d,
            acct(1),
            &usd,
            4,
            acct(2),
            &mxn,
            100,
            &[],
            &ExecEnv::default(),
        );
        assert_eq!(err, Err(OpError::OverSendMax));
    }

    #[test]
    fn too_few_offers_detected() {
        let store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        let mut d = store.begin();
        let err = apply_path_payment(
            &mut d,
            acct(1),
            &usd,
            i64::MAX / 8,
            acct(2),
            &mxn,
            2_000_000,
            &[],
            &ExecEnv::default(),
        );
        assert_eq!(err, Err(OpError::TooFewOffers));
    }

    #[test]
    fn two_hop_path_through_xlm() {
        // Add a USD→XLM maker and an XLM→MXN maker, then pay USD→XLM→MXN.
        let mut store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        {
            let mut d = store.begin();
            // Maker sells XLM for USD at 1 USD per 10 XLM.
            apply_operation(
                &mut d,
                acct(5),
                &Operation::ManageOffer {
                    offer_id: 0,
                    selling: Asset::Native,
                    buying: usd.clone(),
                    amount: xlm(100),
                    price: Price::new(1, 10),
                    passive: false,
                },
                &ExecEnv::default(),
            )
            .unwrap();
            // Maker sells MXN for XLM at 2 MXN per XLM → price 1 XLM per 2 MXN.
            apply_operation(
                &mut d,
                acct(5),
                &Operation::ManageOffer {
                    offer_id: 0,
                    selling: mxn.clone(),
                    buying: Asset::Native,
                    amount: 1_000_000,
                    price: Price::new(1, 2),
                    passive: false,
                },
                &ExecEnv::default(),
            )
            .unwrap();
            let ch = d.into_changes();
            store.commit(ch);
        }
        let mut d = store.begin();
        apply_path_payment(
            &mut d,
            acct(1),
            &usd,
            1_000,
            acct(2),
            &mxn,
            40,
            &[Asset::Native],
            &ExecEnv::default(),
        )
        .unwrap();
        assert_eq!(d.trustline(acct(2), &mxn).unwrap().balance, 40);
    }

    #[test]
    fn same_asset_path_is_direct_transfer() {
        let store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mut d = store.begin();
        // Receiver needs a USD trustline.
        apply_operation(
            &mut d,
            acct(2),
            &Operation::ChangeTrust {
                asset: usd.clone(),
                limit: 1000,
            },
            &ExecEnv::default(),
        )
        .unwrap();
        apply_path_payment(
            &mut d,
            acct(1),
            &usd,
            50,
            acct(2),
            &usd,
            50,
            &[],
            &ExecEnv::default(),
        )
        .unwrap();
        assert_eq!(d.trustline(acct(2), &usd).unwrap().balance, 50);
    }

    #[test]
    fn quote_matches_execution_cost() {
        let store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        let d = store.begin();
        let quoted = quote_path(&d, &usd, &mxn, 200, &[]).unwrap();
        assert_eq!(quoted, 10); // 200 MXN at 20 MXN/USD
        let mut d2 = store.begin();
        apply_path_payment(
            &mut d2,
            acct(1),
            &usd,
            quoted,
            acct(2),
            &mxn,
            200,
            &[],
            &ExecEnv::default(),
        )
        .unwrap();
        assert_eq!(d2.trustline(acct(1), &usd).unwrap().balance, 1000 - quoted);
    }

    #[test]
    fn find_best_path_picks_cheaper_route() {
        // Direct book at 20 MXN/USD; also a (better) two-hop via XLM:
        // 1 USD → 12 XLM → 36 MXN (3 MXN per XLM) ⇒ cheaper per MXN.
        let mut store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        {
            let mut d = store.begin();
            apply_operation(
                &mut d,
                acct(5),
                &Operation::ManageOffer {
                    offer_id: 0,
                    selling: Asset::Native,
                    buying: usd.clone(),
                    amount: xlm(100),
                    price: Price::new(1, 12),
                    passive: false,
                },
                &ExecEnv::default(),
            )
            .unwrap();
            apply_operation(
                &mut d,
                acct(5),
                &Operation::ManageOffer {
                    offer_id: 0,
                    selling: mxn.clone(),
                    buying: Asset::Native,
                    amount: 1_000_000,
                    price: Price::new(1, 3),
                    passive: false,
                },
                &ExecEnv::default(),
            )
            .unwrap();
            let ch = d.into_changes();
            store.commit(ch);
        }
        let d = store.begin();
        let (path, cost) = find_best_path(&d, &usd, &mxn, 360, &[Asset::Native]).unwrap();
        assert_eq!(path, vec![Asset::Native]);
        let direct = quote_path(&d, &usd, &mxn, 360, &[]).unwrap();
        assert!(
            cost < direct,
            "via-XLM path ({cost}) should beat direct ({direct})"
        );
    }

    #[test]
    fn malformed_paths_rejected() {
        let store = market();
        let usd = Asset::issued(acct(9), "USD");
        let mxn = Asset::issued(acct(8), "MXN");
        let mut d = store.begin();
        let too_long = vec![Asset::Native; MAX_PATH_LEN + 1];
        assert_eq!(
            apply_path_payment(
                &mut d,
                acct(1),
                &usd,
                10,
                acct(2),
                &mxn,
                10,
                &too_long,
                &ExecEnv::default()
            ),
            Err(OpError::Malformed)
        );
        assert_eq!(
            apply_path_payment(
                &mut d,
                acct(1),
                &usd,
                10,
                acct(2),
                &mxn,
                0,
                &[],
                &ExecEnv::default()
            ),
            Err(OpError::Malformed)
        );
    }
}

//! The herder: Stellar's replicated state machine on top of SCP (§5).
//!
//! SCP agrees on opaque byte strings; the herder gives them meaning. For
//! each ledger, the consensus value is a [`StellarValue`]: a transaction
//! set hash, a close time, and a set of upgrades (§5.3). The herder:
//!
//! * assembles candidate transaction sets from its [`queue`] of pending
//!   transactions;
//! * validates and *combines* nominated values — most operations win, ties
//!   break by fees then hash; close times take the max; upgrades union;
//! * votes on [`upgrade`]s according to its governance role (§5.3:
//!   governing validators nominate *desired* upgrades, accept *valid*
//!   ones, and never accept invalid ones; non-governing validators echo);
//! * on externalization, applies the transaction set to the ledger,
//!   updates the bucket list, patches the snapshot hash into the header,
//!   and publishes to the history archive.
//!
//! [`validator::Validator`] packages an
//! [`stellar_scp::ScpNode`] with a [`herder::Herder`]
//! into the complete node the overlay and simulator drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod herder;
pub mod queue;
pub mod upgrade;
pub mod validator;
pub mod value;

pub use herder::{CloseEvent, Herder};
pub use queue::TxQueue;
pub use upgrade::{Upgrade, UpgradePolicy};
pub use validator::Validator;
pub use value::StellarValue;

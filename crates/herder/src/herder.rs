//! The [`Herder`]: application state plus the SCP [`Driver`] hooks.
//!
//! The herder buffers every side effect SCP requests (outgoing envelopes,
//! timer arms, decisions) so the embedding layer — the deterministic
//! simulator or an in-process harness — can drain and route them. It also
//! owns the ledger store, bucket list, history archive, transaction queue,
//! and the upgrade policy, and performs ledger close when a slot
//! externalizes.

use crate::queue::TxQueue;
use crate::upgrade::{UpgradePolicy, UpgradeVerdict};
use crate::value::StellarValue;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::time::Duration;
use stellar_buckets::{BucketList, HistoryArchive};
use stellar_crypto::codec::{Decode, Encode};
use stellar_crypto::sign::PublicKey;
use stellar_crypto::Hash256;
use stellar_ledger::apply::close_ledger;
use stellar_ledger::entry::{LedgerEntry, LedgerKey};
use stellar_ledger::header::LedgerHeader;
use stellar_ledger::sigcache::SigVerifyCache;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::{TransactionEnvelope, TxResult};
use stellar_ledger::txset::TransactionSet;
use stellar_ledger::StoreIoStats;
use stellar_persist::DurableStore;
use stellar_scp::driver::{Driver, ScpEvent, TimerKind, Validity};
use stellar_scp::slot::SlotSnapshot;
use stellar_scp::{Envelope, NodeId, SlotIndex, Value};
use stellar_telemetry::{NodeTelemetry, SpanPhase, TraceKind};

/// Durable-store key for the SCP slot snapshots (written write-ahead of
/// every outbound envelope).
pub const SCP_SNAPSHOT_KEY: &str = "scp";

/// Durable-store key for the latest-closed-ledger record (written at
/// every ledger close).
pub const LCL_KEY: &str = "lcl";

/// The durable latest-closed-ledger record: the header plus the bucket
/// level hashes it commits to. Used after a restart to cross-check the
/// state rebuilt from the history archive against what this node had
/// actually made durable before crashing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LclRecord {
    /// The latest closed ledger header.
    pub header: LedgerHeader,
    /// Bucket-list level hashes at that close.
    pub bucket_hashes: Vec<Hash256>,
}

stellar_crypto::impl_codec_struct!(LclRecord {
    header,
    bucket_hashes,
});

/// One ledger close as seen by an off-consensus consumer — the feed the
/// Horizon ingestion indexer materializes its tables from. Produced only
/// when a consumer opted in via [`Herder::enable_ingest`]; consensus
/// never reads it, so enabling or disabling it cannot change what the
/// node externalizes (the twin-run determinism gate in CI asserts this).
#[derive(Clone, Debug)]
pub struct CloseEvent {
    /// Ledger sequence that closed.
    pub ledger_seq: u64,
    /// Consensus close time (seconds).
    pub close_time: u64,
    /// The applied transaction set, in apply order.
    pub txs: Vec<TransactionEnvelope>,
    /// Per-transaction results, parallel to `txs`.
    pub results: Vec<TxResult>,
    /// The ledger-entry change feed from this close: every created,
    /// updated (`Some`), or deleted (`None`) entry.
    pub changes: Vec<(LedgerKey, Option<LedgerEntry>)>,
}

/// Statistics from one ledger close (feeds the §7.3 metrics).
#[derive(Clone, Debug)]
pub struct CloseStats {
    /// Ledger sequence closed.
    pub ledger_seq: u64,
    /// Transactions applied (successfully or not).
    pub tx_count: usize,
    /// Operations applied.
    pub op_count: usize,
    /// Wall-clock time spent applying the set and re-hashing buckets.
    pub apply_time: Duration,
    /// Close time agreed by consensus.
    pub close_time: u64,
    /// Transactions that failed or were invalid.
    pub failed_tx_count: usize,
    /// Hash of the resulting ledger header. Nodes that applied the same
    /// slot must agree on it — the safety invariant chaos monitors check.
    pub header_hash: Hash256,
}

/// Static metric key for an outbound envelope of a statement class —
/// per-statement counters without a hot-path allocation.
fn envelope_out_key(class: &str) -> &'static str {
    match class {
        "nominate" => "scp.envelope_out.nominate",
        "prepare" => "scp.envelope_out.prepare",
        "confirm" => "scp.envelope_out.confirm",
        "externalize" => "scp.envelope_out.externalize",
        _ => "scp.envelope_out.other",
    }
}

/// Static metric key for an inbound envelope of a statement class.
fn envelope_in_key(class: &str) -> &'static str {
    match class {
        "nominate" => "scp.envelope_in.nominate",
        "prepare" => "scp.envelope_in.prepare",
        "confirm" => "scp.envelope_in.confirm",
        "externalize" => "scp.envelope_in.externalize",
        _ => "scp.envelope_in.other",
    }
}

/// Trace label for a timer kind.
fn timer_name(kind: TimerKind) -> &'static str {
    match kind {
        TimerKind::Nomination => "nomination",
        TimerKind::Ballot => "ballot",
    }
}

/// Application state + buffered driver outputs for one validator.
pub struct Herder {
    /// This validator's id (for logs; SCP owns the signing identity).
    pub node_id: NodeId,
    /// The ledger entry store.
    pub store: LedgerStore,
    /// The bucket list (snapshot hashing).
    pub buckets: BucketList,
    /// The write-only history archive.
    pub archive: HistoryArchive,
    /// The current (latest closed) header.
    pub header: LedgerHeader,
    /// Pending transactions.
    pub queue: TxQueue,
    /// Node-level verified-signature cache. One transaction is
    /// signature-checked at submission, nomination validation, and apply;
    /// this cache makes the second and third checks free. Purely an
    /// optimization: externalized state is identical with it disabled.
    pub sig_cache: SigVerifyCache,
    /// Governance stance.
    pub upgrade_policy: UpgradePolicy,
    /// Known transaction sets by hash (gossiped alongside SCP traffic).
    pub known_tx_sets: HashMap<Hash256, TransactionSet>,
    /// Wall clock, supplied by the embedder (seconds). Close-time
    /// validation measures against this.
    pub now: u64,
    /// Millisecond clock for event timestamps (metrics resolution).
    pub clock_ms: u64,
    /// Maximum close-time skew tolerated in validation (seconds).
    pub max_time_slip: u64,
    /// Resolves peers' signature keys.
    pub key_registry: BTreeMap<NodeId, PublicKey>,
    /// This node's observability bundle: metrics registry + flight
    /// recorder, updated on the hot path by every driver hook.
    pub telemetry: NodeTelemetry,
    /// This node's simulated disk: SCP snapshots are written here
    /// write-ahead of outbound envelopes, and the latest closed ledger at
    /// every close, so a crash-restarted node recovers without amnesia
    /// (§3, §5.4).
    pub persist: DurableStore,
    /// Data-disk I/O counters as of the previous close — the per-close
    /// telemetry deltas are computed against this.
    last_store_stats: StoreIoStats,
    /// Close-event feed for the Horizon ingestion indexer. `None` (the
    /// default) costs nothing on the close path; [`Herder::enable_ingest`]
    /// turns it on with a bounded capacity.
    ingest_buffer: Option<VecDeque<CloseEvent>>,
    /// Capacity bound on `ingest_buffer`.
    ingest_cap: usize,
    /// Close events dropped because the consumer fell more than
    /// `ingest_cap` ledgers behind (the indexer detects the gap via the
    /// sequence numbers and catches up from the archive).
    pub ingest_dropped: u64,

    // ---- buffered driver outputs ----
    /// Envelopes to flood.
    pub outbox: Vec<Envelope>,
    /// Timer (re-)arms requested: (slot, kind, delay-or-cancel).
    pub timer_requests: Vec<(SlotIndex, TimerKind, Option<Duration>)>,
    /// Values externalized, not yet processed into ledger closes.
    pub pending_externalize: Vec<(SlotIndex, Value)>,
    /// Protocol events (metrics).
    pub events: Vec<(u64, ScpEvent)>,
    /// Ledger close statistics, most recent last.
    pub close_stats: Vec<CloseStats>,
    /// Externalized-but-unapplied values whose tx set we have not yet
    /// received (applied as soon as the set arrives).
    pub stalled_externalize: Vec<(SlotIndex, StellarValue)>,
}

impl Herder {
    /// Creates a herder over a genesis state.
    pub fn new(
        node_id: NodeId,
        store: LedgerStore,
        key_registry: BTreeMap<NodeId, PublicKey>,
    ) -> Herder {
        let mut buckets = BucketList::seed(store.all_entries());
        // A disk-backed store brings a data disk; spill cold bucket
        // levels onto the same device so one sync per close covers both.
        if let Some(disk) = store.disk() {
            buckets.attach_disk(disk, 0);
        }
        let mut header = LedgerHeader::genesis(Hash256::ZERO);
        header.snapshot_hash = buckets.hash();
        let last_store_stats = store.io_stats();
        Herder {
            node_id,
            store,
            buckets,
            archive: HistoryArchive::new(),
            header,
            last_store_stats,
            ingest_buffer: None,
            ingest_cap: 0,
            ingest_dropped: 0,
            queue: TxQueue::new(),
            sig_cache: SigVerifyCache::new(1 << 16),
            upgrade_policy: UpgradePolicy::default(),
            known_tx_sets: HashMap::new(),
            now: 1,
            clock_ms: 1000,
            max_time_slip: 60,
            key_registry,
            telemetry: NodeTelemetry::new(node_id.0),
            persist: DurableStore::new(),
            outbox: Vec::new(),
            timer_requests: Vec::new(),
            pending_externalize: Vec::new(),
            events: Vec::new(),
            close_stats: Vec::new(),
            stalled_externalize: Vec::new(),
        }
    }

    /// Creates a herder from state recovered off a durable data disk
    /// (`stellar-store`'s `recover_node`): the ledger store, bucket list,
    /// and header resume exactly where the crashed node's last durable
    /// flush left them — no genesis replay. The archive starts empty;
    /// catch-up from a peer's archive fills the gap to the network tip.
    pub fn from_recovered(
        node_id: NodeId,
        store: LedgerStore,
        buckets: BucketList,
        header: LedgerHeader,
        key_registry: BTreeMap<NodeId, PublicKey>,
    ) -> Herder {
        debug_assert_eq!(header.snapshot_hash, {
            let mut b = buckets.clone();
            b.hash()
        });
        let last_store_stats = store.io_stats();
        Herder {
            node_id,
            store,
            buckets,
            archive: HistoryArchive::new(),
            header,
            last_store_stats,
            ingest_buffer: None,
            ingest_cap: 0,
            ingest_dropped: 0,
            queue: TxQueue::new(),
            sig_cache: SigVerifyCache::new(1 << 16),
            upgrade_policy: UpgradePolicy::default(),
            known_tx_sets: HashMap::new(),
            now: 1,
            clock_ms: 1000,
            max_time_slip: 60,
            key_registry,
            telemetry: NodeTelemetry::new(node_id.0),
            persist: DurableStore::new(),
            outbox: Vec::new(),
            timer_requests: Vec::new(),
            pending_externalize: Vec::new(),
            events: Vec::new(),
            close_stats: Vec::new(),
            stalled_externalize: Vec::new(),
        }
    }

    /// Sets the worker-thread count for ledger apply (≤ 1 = sequential).
    ///
    /// This is a node-local performance knob, not consensus state: it
    /// rides in `header.params` so it reaches every close (including
    /// catch-up replay), but the header codec, hash, and equality all
    /// exclude it, so nodes with different thread counts externalize
    /// byte-identical ledgers.
    pub fn set_apply_threads(&mut self, threads: u32) {
        self.header.params.apply_threads = threads;
    }

    /// Exports one close's parallel-apply counters into the registry.
    /// A sequential close reports nothing (all counters stay zero).
    fn record_apply_stats(&mut self, stats: &stellar_ledger::ApplyStats) {
        if stats.waves == 0 {
            return;
        }
        let reg = &mut self.telemetry.registry;
        reg.add("apply.waves", stats.waves);
        reg.add("apply.parallel_txs", stats.parallel_txs);
        reg.add("apply.conflict_rerun", stats.conflict_reruns);
        reg.add("apply.footprint_fallback", stats.footprint_fallbacks);
        for &w in &stats.wave_sizes {
            reg.observe("apply.wave_size", w as u64);
        }
    }

    /// Turns on the close-event feed for an ingestion consumer, keeping
    /// at most `cap` pending events. Off-consensus: the feed is produced
    /// after the close is already final, so enabling it cannot change
    /// externalized headers or bucket hashes.
    pub fn enable_ingest(&mut self, cap: usize) {
        self.ingest_cap = cap.max(1);
        if self.ingest_buffer.is_none() {
            self.ingest_buffer = Some(VecDeque::new());
        }
    }

    /// True when a close-event consumer is attached.
    pub fn ingest_enabled(&self) -> bool {
        self.ingest_buffer.is_some()
    }

    /// Drains pending close events (oldest first).
    pub fn take_close_events(&mut self) -> Vec<CloseEvent> {
        match self.ingest_buffer.as_mut() {
            Some(buf) => buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Appends one close to the ingest feed (no-op when disabled). The
    /// change vector is moved in — the close path is done with it either
    /// way — while txs/results are cloned only when a consumer exists.
    fn push_close_event(
        &mut self,
        ledger_seq: u64,
        close_time: u64,
        set: &TransactionSet,
        results: &[TxResult],
        changes: Vec<(LedgerKey, Option<LedgerEntry>)>,
    ) {
        let Some(buf) = self.ingest_buffer.as_mut() else {
            return;
        };
        if buf.len() >= self.ingest_cap {
            buf.pop_front();
            self.ingest_dropped += 1;
            self.telemetry.registry.inc("ingest.feed_dropped");
        }
        buf.push_back(CloseEvent {
            ledger_seq,
            close_time,
            txs: set.txs.clone(),
            results: results.to_vec(),
            changes,
        });
    }

    /// The slot index the network is currently deciding.
    pub fn current_slot(&self) -> SlotIndex {
        self.header.ledger_seq + 1
    }

    /// Assembles this validator's proposal for the next ledger: builds a
    /// transaction set from the queue and wraps it in a [`StellarValue`]
    /// with any desired upgrades.
    ///
    /// Returns the value plus the set (which the caller must flood so
    /// peers can validate and apply it).
    pub fn make_proposal(&mut self) -> (StellarValue, TransactionSet) {
        let candidates = self.queue.candidates(&self.store);
        let set = TransactionSet::assemble(
            self.header.hash(),
            candidates,
            self.header.params.max_tx_set_ops,
        );
        let close_time = self.now.max(self.header.close_time + 1);
        let mut value = StellarValue::new(set.hash(), close_time);
        if self.upgrade_policy.governing {
            value.upgrades = self
                .upgrade_policy
                .desired
                .iter()
                .filter(|u| !u.is_satisfied(&self.header.params))
                .cloned()
                .collect();
        }
        self.known_tx_sets.insert(set.hash(), set.clone());
        // Tracing: every transaction in the proposal reached the
        // nominated-in-txset milestone on this node.
        if self.telemetry.spans.enabled() {
            let slot = self.current_slot();
            let t = self.clock_ms;
            for tx in &set.txs {
                self.telemetry
                    .span(tx.hash().prefix_u64(), t, SpanPhase::Nominated { slot });
            }
        }
        (value, set)
    }

    /// Registers a transaction set learned from a peer.
    pub fn learn_tx_set(&mut self, set: TransactionSet) {
        self.known_tx_sets.insert(set.hash(), set);
        // A stalled externalization may now be appliable.
        self.try_apply_stalled();
    }

    /// Validates a [`StellarValue`] for `slot` (the [`Driver`] hook body).
    fn validate_stellar_value(&mut self, value: &StellarValue, nomination: bool) -> Validity {
        // Close time must move forward and not outrun our clock too far.
        if value.close_time <= self.header.close_time {
            return Validity::Invalid;
        }
        if nomination && value.close_time > self.now + self.max_time_slip {
            return Validity::Invalid;
        }
        // Upgrades must be acceptable.
        for u in &value.upgrades {
            match self.upgrade_policy.classify(u) {
                UpgradeVerdict::Invalid => return Validity::Invalid,
                UpgradeVerdict::Desired | UpgradeVerdict::Valid => {}
            }
        }
        // We can fully validate only transaction sets we actually hold and
        // that chain from our current header.
        match self.known_tx_sets.get(&value.tx_set_hash) {
            Some(set) if set.prev_ledger_hash == self.header.hash() => Validity::FullyValidated,
            Some(_) => Validity::Invalid,
            None => {
                if nomination {
                    // Don't vote for sets we can't inspect.
                    Validity::Invalid
                } else {
                    Validity::MaybeValid
                }
            }
        }
    }

    /// Applies an externalized value: closes the ledger, updates buckets
    /// and archive, prunes the queue. Records [`CloseStats`].
    ///
    /// Returns `false` when the transaction set is not yet known (the
    /// close is deferred until [`Herder::learn_tx_set`]).
    pub fn apply_externalized(&mut self, slot: SlotIndex, value: &StellarValue) -> bool {
        if slot != self.current_slot() {
            // Stale or future slot; future slots wait for their turn.
            if slot > self.current_slot() {
                self.stalled_externalize.push((slot, value.clone()));
            }
            return false;
        }
        // Move the set out rather than cloning it: cloning envelopes
        // resets their memoized hashes, which the apply path is about to
        // reuse. The set is reinserted below.
        let Some(set) = self.known_tx_sets.remove(&value.tx_set_hash) else {
            self.stalled_externalize.push((slot, value.clone()));
            return false;
        };
        // Tracing: capture the member trace ids up front (the set is
        // moved through the close path and reinserted below); the close
        // milestones are stamped once the close is durable.
        let traced: Vec<u64> = if self.telemetry.spans.enabled() {
            set.txs.iter().map(|tx| tx.hash().prefix_u64()).collect()
        } else {
            Vec::new()
        };
        let start = std::time::Instant::now();
        let mut params = self.header.params;
        for u in &value.upgrades {
            u.apply(&mut params);
        }
        let mut result = close_ledger(
            &mut self.store,
            &self.header,
            &set,
            value.close_time,
            params,
            &mut self.sig_cache,
        );
        self.buckets
            .add_batch(result.header.ledger_seq, &result.changes);
        self.push_close_event(
            result.header.ledger_seq,
            value.close_time,
            &set,
            &result.results,
            std::mem::take(&mut result.changes),
        );
        let mut header = result.header;
        header.snapshot_hash = self.buckets.hash();
        let apply_time = start.elapsed();
        self.archive.publish(&header, &set, &mut self.buckets);
        self.header = header;
        self.queue.prune(&self.store);
        let failed = result.results.iter().filter(|r| !r.is_success()).count();
        self.close_stats.push(CloseStats {
            ledger_seq: self.header.ledger_seq,
            tx_count: set.txs.len(),
            op_count: set.op_count(),
            apply_time,
            close_time: value.close_time,
            failed_tx_count: failed,
            header_hash: self.header.hash(),
        });
        let apply_us = apply_time.as_micros() as u64;
        self.record_apply_stats(&result.stats);
        self.telemetry.registry.inc("ledger.closed");
        self.telemetry.registry.observe("ledger.apply_us", apply_us);
        self.telemetry
            .registry
            .observe("ledger.txset_size", set.txs.len() as u64);
        self.telemetry
            .registry
            .observe("ledger.ops_per_ledger", set.op_count() as u64);
        self.telemetry.trace(
            self.clock_ms,
            slot,
            TraceKind::LedgerClosed {
                tx_count: set.txs.len() as u32,
                apply_us,
            },
        );
        self.record_results(&result.results);
        self.known_tx_sets.insert(value.tx_set_hash, set);
        // Data disk first, then the write-ahead LCL record: the LCL
        // never vouches for state the data disk has not made durable.
        self.flush_store();
        self.persist_lcl();
        // Per-transaction lifecycle milestones, in pipeline order. They
        // share one simulated-ms timestamp (the close is atomic in sim
        // time); wall-clock apply cost lives in `ledger.apply_us`.
        let t = self.clock_ms;
        for trace in traced {
            self.telemetry
                .span(trace, t, SpanPhase::Externalized { slot });
            self.telemetry.span(trace, t, SpanPhase::Applied { slot });
            self.telemetry.span(trace, t, SpanPhase::Archived { slot });
            self.telemetry.span(trace, t, SpanPhase::Flushed { slot });
            self.telemetry
                .span(trace, t, SpanPhase::HorizonVisible { slot });
        }
        self.try_apply_stalled();
        true
    }

    fn record_results(&mut self, _results: &[TxResult]) {
        // Results are hashed into the header; per-tx result storage would
        // live in horizon's database, outside this reproduction's scope.
    }

    /// Catches up from a peer's history archive: replays every archived
    /// transaction set past our current ledger, verifying each replayed
    /// header hash against the archived one (paper §5.4 — the archive is
    /// how rejoining nodes recover history that naïve flooding will never
    /// retransmit). Stops at the first hash mismatch, leaving state at
    /// the last verified ledger. Returns the number of ledgers applied.
    pub fn catch_up_from(&mut self, archive: &HistoryArchive) -> u64 {
        let Some(target) = archive.latest_seq() else {
            return 0;
        };
        let mut applied = 0;
        for seq in self.header.ledger_seq + 1..=target {
            let (Some(set), Some(expected)) = (archive.tx_set(seq), archive.header(seq)) else {
                break; // gap in the archive; cannot replay further
            };
            let start = std::time::Instant::now();
            // Replay with the archived consensus params but this node's
            // own thread knob — apply_threads is not consensus state, so
            // the replayed header hashes are unaffected.
            let mut params = expected.params;
            params.apply_threads = self.header.params.apply_threads;
            let mut result = close_ledger(
                &mut self.store,
                &self.header,
                set,
                expected.close_time,
                params,
                &mut self.sig_cache,
            );
            self.buckets
                .add_batch(result.header.ledger_seq, &result.changes);
            let changes = std::mem::take(&mut result.changes);
            let mut header = result.header;
            header.snapshot_hash = self.buckets.hash();
            if header.hash() != expected.hash() {
                // Divergent history: refuse it, keep the verified prefix.
                break;
            }
            self.archive.publish(&header, set, &mut self.buckets);
            self.header = header;
            // Replay re-emits the feed so a recovering node's indexer
            // rebuilds the same tables it would have ingested live.
            self.push_close_event(
                self.header.ledger_seq,
                expected.close_time,
                set,
                &result.results,
                changes,
            );
            let failed = result.results.iter().filter(|r| !r.is_success()).count();
            self.close_stats.push(CloseStats {
                ledger_seq: self.header.ledger_seq,
                tx_count: set.txs.len(),
                op_count: set.op_count(),
                apply_time: start.elapsed(),
                close_time: expected.close_time,
                failed_tx_count: failed,
                header_hash: self.header.hash(),
            });
            self.record_apply_stats(&result.stats);
            self.telemetry.registry.inc("ledger.catchup_applied");
            applied += 1;
        }
        if applied > 0 {
            self.queue.prune(&self.store);
            self.flush_store();
            self.persist_lcl();
            self.try_apply_stalled();
        }
        applied
    }

    /// Makes the close durable on the data disk: stages changed bucket
    /// level blobs, flushes the ledger store (one sync covers both), and
    /// records the per-close I/O telemetry. A failed sync leaves
    /// everything cached and dirty — the next close retries; reads are
    /// unaffected.
    fn flush_store(&mut self) {
        let seq = self.header.ledger_seq;
        self.buckets.persist_levels(seq);
        if self.store.flush(seq) {
            self.buckets.note_synced();
        }
        let s = self.store.io_stats();
        let p = self.last_store_stats;
        let reg = &mut self.telemetry.registry;
        reg.add("store.cache_hit", s.cache_hits - p.cache_hits);
        reg.add("store.cache_miss", s.cache_misses - p.cache_misses);
        reg.add("store.cache_evict", s.cache_evicts - p.cache_evicts);
        reg.add("persist.bytes_written", s.bytes_written - p.bytes_written);
        reg.add("persist.fsyncs", s.fsyncs - p.fsyncs);
        reg.add("persist.failed_syncs", s.failed_fsyncs - p.failed_fsyncs);
        let resident = self.store.resident_bytes() + self.buckets.resident_bytes();
        reg.set_gauge("store.resident_bytes", resident as i64);
        reg.set_gauge("store.disk_bytes", s.disk_bytes as i64);
        self.last_store_stats = s;
    }

    fn try_apply_stalled(&mut self) {
        let mut stalled = std::mem::take(&mut self.stalled_externalize);
        stalled.sort_by_key(|(slot, _)| *slot);
        for (slot, value) in stalled {
            if slot >= self.current_slot() {
                self.apply_externalized(slot, &value);
            }
        }
    }

    /// Write-ahead persists the given SCP slot snapshots and fsyncs.
    ///
    /// Returns `false` when the fsync failed: the state is NOT on disk
    /// and the caller must hold back any outbound envelope derived from
    /// it until a later sync succeeds (otherwise a crash could make this
    /// node contradict a vote the network already saw).
    pub fn persist_scp(&mut self, snaps: &[SlotSnapshot]) -> bool {
        if !self.persist.is_enabled() {
            return true;
        }
        let before = self.persist.stats().bytes_written;
        // Same wire layout as `Vec<SlotSnapshot>`: u64 count + elements.
        let mut buf = Vec::new();
        (snaps.len() as u64).encode(&mut buf);
        for s in snaps {
            s.encode(&mut buf);
        }
        self.persist.write(SCP_SNAPSHOT_KEY, &buf);
        let ok = self.persist.sync();
        let written = self.persist.stats().bytes_written - before;
        self.telemetry
            .registry
            .add("persist.bytes_written", written);
        if ok {
            self.telemetry.registry.inc("persist.syncs");
            self.telemetry.registry.inc("persist.fsyncs");
        } else {
            self.telemetry.registry.inc("persist.failed_syncs");
        }
        ok
    }

    /// Persists the latest-closed-ledger record (header + bucket level
    /// hashes) and fsyncs. Called at every ledger close; the archive
    /// already holds the full history, this record is the node-local
    /// integrity anchor recovery verifies against.
    pub fn persist_lcl(&mut self) -> bool {
        if !self.persist.is_enabled() {
            return true;
        }
        let rec = LclRecord {
            header: self.header.clone(),
            bucket_hashes: self.buckets.level_hashes(),
        };
        let before = self.persist.stats().bytes_written;
        self.persist.write(LCL_KEY, &rec.to_bytes());
        let ok = self.persist.sync();
        let written = self.persist.stats().bytes_written - before;
        self.telemetry
            .registry
            .add("persist.bytes_written", written);
        self.telemetry
            .registry
            .observe("persist.lcl_bytes", written);
        if ok {
            self.telemetry.registry.inc("persist.syncs");
            self.telemetry.registry.inc("persist.fsyncs");
        } else {
            self.telemetry.registry.inc("persist.failed_syncs");
        }
        ok
    }

    /// Reads back the durable SCP slot snapshots (crash recovery). A
    /// missing or torn record yields an empty list — recovery then leans
    /// on the history archive alone.
    pub fn recover_scp_snapshots(&self) -> Vec<SlotSnapshot> {
        self.persist
            .read(SCP_SNAPSHOT_KEY)
            .and_then(|bytes| Vec::<SlotSnapshot>::from_bytes(&bytes).ok())
            .unwrap_or_default()
    }

    /// Reads back the durable latest-closed-ledger record, if intact.
    pub fn recover_lcl(&self) -> Option<LclRecord> {
        LclRecord::from_bytes(&self.persist.read(LCL_KEY)?).ok()
    }

    /// Drains buffered envelopes.
    pub fn take_outbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains buffered timer requests.
    pub fn take_timer_requests(&mut self) -> Vec<(SlotIndex, TimerKind, Option<Duration>)> {
        std::mem::take(&mut self.timer_requests)
    }
}

impl Driver for Herder {
    fn validate_value(&mut self, _slot: SlotIndex, value: &Value, nomination: bool) -> Validity {
        match StellarValue::from_scp(value) {
            Some(sv) => self.validate_stellar_value(&sv, nomination),
            None => Validity::Invalid,
        }
    }

    fn combine_candidates(
        &mut self,
        _slot: SlotIndex,
        candidates: &BTreeSet<Value>,
    ) -> Option<Value> {
        let parsed: Vec<StellarValue> = candidates
            .iter()
            .filter_map(StellarValue::from_scp)
            .collect();
        let metrics = |h: &Hash256| {
            self.known_tx_sets
                .get(h)
                .map(|s| (s.op_count(), s.total_fees()))
        };
        StellarValue::combine(&parsed, metrics).map(|v| v.to_scp())
    }

    fn emit_envelope(&mut self, envelope: &Envelope) {
        let class = envelope.statement.kind.class_name();
        self.telemetry.registry.inc(envelope_out_key(class));
        self.telemetry.trace(
            self.clock_ms,
            envelope.statement.slot,
            TraceKind::EnvelopeSent { statement: class },
        );
        self.outbox.push(envelope.clone());
    }

    fn set_timer(&mut self, slot: SlotIndex, kind: TimerKind, delay: Option<Duration>) {
        let timer = timer_name(kind);
        match delay {
            Some(d) => {
                self.telemetry.registry.inc("scp.timer_arms");
                self.telemetry.trace(
                    self.clock_ms,
                    slot,
                    TraceKind::TimerArmed {
                        timer,
                        delay_ms: d.as_millis() as u64,
                    },
                );
            }
            None => {
                self.telemetry
                    .trace(self.clock_ms, slot, TraceKind::TimerCanceled { timer });
            }
        }
        self.timer_requests.push((slot, kind, delay));
    }

    fn externalized(&mut self, slot: SlotIndex, value: &Value) {
        self.pending_externalize.push((slot, value.clone()));
    }

    fn public_key(&self, node: NodeId) -> Option<PublicKey> {
        self.key_registry.get(&node).copied()
    }

    fn on_event(&mut self, event: ScpEvent) {
        let t = self.clock_ms;
        match &event {
            ScpEvent::NominationStarted { slot } => {
                self.telemetry.registry.inc("scp.nomination_started");
                self.telemetry.trace(
                    t,
                    *slot,
                    TraceKind::Phase {
                        phase: "nomination",
                    },
                );
            }
            ScpEvent::NominationRoundStarted { slot, round } => {
                self.telemetry.nomination_round(t, *slot, *round);
            }
            ScpEvent::NewCandidate { slot, .. } => {
                self.telemetry.registry.inc("scp.candidates");
                self.telemetry
                    .trace(t, *slot, TraceKind::Phase { phase: "candidate" });
            }
            ScpEvent::BallotBumped { slot, counter } => {
                self.telemetry.registry.inc("scp.ballot_bumps");
                self.telemetry
                    .trace(t, *slot, TraceKind::BallotBump { counter: *counter });
            }
            ScpEvent::AcceptedPrepared { slot, counter } => {
                self.telemetry.registry.inc("scp.accepted_prepared");
                self.telemetry.trace(
                    t,
                    *slot,
                    TraceKind::QuorumThreshold {
                        milestone: "accept-prepare",
                        counter: *counter,
                    },
                );
            }
            ScpEvent::ConfirmedPrepared { slot, counter } => {
                self.telemetry.registry.inc("scp.confirmed_prepared");
                self.telemetry.trace(
                    t,
                    *slot,
                    TraceKind::QuorumThreshold {
                        milestone: "confirm-prepare",
                        counter: *counter,
                    },
                );
            }
            ScpEvent::AcceptedCommit { slot, counter } => {
                self.telemetry.registry.inc("scp.accepted_commit");
                self.telemetry.trace(
                    t,
                    *slot,
                    TraceKind::QuorumThreshold {
                        milestone: "accept-commit",
                        counter: *counter,
                    },
                );
            }
            ScpEvent::TimeoutFired { slot, kind } => {
                self.telemetry.registry.inc(match kind {
                    TimerKind::Nomination => "scp.timeout.nomination",
                    TimerKind::Ballot => "scp.timeout.ballot",
                });
                self.telemetry.trace(
                    t,
                    *slot,
                    TraceKind::TimerFired {
                        timer: timer_name(*kind),
                    },
                );
            }
            ScpEvent::Externalized { slot, .. } => {
                self.telemetry.slot_externalized(t, *slot);
            }
            ScpEvent::EnvelopeProcessed { slot, from, kind } => {
                self.telemetry.registry.inc(envelope_in_key(kind));
                self.telemetry.trace(
                    t,
                    *slot,
                    TraceKind::EnvelopeReceived {
                        statement: kind,
                        from: from.0,
                    },
                );
            }
        }
        self.events.push((self.clock_ms, event));
    }

    fn ballot_timeout(&self, counter: u32) -> Duration {
        // Production stellar-core: (counter + 1) seconds, capped.
        Duration::from_secs(u64::from(counter.min(59)) + 1)
    }

    fn nomination_timeout(&self, round: u32) -> Duration {
        // §7.2: "a 1-second timeout in nomination leader selection",
        // growing linearly per round.
        Duration::from_secs(u64::from(round.min(59)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::KeyPair;
    use stellar_ledger::amount::{xlm, BASE_FEE};
    use stellar_ledger::asset::Asset;
    use stellar_ledger::entry::{AccountEntry, AccountId};
    use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(0xDE5 + n)
    }

    fn acct(n: u64) -> AccountId {
        AccountId(keys(n).public())
    }

    fn herder() -> Herder {
        let mut store = LedgerStore::new();
        for i in 0..3 {
            store.put_account(AccountEntry::new(acct(i), xlm(100)));
        }
        let mut h = Herder::new(NodeId(0), store, BTreeMap::new());
        h.now = 100;
        h
    }

    fn payment_env(h: &Herder, from: u64, to: u64, seq: u64) -> TransactionEnvelope {
        let _ = h;
        TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(to),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&keys(from)],
        )
    }

    #[test]
    fn proposal_close_time_moves_forward() {
        let mut h = herder();
        h.header.close_time = 500;
        h.now = 400; // clock behind the chain: still must propose > 500
        let (value, _) = h.make_proposal();
        assert!(value.close_time > 500);
    }

    #[test]
    fn validate_rejects_stale_and_far_future_close_times() {
        let mut h = herder();
        h.header.close_time = 100;
        let (value, set) = h.make_proposal();
        h.learn_tx_set(set);
        // A good value is fully validated.
        assert_eq!(
            h.validate_value(2, &value.to_scp(), true),
            Validity::FullyValidated
        );
        // Stale close time.
        let mut stale = value.clone();
        stale.close_time = 100;
        assert_eq!(
            h.validate_value(2, &stale.to_scp(), true),
            Validity::Invalid
        );
        // Close time beyond now + slip is rejected in nomination but
        // tolerated in balloting (others may have confirmed it).
        let mut future = value.clone();
        future.close_time = h.now + h.max_time_slip + 10;
        assert_eq!(
            h.validate_value(2, &future.to_scp(), true),
            Validity::Invalid
        );
        assert_eq!(
            h.validate_value(2, &future.to_scp(), false),
            Validity::FullyValidated
        );
    }

    #[test]
    fn unknown_tx_set_maybe_valid_in_ballot_invalid_in_nomination() {
        let mut h = herder();
        let unknown = StellarValue::new(stellar_crypto::sha256::sha256(b"nope"), h.now + 1);
        assert_eq!(
            h.validate_value(2, &unknown.to_scp(), true),
            Validity::Invalid
        );
        assert_eq!(
            h.validate_value(2, &unknown.to_scp(), false),
            Validity::MaybeValid
        );
    }

    #[test]
    fn tx_set_chaining_from_wrong_header_invalid() {
        let mut h = herder();
        let foreign = TransactionSet::empty(stellar_crypto::sha256::sha256(b"other-chain"));
        h.learn_tx_set(foreign.clone());
        let v = StellarValue::new(foreign.hash(), h.now + 1);
        assert_eq!(h.validate_value(2, &v.to_scp(), true), Validity::Invalid);
        assert_eq!(h.validate_value(2, &v.to_scp(), false), Validity::Invalid);
    }

    #[test]
    fn malformed_scp_value_invalid() {
        let mut h = herder();
        let garbage = Value::new(vec![1, 2, 3]);
        assert_eq!(h.validate_value(2, &garbage, false), Validity::Invalid);
    }

    #[test]
    fn stalled_externalize_applies_when_tx_set_arrives() {
        let mut h = herder();
        let env = payment_env(&h, 0, 1, 1);
        let set = TransactionSet::assemble(h.header.hash(), vec![env], 100);
        let value = StellarValue::new(set.hash(), h.now + 1);
        // Externalize before the tx set is known: deferred.
        assert!(!h.apply_externalized(2, &value));
        assert_eq!(h.header.ledger_seq, 1);
        // Learning the set triggers the deferred close.
        h.learn_tx_set(set);
        assert_eq!(h.header.ledger_seq, 2);
        assert_eq!(h.store.account(acct(1)).unwrap().balance, xlm(100) + 1);
    }

    #[test]
    fn out_of_order_externalizations_apply_in_order() {
        let mut h = herder();
        let env2 = payment_env(&h, 0, 1, 1);
        let set2 = TransactionSet::assemble(h.header.hash(), vec![env2], 100);
        let v2 = StellarValue::new(set2.hash(), h.now + 1);
        // Build slot 3's set against the post-slot-2 header: apply slot 2
        // on a scratch herder to learn the future header hash.
        let mut scratch = herder();
        scratch.learn_tx_set(set2.clone());
        assert!(scratch.apply_externalized(2, &v2));
        let env3 = payment_env(&scratch, 1, 2, 1);
        let set3 = TransactionSet::assemble(scratch.header.hash(), vec![env3], 100);
        let v3 = StellarValue::new(set3.hash(), scratch.header.close_time + 1);

        // Deliver slot 3 first (future slot: parked), then slot 2.
        h.learn_tx_set(set3);
        assert!(!h.apply_externalized(3, &v3));
        assert_eq!(h.header.ledger_seq, 1);
        h.learn_tx_set(set2);
        assert!(h.apply_externalized(2, &v2));
        // Slot 3 unparked automatically.
        assert_eq!(h.header.ledger_seq, 3);
        assert_eq!(h.store.account(acct(2)).unwrap().balance, xlm(100) + 1);
    }

    #[test]
    fn close_stats_recorded_per_ledger() {
        let mut h = herder();
        let env = payment_env(&h, 0, 1, 1);
        let set = TransactionSet::assemble(h.header.hash(), vec![env], 100);
        h.learn_tx_set(set.clone());
        let v = StellarValue::new(set.hash(), h.now + 1);
        assert!(h.apply_externalized(2, &v));
        assert_eq!(h.close_stats.len(), 1);
        let cs = &h.close_stats[0];
        assert_eq!(cs.ledger_seq, 2);
        assert_eq!(cs.tx_count, 1);
        assert_eq!(cs.failed_tx_count, 0);
    }
}

//! Network upgrades and federated governance (§5.3).
//!
//! "Upgrades adjust global parameters such as the reserve balance, minimum
//! operation fee, and protocol version. When combined during nomination,
//! higher fees and protocol version numbers supersede lower ones. Upgrades
//! effect governance through a federated-voting tussle space, neither
//! egalitarian nor centralized."
//!
//! Each validator classifies any upgrade as *desired* (actively
//! nominated), *valid* (accepted if others push it), or *invalid* (never
//! accepted). Non-governing validators treat every well-formed upgrade as
//! merely valid, delegating the decision to those who opted into a
//! governance role.

use std::collections::BTreeSet;
use stellar_crypto::codec::{Decode, DecodeError, Encode};
use stellar_ledger::header::LedgerParams;

/// A proposed change to a global chain parameter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Upgrade {
    /// Raise the protocol version.
    ProtocolVersion(u32),
    /// Change the per-operation base fee (stroops).
    BaseFee(i64),
    /// Change the per-entry base reserve (stroops).
    BaseReserve(i64),
    /// Change the per-ledger operation budget.
    MaxTxSetOps(u32),
}

impl Upgrade {
    /// Discriminant grouping upgrades that target the same parameter.
    pub fn kind(&self) -> u8 {
        match self {
            Upgrade::ProtocolVersion(_) => 0,
            Upgrade::BaseFee(_) => 1,
            Upgrade::BaseReserve(_) => 2,
            Upgrade::MaxTxSetOps(_) => 3,
        }
    }

    /// The magnitude used when "higher supersedes lower" within a kind.
    fn magnitude(&self) -> i128 {
        match self {
            Upgrade::ProtocolVersion(v) => i128::from(*v),
            Upgrade::BaseFee(v) | Upgrade::BaseReserve(v) => i128::from(*v),
            Upgrade::MaxTxSetOps(v) => i128::from(*v),
        }
    }

    /// Keeps only the highest upgrade per parameter kind (§5.3 combine
    /// rule).
    pub fn dedup_highest(upgrades: BTreeSet<Upgrade>) -> BTreeSet<Upgrade> {
        let mut best: std::collections::BTreeMap<u8, Upgrade> = Default::default();
        for u in upgrades {
            match best.get(&u.kind()) {
                Some(prev) if prev.magnitude() >= u.magnitude() => {}
                _ => {
                    best.insert(u.kind(), u);
                }
            }
        }
        best.into_values().collect()
    }

    /// Structural sanity: rejects nonsense any implementation must refuse.
    pub fn is_well_formed(&self) -> bool {
        match self {
            Upgrade::ProtocolVersion(v) => *v >= 1,
            Upgrade::BaseFee(v) => *v > 0,
            Upgrade::BaseReserve(v) => *v > 0,
            Upgrade::MaxTxSetOps(v) => *v >= 1,
        }
    }

    /// Whether the parameters already reflect this upgrade (so governing
    /// validators stop re-proposing it).
    pub fn is_satisfied(&self, params: &LedgerParams) -> bool {
        match self {
            Upgrade::ProtocolVersion(v) => params.protocol_version >= *v,
            Upgrade::BaseFee(v) => params.base_fee == *v,
            Upgrade::BaseReserve(v) => params.base_reserve == *v,
            Upgrade::MaxTxSetOps(v) => params.max_tx_set_ops == *v,
        }
    }

    /// Applies this upgrade to the chain parameters.
    pub fn apply(&self, params: &mut LedgerParams) {
        match self {
            Upgrade::ProtocolVersion(v) => {
                params.protocol_version = (*v).max(params.protocol_version)
            }
            Upgrade::BaseFee(v) => params.base_fee = *v,
            Upgrade::BaseReserve(v) => params.base_reserve = *v,
            Upgrade::MaxTxSetOps(v) => params.max_tx_set_ops = *v,
        }
    }
}

impl Encode for Upgrade {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind().encode(out);
        match self {
            Upgrade::ProtocolVersion(v) => v.encode(out),
            Upgrade::BaseFee(v) | Upgrade::BaseReserve(v) => v.encode(out),
            Upgrade::MaxTxSetOps(v) => v.encode(out),
        }
    }
}

impl Decode for Upgrade {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => Upgrade::ProtocolVersion(u32::decode(input)?),
            1 => Upgrade::BaseFee(i64::decode(input)?),
            2 => Upgrade::BaseReserve(i64::decode(input)?),
            3 => Upgrade::MaxTxSetOps(u32::decode(input)?),
            t => return Err(DecodeError::BadTag(t.into())),
        })
    }
}

/// A validator's stance on upgrades (§5.3).
#[derive(Clone, Debug, Default)]
pub struct UpgradePolicy {
    /// Whether this validator participates in governance.
    pub governing: bool,
    /// Upgrades this (governing) validator actively nominates.
    pub desired: BTreeSet<Upgrade>,
}

/// How a validator classifies an upgrade it sees in a nominated value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpgradeVerdict {
    /// Actively nominated (governing validators, desired set).
    Desired,
    /// Accepted if a blocking set pushes it.
    Valid,
    /// Never accepted (malformed / unknown).
    Invalid,
}

impl UpgradePolicy {
    /// Classifies `upgrade` per §5.3.
    ///
    /// Governing validators: desired / valid / invalid by configuration.
    /// Non-governing validators echo anything well-formed ("essentially
    /// delegating the decision").
    pub fn classify(&self, upgrade: &Upgrade) -> UpgradeVerdict {
        if !upgrade.is_well_formed() {
            return UpgradeVerdict::Invalid;
        }
        if self.governing {
            if self.desired.contains(upgrade) {
                UpgradeVerdict::Desired
            } else {
                UpgradeVerdict::Valid
            }
        } else {
            UpgradeVerdict::Valid
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_highest_per_kind() {
        let set: BTreeSet<Upgrade> = [
            Upgrade::BaseFee(100),
            Upgrade::BaseFee(300),
            Upgrade::ProtocolVersion(2),
            Upgrade::ProtocolVersion(1),
            Upgrade::MaxTxSetOps(500),
        ]
        .into();
        let d = Upgrade::dedup_highest(set);
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Upgrade::BaseFee(300)));
        assert!(d.contains(&Upgrade::ProtocolVersion(2)));
        assert!(d.contains(&Upgrade::MaxTxSetOps(500)));
    }

    #[test]
    fn apply_updates_params() {
        let mut p = LedgerParams::default();
        Upgrade::BaseFee(250).apply(&mut p);
        Upgrade::ProtocolVersion(3).apply(&mut p);
        Upgrade::BaseReserve(123).apply(&mut p);
        Upgrade::MaxTxSetOps(42).apply(&mut p);
        assert_eq!(p.base_fee, 250);
        assert_eq!(p.protocol_version, 3);
        assert_eq!(p.base_reserve, 123);
        assert_eq!(p.max_tx_set_ops, 42);
        // Protocol version never regresses.
        Upgrade::ProtocolVersion(1).apply(&mut p);
        assert_eq!(p.protocol_version, 3);
    }

    #[test]
    fn malformed_upgrades_rejected() {
        assert!(!Upgrade::BaseFee(0).is_well_formed());
        assert!(!Upgrade::BaseFee(-5).is_well_formed());
        assert!(!Upgrade::ProtocolVersion(0).is_well_formed());
        assert!(!Upgrade::MaxTxSetOps(0).is_well_formed());
        assert!(Upgrade::BaseReserve(1).is_well_formed());
    }

    #[test]
    fn governance_classification() {
        let governing = UpgradePolicy {
            governing: true,
            desired: [Upgrade::BaseFee(200)].into(),
        };
        assert_eq!(
            governing.classify(&Upgrade::BaseFee(200)),
            UpgradeVerdict::Desired
        );
        assert_eq!(
            governing.classify(&Upgrade::BaseFee(300)),
            UpgradeVerdict::Valid
        );
        assert_eq!(
            governing.classify(&Upgrade::BaseFee(0)),
            UpgradeVerdict::Invalid
        );

        let echo = UpgradePolicy::default();
        assert_eq!(echo.classify(&Upgrade::BaseFee(200)), UpgradeVerdict::Valid);
        assert_eq!(echo.classify(&Upgrade::BaseFee(0)), UpgradeVerdict::Invalid);
    }

    #[test]
    fn codec_roundtrip() {
        use stellar_crypto::codec::Decode;
        for u in [
            Upgrade::ProtocolVersion(7),
            Upgrade::BaseFee(1000),
            Upgrade::BaseReserve(99),
            Upgrade::MaxTxSetOps(1),
        ] {
            assert_eq!(Upgrade::from_bytes(&u.to_bytes()).unwrap(), u);
        }
    }
}

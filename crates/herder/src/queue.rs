//! The pending-transaction queue.
//!
//! Validators accumulate submitted transactions between ledgers and
//! assemble them into the candidate transaction set they nominate. The
//! queue enforces cheap admission checks (signatures, sequence plausibility,
//! minimum fee) and orders per-account transactions by sequence number so
//! a candidate set never contains gaps.

use std::collections::{BTreeMap, HashSet};
use stellar_crypto::Hash256;
use stellar_ledger::amount::BASE_FEE;
use stellar_ledger::entry::AccountId;
use stellar_ledger::sigcache::SigVerifyCache;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::TransactionEnvelope;

/// Why the queue refused a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueError {
    /// Fee bid below the minimum.
    FeeTooLow,
    /// The source account is unknown.
    UnknownSource,
    /// Sequence number is already consumed.
    StaleSequence,
    /// No valid signature from the source account.
    BadSignature,
    /// Duplicate submission.
    Duplicate,
    /// The queue is at capacity — backpressure; retry after a close.
    QueueFull,
}

/// Pending transactions, per source account, ordered by sequence.
#[derive(Debug, Default)]
pub struct TxQueue {
    by_account: BTreeMap<AccountId, BTreeMap<u64, TransactionEnvelope>>,
    seen: HashSet<Hash256>,
    /// Admission cap on queued transactions (`None` = unbounded, the
    /// historical behavior). Set by the Horizon admission layer so a
    /// submit flood backs up at the front end instead of growing the
    /// nomination candidate scan without bound.
    capacity: Option<usize>,
}

impl TxQueue {
    /// An empty queue.
    pub fn new() -> TxQueue {
        TxQueue::default()
    }

    /// Bounds the queue at `capacity` pending transactions; submissions
    /// beyond it are refused with [`QueueError::QueueFull`]. Already
    /// queued transactions are kept even if over the new bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// The configured admission cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of queued transactions.
    pub fn len(&self) -> usize {
        self.by_account.values().map(BTreeMap::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.by_account.is_empty()
    }

    /// Admits a transaction after cheap validity checks against `store`.
    ///
    /// `sig_cache` is the node-level signature-verify cache: the
    /// verification done here is remembered, so the same transaction's
    /// later checks (nomination, apply) hit the cache. Pass
    /// `&mut SigVerifyCache::disabled()` where no node cache exists.
    pub fn submit(
        &mut self,
        store: &LedgerStore,
        env: TransactionEnvelope,
        sig_cache: &mut SigVerifyCache,
    ) -> Result<(), QueueError> {
        let h = env.hash();
        if self.seen.contains(&h) {
            return Err(QueueError::Duplicate);
        }
        if self.capacity.is_some_and(|cap| self.seen.len() >= cap) {
            return Err(QueueError::QueueFull);
        }
        if env.tx.fee < env.tx.min_fee() || env.tx.fee_rate() < BASE_FEE {
            return Err(QueueError::FeeTooLow);
        }
        let account = store
            .account(env.tx.source)
            .ok_or(QueueError::UnknownSource)?;
        if env.tx.seq_num <= account.seq_num {
            return Err(QueueError::StaleSequence);
        }
        // At least one valid signature weighted for the source account.
        let keys = env.valid_signer_keys_cached(sig_cache);
        if account.signing_weight(&keys) == 0 {
            return Err(QueueError::BadSignature);
        }
        self.seen.insert(h);
        self.by_account
            .entry(env.tx.source)
            .or_default()
            .insert(env.tx.seq_num, env);
        Ok(())
    }

    /// Candidate transactions for the next ledger: per account, the
    /// contiguous run starting at `seq_num + 1` (gaps would make later
    /// transactions invalid anyway).
    pub fn candidates(&self, store: &LedgerStore) -> Vec<TransactionEnvelope> {
        let mut out = Vec::new();
        for (account, txs) in &self.by_account {
            let Some(entry) = store.account(*account) else {
                continue;
            };
            let mut next = entry.seq_num + 1;
            while let Some(env) = txs.get(&next) {
                out.push(env.clone());
                next += 1;
            }
        }
        out
    }

    /// Drops transactions that can no longer execute after a ledger close
    /// (consumed or stale sequence numbers).
    pub fn prune(&mut self, store: &LedgerStore) {
        self.by_account.retain(|account, txs| {
            let current = store.account(*account).map_or(u64::MAX, |a| a.seq_num);
            txs.retain(|seq, env| {
                let keep = *seq > current;
                if !keep {
                    self.seen.remove(&env.hash());
                }
                keep
            });
            !txs.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::KeyPair;
    use stellar_ledger::amount::xlm;
    use stellar_ledger::asset::Asset;
    use stellar_ledger::entry::AccountEntry;
    use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction};

    fn keys(n: u64) -> KeyPair {
        KeyPair::from_seed(n)
    }

    fn acct(n: u64) -> AccountId {
        AccountId(keys(n).public())
    }

    fn store() -> LedgerStore {
        let mut s = LedgerStore::new();
        for n in [1, 2] {
            s.put_account(AccountEntry::new(acct(n), xlm(100)));
        }
        s
    }

    fn env(from: u64, seq: u64, fee: i64) -> TransactionEnvelope {
        let k = keys(from);
        TransactionEnvelope::sign(
            Transaction {
                source: acct(from),
                seq_num: seq,
                fee,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: acct(2),
                        asset: Asset::Native,
                        amount: 1,
                    },
                }],
            },
            &[&k],
        )
    }

    fn nc() -> SigVerifyCache {
        SigVerifyCache::disabled()
    }

    #[test]
    fn admits_and_orders_contiguous_sequences() {
        let s = store();
        let mut q = TxQueue::new();
        q.submit(&s, env(1, 2, BASE_FEE), &mut nc()).unwrap();
        q.submit(&s, env(1, 1, BASE_FEE), &mut nc()).unwrap();
        // Gap: not a candidate.
        q.submit(&s, env(1, 5, BASE_FEE), &mut nc()).unwrap();
        let c = q.candidates(&s);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].tx.seq_num, 1);
        assert_eq!(c[1].tx.seq_num, 2);
    }

    #[test]
    fn rejects_bad_submissions() {
        let s = store();
        let mut q = TxQueue::new();
        assert_eq!(
            q.submit(&s, env(1, 1, BASE_FEE - 1), &mut nc()),
            Err(QueueError::FeeTooLow)
        );
        assert_eq!(
            q.submit(&s, env(7, 1, BASE_FEE), &mut nc()),
            Err(QueueError::UnknownSource)
        );
        assert_eq!(
            q.submit(&s, env(1, 0, BASE_FEE), &mut nc()),
            Err(QueueError::StaleSequence)
        );
        let mut unsigned = env(1, 1, BASE_FEE);
        unsigned.signatures.clear();
        assert_eq!(
            q.submit(&s, unsigned, &mut nc()),
            Err(QueueError::BadSignature)
        );
        q.submit(&s, env(1, 1, BASE_FEE), &mut nc()).unwrap();
        assert_eq!(
            q.submit(&s, env(1, 1, BASE_FEE), &mut nc()),
            Err(QueueError::Duplicate)
        );
    }

    #[test]
    fn prune_drops_consumed_sequences() {
        let mut s = store();
        let mut q = TxQueue::new();
        q.submit(&s, env(1, 1, BASE_FEE), &mut nc()).unwrap();
        q.submit(&s, env(1, 2, BASE_FEE), &mut nc()).unwrap();
        // Ledger advanced the account to seq 1.
        let mut a = s.account(acct(1)).unwrap().clone();
        a.seq_num = 1;
        s.put_account(a);
        q.prune(&s);
        assert_eq!(q.len(), 1);
        let c = q.candidates(&s);
        assert_eq!(c[0].tx.seq_num, 2);
        // Pruned hash can be resubmitted (e.g. after a rollback).
        assert_eq!(
            q.submit(&s, env(1, 2, BASE_FEE), &mut nc()),
            Err(QueueError::Duplicate)
        );
    }
}

//! The consensus value for one ledger (§5.3).
//!
//! "For each ledger, Stellar uses SCP to agree on a data structure with
//! three fields: a transaction set hash (including a hash of the previous
//! ledger header), a close time, and upgrades."

use crate::upgrade::Upgrade;
use std::collections::BTreeSet;
use stellar_crypto::codec::{Decode, Encode};
use stellar_crypto::Hash256;
use stellar_scp::Value;

/// What SCP agrees on per ledger.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct StellarValue {
    /// Hash of the proposed transaction set (which itself commits to the
    /// previous ledger header).
    pub tx_set_hash: Hash256,
    /// Proposed ledger close time (seconds).
    pub close_time: u64,
    /// Proposed network upgrades (usually empty).
    pub upgrades: BTreeSet<Upgrade>,
}

stellar_crypto::impl_codec_struct!(StellarValue {
    tx_set_hash,
    close_time,
    upgrades
});

impl StellarValue {
    /// Creates a plain value with no upgrades.
    pub fn new(tx_set_hash: Hash256, close_time: u64) -> StellarValue {
        StellarValue {
            tx_set_hash,
            close_time,
            upgrades: BTreeSet::new(),
        }
    }

    /// Serializes into an opaque SCP value.
    pub fn to_scp(&self) -> Value {
        Value::new(self.to_bytes())
    }

    /// Parses an SCP value back; `None` when malformed (Byzantine node).
    pub fn from_scp(v: &Value) -> Option<StellarValue> {
        StellarValue::from_bytes(v.as_bytes()).ok()
    }

    /// Combines confirmed-nominated candidates into the composite value
    /// (§5.3): "the transaction set with the most operations (breaking
    /// ties by total fees, then transaction set hash), the union of all
    /// upgrades, and the highest close time."
    ///
    /// `set_metrics` resolves a tx-set hash to `(op_count, total_fees)`;
    /// unknown sets rank last (we cannot vouch for their size).
    pub fn combine(
        candidates: &[StellarValue],
        set_metrics: impl Fn(&Hash256) -> Option<(usize, i64)>,
    ) -> Option<StellarValue> {
        let best = candidates.iter().max_by_key(|c| {
            let (ops, fees) = set_metrics(&c.tx_set_hash).unwrap_or((0, 0));
            (ops, fees, c.tx_set_hash)
        })?;
        let close_time = candidates.iter().map(|c| c.close_time).max().unwrap_or(0);
        let mut upgrades: BTreeSet<Upgrade> = BTreeSet::new();
        for c in candidates {
            upgrades.extend(c.upgrades.iter().cloned());
        }
        upgrades = Upgrade::dedup_highest(upgrades);
        Some(StellarValue {
            tx_set_hash: best.tx_set_hash,
            close_time,
            upgrades,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u8) -> Hash256 {
        let mut b = [0u8; 32];
        b[0] = n;
        Hash256(b)
    }

    #[test]
    fn scp_value_roundtrip() {
        let v = StellarValue {
            tx_set_hash: h(1),
            close_time: 1234,
            upgrades: [Upgrade::BaseFee(200)].into(),
        };
        let scp = v.to_scp();
        assert_eq!(StellarValue::from_scp(&scp), Some(v));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert_eq!(StellarValue::from_scp(&Value::new(vec![1, 2, 3])), None);
    }

    #[test]
    fn combine_prefers_most_operations() {
        let a = StellarValue::new(h(1), 100);
        let b = StellarValue::new(h(2), 90);
        let metrics = |hash: &Hash256| match hash.as_bytes()[0] {
            1 => Some((5, 500)),
            2 => Some((9, 100)),
            _ => None,
        };
        let c = StellarValue::combine(&[a, b], metrics).unwrap();
        assert_eq!(c.tx_set_hash, h(2)); // more ops wins despite lower fees
        assert_eq!(c.close_time, 100); // max close time
    }

    #[test]
    fn combine_ties_break_by_fees_then_hash() {
        let a = StellarValue::new(h(1), 10);
        let b = StellarValue::new(h(2), 10);
        // Same ops; b has more fees.
        let metrics = |hash: &Hash256| match hash.as_bytes()[0] {
            1 => Some((5, 100)),
            2 => Some((5, 200)),
            _ => None,
        };
        assert_eq!(
            StellarValue::combine(&[a.clone(), b.clone()], metrics)
                .unwrap()
                .tx_set_hash,
            h(2)
        );
        // Same everything: higher hash wins.
        let eq_metrics = |_: &Hash256| Some((5, 100));
        assert_eq!(
            StellarValue::combine(&[a, b], eq_metrics)
                .unwrap()
                .tx_set_hash,
            h(2)
        );
    }

    #[test]
    fn combine_unions_upgrades_taking_highest() {
        let mut a = StellarValue::new(h(1), 10);
        a.upgrades.insert(Upgrade::BaseFee(200));
        a.upgrades.insert(Upgrade::ProtocolVersion(2));
        let mut b = StellarValue::new(h(1), 10);
        b.upgrades.insert(Upgrade::BaseFee(300));
        let c = StellarValue::combine(&[a, b], |_| Some((1, 1))).unwrap();
        assert!(c.upgrades.contains(&Upgrade::BaseFee(300)));
        assert!(
            !c.upgrades.contains(&Upgrade::BaseFee(200)),
            "lower fee superseded"
        );
        assert!(c.upgrades.contains(&Upgrade::ProtocolVersion(2)));
    }

    #[test]
    fn combine_empty_is_none() {
        assert_eq!(StellarValue::combine(&[], |_| None), None);
    }
}

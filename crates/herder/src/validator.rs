//! A complete validator: SCP node + herder (Fig. 5's `stellar-core`).
//!
//! The [`Validator`] orchestrates one node's life:
//!
//! 1. clients submit transactions ([`Validator::submit_transaction`]);
//! 2. at each ledger trigger, the validator assembles a proposal and
//!    starts nomination ([`Validator::trigger_next_ledger`]);
//! 3. SCP envelopes and timer expiries flow in
//!    ([`Validator::receive_envelope`], [`Validator::on_timer`]);
//! 4. externalized values close the ledger and the cycle repeats.
//!
//! All outputs (envelopes and transaction sets to flood, timers to arm)
//! are buffered in the herder, so the embedding simulator stays fully
//! deterministic.

use crate::herder::Herder;
use crate::queue::QueueError;
use crate::value::StellarValue;
use std::collections::BTreeMap;
use std::time::Duration;
use stellar_crypto::sign::KeyPair;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::TransactionEnvelope;
use stellar_ledger::txset::TransactionSet;
use stellar_scp::driver::TimerKind;
use stellar_scp::{Envelope, NodeId, QuorumSet, ScpNode, SlotIndex};
use stellar_telemetry::SpanPhase;

/// Static reject label for the queue-reject span (no allocation on the
/// submission hot path).
fn queue_reject_reason(e: &QueueError) -> &'static str {
    match e {
        QueueError::FeeTooLow => "fee_too_low",
        QueueError::UnknownSource => "unknown_source",
        QueueError::StaleSequence => "stale_sequence",
        QueueError::BadSignature => "bad_signature",
        QueueError::Duplicate => "duplicate",
        QueueError::QueueFull => "queue_full",
    }
}

/// Everything a validator wants the network layer to do after a step.
#[derive(Debug, Default)]
pub struct Outputs {
    /// SCP envelopes to flood.
    pub envelopes: Vec<Envelope>,
    /// Transaction sets to flood (peers need them to validate values).
    pub tx_sets: Vec<TransactionSet>,
    /// Timer requests: arm (`Some`) or cancel (`None`).
    pub timers: Vec<(SlotIndex, TimerKind, Option<Duration>)>,
}

impl Outputs {
    /// True when nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty() && self.tx_sets.is_empty() && self.timers.is_empty()
    }
}

/// A full Stellar validator node.
pub struct Validator {
    /// The consensus engine.
    pub scp: ScpNode,
    /// The application half.
    pub herder: Herder,
}

impl Validator {
    /// Creates a validator with the given identity, slices, and genesis
    /// ledger state.
    pub fn new(
        id: NodeId,
        keys: KeyPair,
        qset: QuorumSet,
        store: LedgerStore,
        key_registry: BTreeMap<NodeId, stellar_crypto::sign::PublicKey>,
    ) -> Validator {
        Validator {
            scp: ScpNode::new(id, keys, qset),
            herder: Herder::new(id, store, key_registry),
        }
    }

    /// Creates a validator whose ledger state was recovered from a
    /// durable data disk ([`stellar_ledger::LedgerBackend`] recovery)
    /// rather than rebuilt from genesis: the store, bucket list, and
    /// header resume at the last durable close. SCP state starts fresh —
    /// the caller restores it from the write-ahead snapshots.
    pub fn from_recovered(
        id: NodeId,
        keys: KeyPair,
        qset: QuorumSet,
        store: LedgerStore,
        buckets: stellar_buckets::BucketList,
        header: stellar_ledger::header::LedgerHeader,
        key_registry: BTreeMap<NodeId, stellar_crypto::sign::PublicKey>,
    ) -> Validator {
        Validator {
            scp: ScpNode::new(id, keys, qset),
            herder: Herder::from_recovered(id, store, buckets, header, key_registry),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.scp.id()
    }

    /// Updates the wall clock (drives close-time proposals/validation).
    pub fn set_time(&mut self, now_secs: u64) {
        self.herder.now = now_secs;
        self.herder.clock_ms = now_secs * 1000;
    }

    /// Millisecond-resolution clock update (metrics timestamps).
    pub fn set_time_ms(&mut self, now_ms: u64) {
        self.herder.now = now_ms / 1000;
        self.herder.clock_ms = now_ms;
    }

    /// Submits a client transaction to the pending queue, recording the
    /// admit/reject lifecycle span (every node runs admission — the
    /// originating one at submit time, relaying ones on flood receipt).
    pub fn submit_transaction(&mut self, env: TransactionEnvelope) -> Result<(), QueueError> {
        let trace = if self.herder.telemetry.spans.enabled() {
            Some(env.hash().prefix_u64())
        } else {
            None
        };
        let result = self
            .herder
            .queue
            .submit(&self.herder.store, env, &mut self.herder.sig_cache);
        if let Some(trace) = trace {
            let t = self.herder.clock_ms;
            let phase = match &result {
                Ok(()) => SpanPhase::QueueAdmit,
                Err(e) => SpanPhase::QueueReject {
                    reason: queue_reject_reason(e),
                },
            };
            self.herder.telemetry.span(trace, t, phase);
        }
        result
    }

    /// Kicks off consensus for the next ledger: assembles the proposal,
    /// floods its transaction set, and starts nomination.
    pub fn trigger_next_ledger(&mut self) -> Outputs {
        let slot = self.herder.current_slot();
        let (value, set) = self.herder.make_proposal();
        self.scp.propose(&mut self.herder, slot, value.to_scp());
        let mut out = self.drain();
        out.tx_sets.push(set);
        out
    }

    /// Replaces this node's quorum slices at runtime and re-evaluates
    /// the slot in flight (§3.1.1 allows unilateral retuning at any
    /// time). A node stalled on an unsatisfiable configuration emits no
    /// envelopes and arms no timers, so the re-step here is what lets a
    /// halt-and-reconfigure heal actually resume consensus.
    pub fn reconfigure_quorum_set(&mut self, qset: QuorumSet) -> Outputs {
        let slot = self.herder.current_slot();
        self.scp
            .set_quorum_set_and_reevaluate(&mut self.herder, qset, slot);
        self.process_externalized();
        self.drain()
    }

    /// Handles an incoming SCP envelope.
    pub fn receive_envelope(&mut self, env: &Envelope) -> Outputs {
        self.scp.receive(&mut self.herder, env);
        self.process_externalized();
        self.drain()
    }

    /// Handles an incoming transaction set from a peer.
    pub fn receive_tx_set(&mut self, set: TransactionSet) -> Outputs {
        self.herder.learn_tx_set(set);
        // A nominated value referencing this set may now be votable.
        let slot = self.herder.current_slot();
        self.scp.retry_nomination(&mut self.herder, slot);
        self.process_externalized();
        self.drain()
    }

    /// Handles a timer expiry the embedder scheduled earlier.
    pub fn on_timer(&mut self, slot: SlotIndex, kind: TimerKind) -> Outputs {
        self.scp.on_timeout(&mut self.herder, slot, kind);
        self.process_externalized();
        self.drain()
    }

    /// Moves freshly externalized values into ledger closes.
    fn process_externalized(&mut self) {
        let pending = std::mem::take(&mut self.herder.pending_externalize);
        for (slot, value) in pending {
            if let Some(sv) = StellarValue::from_scp(&value) {
                self.herder.apply_externalized(slot, &sv);
            }
        }
        // Old slots' SCP state is only useful for stragglers; keep a
        // short window.
        let keep_from = self.herder.current_slot().saturating_sub(4);
        self.scp.prune_slots_below(keep_from);
    }

    /// The latest closed ledger sequence.
    pub fn ledger_seq(&self) -> u64 {
        self.herder.header.ledger_seq
    }

    /// This node's own latest SCP envelopes for the slot in progress,
    /// for the peer-connect state exchange (see
    /// [`stellar_scp::ScpNode::own_latest_envelopes`]).
    pub fn scp_state_envelopes(&self) -> Vec<Envelope> {
        self.scp.own_latest_envelopes(self.herder.current_slot())
    }

    /// The transaction sets backing [`Self::scp_state_envelopes`].
    /// Tx sets flood separately from votes, so a reconnecting peer that
    /// learns our votes also needs the sets those values name — without
    /// them it cannot validate the values and nomination deadlocks
    /// (production stellar-core serves these on demand via
    /// `GET_TX_SET`; the simulation pushes them with the state).
    pub fn scp_state_tx_sets(&self) -> Vec<TransactionSet> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for env in self.scp_state_envelopes() {
            for value in env.statement.kind.values() {
                let Some(sv) = StellarValue::from_scp(&value) else {
                    continue;
                };
                if seen.insert(sv.tx_set_hash) {
                    if let Some(set) = self.herder.known_tx_sets.get(&sv.tx_set_hash) {
                        out.push(set.clone());
                    }
                }
            }
        }
        out
    }

    /// Rebuilds in-memory SCP state from the durable store after a crash
    /// restart: every snapshotted slot at or above the current one is
    /// restored (timers re-arm, decided values re-notify), then any
    /// decided-but-unapplied value is pushed through the close path.
    /// Returns the number of slots restored.
    pub fn recover_scp_state(&mut self) -> usize {
        let current = self.herder.current_slot();
        let mut restored = 0;
        for snap in self.herder.recover_scp_snapshots() {
            if snap.index >= current {
                self.scp.restore_slot(&mut self.herder, snap);
                restored += 1;
            }
        }
        self.process_externalized();
        restored
    }

    /// Drains buffered outputs through the write-ahead gate — embedder
    /// hook for out-of-band steps (crash recovery restores re-arm timers
    /// that must reach the event loop).
    pub fn drain_outputs(&mut self) -> Outputs {
        self.drain()
    }

    fn drain(&mut self) -> Outputs {
        let envelopes = self.herder.take_outbox();
        let timers = self.herder.take_timer_requests();
        // Write-ahead discipline (§5.4): our SCP state must be durable
        // before any envelope derived from it reaches the network — a
        // crash between emitting and persisting would let the restarted
        // node contradict votes peers already hold. On a failed fsync the
        // envelopes stay queued; a later drain retries the sync.
        let envelopes = if envelopes.is_empty() {
            envelopes
        } else {
            let snaps = self.scp.snapshot_slots();
            if self.herder.persist_scp(&snaps) {
                envelopes
            } else {
                self.herder.outbox.splice(0..0, envelopes);
                Vec::new()
            }
        };
        Outputs {
            envelopes,
            tx_sets: Vec::new(),
            timers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_crypto::sign::PublicKey;
    use stellar_ledger::amount::{xlm, BASE_FEE};
    use stellar_ledger::asset::Asset;
    use stellar_ledger::entry::{AccountEntry, AccountId};
    use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction};

    /// A tiny 4-validator network driven synchronously, asserting the
    /// full pipeline: submit → nominate → ballot → externalize → close.
    struct MiniNet {
        validators: Vec<Validator>,
        timers: BTreeMap<(usize, SlotIndex, TimerKind), u64>,
        now_ms: u64,
    }

    fn user_keys(n: u64) -> KeyPair {
        KeyPair::from_seed(1000 + n)
    }

    fn user(n: u64) -> AccountId {
        AccountId(user_keys(n).public())
    }

    fn genesis() -> LedgerStore {
        let mut s = LedgerStore::new();
        for n in 0..4 {
            s.put_account(AccountEntry::new(user(n), xlm(1000)));
        }
        s
    }

    impl MiniNet {
        fn new(n: u32) -> MiniNet {
            let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
            let qset = QuorumSet::majority(ids.clone());
            let registry: BTreeMap<NodeId, PublicKey> = ids
                .iter()
                .map(|id| (*id, KeyPair::from_seed(u64::from(id.0)).public()))
                .collect();
            let validators = ids
                .iter()
                .map(|id| {
                    Validator::new(
                        *id,
                        KeyPair::from_seed(u64::from(id.0)),
                        qset.clone(),
                        genesis(),
                        registry.clone(),
                    )
                })
                .collect();
            MiniNet {
                validators,
                timers: BTreeMap::new(),
                now_ms: 1000,
            }
        }

        fn route(&mut self, from: usize, out: Outputs) {
            let mut queue = vec![(from, out)];
            while let Some((src, out)) = queue.pop() {
                for (slot, kind, delay) in out.timers {
                    match delay {
                        Some(d) => {
                            self.timers
                                .insert((src, slot, kind), self.now_ms + d.as_millis() as u64);
                        }
                        None => {
                            self.timers.remove(&(src, slot, kind));
                        }
                    }
                }
                for env in out.envelopes {
                    for i in 0..self.validators.len() {
                        if i != src {
                            let o = self.validators[i].receive_envelope(&env);
                            queue.push((i, o));
                        }
                    }
                }
                for set in out.tx_sets {
                    for i in 0..self.validators.len() {
                        if i != src {
                            let o = self.validators[i].receive_tx_set(set.clone());
                            queue.push((i, o));
                        }
                    }
                }
            }
        }

        fn run_ledger(&mut self) {
            let slot = self.validators[0].herder.current_slot();
            for i in 0..self.validators.len() {
                let now = self.now_ms / 1000;
                self.validators[i].set_time(now);
                let out = self.validators[i].trigger_next_ledger();
                self.route(i, out);
            }
            // Fire timers until everyone closed the slot.
            for _ in 0..200 {
                if self.validators.iter().all(|v| v.ledger_seq() >= slot) {
                    return;
                }
                let Some(((i, s, k), deadline)) = self
                    .timers
                    .iter()
                    .min_by_key(|(_, d)| **d)
                    .map(|(k, d)| (*k, *d))
                else {
                    break;
                };
                self.now_ms = self.now_ms.max(deadline);
                self.timers.remove(&(i, s, k));
                self.validators[i].set_time(self.now_ms / 1000);
                let out = self.validators[i].on_timer(s, k);
                self.route(i, out);
            }
            panic!("ledger {slot} did not close");
        }
    }

    #[test]
    fn empty_ledgers_close() {
        let mut net = MiniNet::new(4);
        net.now_ms = 5000;
        net.run_ledger();
        for v in &net.validators {
            assert_eq!(v.ledger_seq(), 2);
        }
        // All headers identical.
        let h0 = net.validators[0].herder.header.hash();
        for v in &net.validators[1..] {
            assert_eq!(v.herder.header.hash(), h0);
        }
    }

    #[test]
    fn payment_flows_through_consensus() {
        let mut net = MiniNet::new(4);
        net.now_ms = 5000;
        let k = user_keys(0);
        let tx = Transaction {
            source: user(0),
            seq_num: 1,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::Text("hello".into()),
            operations: vec![SourcedOperation {
                source: None,
                op: Operation::Payment {
                    destination: user(1),
                    asset: Asset::Native,
                    amount: xlm(7),
                },
            }],
        };
        let env = TransactionEnvelope::sign(tx, &[&k]);
        // Transactions flood to every validator before nomination (the
        // overlay's job); submit everywhere so any leader proposes it.
        for v in &mut net.validators {
            v.submit_transaction(env.clone()).unwrap();
        }
        net.run_ledger();
        for v in &net.validators {
            assert_eq!(
                v.herder.store.account(user(1)).unwrap().balance,
                xlm(1007),
                "node {} must apply the payment",
                v.id()
            );
            assert_eq!(v.herder.close_stats.last().unwrap().tx_count, 1);
        }
    }

    #[test]
    fn successive_ledgers_chain() {
        let mut net = MiniNet::new(4);
        net.now_ms = 5000;
        net.run_ledger();
        let h2 = net.validators[0].herder.header.clone();
        net.now_ms += 5000;
        net.run_ledger();
        let h3 = net.validators[0].herder.header.clone();
        assert_eq!(h3.ledger_seq, h2.ledger_seq + 1);
        assert_eq!(h3.prev_header_hash, h2.hash());
        assert!(h3.close_time > h2.close_time);
    }
}

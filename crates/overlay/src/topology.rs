//! Peer-graph builders.
//!
//! The overlay topology is distinct from the quorum configuration: peers
//! are who you *talk to*; slices are who you *listen to*. The builders
//! here cover the shapes used in the paper's evaluation: a full mesh (the
//! controlled experiments of §7.3 ran every validator knowing every
//! other), random k-regular gossip graphs (bounded per-node connection
//! counts like the 28-peer production node of §7.4), and the tiered
//! core-plus-watchers shape of the public network (Fig. 7).

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use stellar_scp::NodeId;

/// An undirected peer graph.
#[derive(Clone, Debug, Default)]
pub struct PeerGraph {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl PeerGraph {
    /// A graph with the given nodes and no links.
    pub fn new(nodes: impl IntoIterator<Item = NodeId>) -> PeerGraph {
        PeerGraph {
            adj: nodes.into_iter().map(|n| (n, BTreeSet::new())).collect(),
        }
    }

    /// Adds an undirected link.
    pub fn link(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// The peers of `n`.
    pub fn peers(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.get(&n).into_iter().flatten().copied()
    }

    /// Number of peers of `n` (§7.4 reports 28 connections).
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj.get(&n).map_or(0, BTreeSet::len)
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Total undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Every node linked to every other.
    pub fn full_mesh(nodes: &[NodeId]) -> PeerGraph {
        let mut g = PeerGraph::new(nodes.iter().copied());
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                g.link(*a, *b);
            }
        }
        g
    }

    /// A connected random graph where every node gets ≈`degree` links:
    /// a ring (for connectivity) plus random chords.
    pub fn random_regular<R: Rng + ?Sized>(
        nodes: &[NodeId],
        degree: usize,
        rng: &mut R,
    ) -> PeerGraph {
        let mut g = PeerGraph::new(nodes.iter().copied());
        let n = nodes.len();
        if n < 2 {
            return g;
        }
        // Ring for guaranteed connectivity.
        for i in 0..n {
            g.link(nodes[i], nodes[(i + 1) % n]);
        }
        // Random chords until degrees reach the target.
        let mut shuffled: Vec<NodeId> = nodes.to_vec();
        for _ in 0..degree.saturating_sub(2) {
            shuffled.shuffle(rng);
            for i in 0..n {
                let a = nodes[i];
                let b = shuffled[i];
                if a != b && g.degree(a) < degree && g.degree(b) < degree {
                    g.link(a, b);
                }
            }
        }
        g
    }

    /// The Fig. 7 shape: a densely connected core (tier-one validators)
    /// with watcher nodes each linked to a few core nodes.
    pub fn tiered_core<R: Rng + ?Sized>(
        core: &[NodeId],
        watchers: &[NodeId],
        watcher_links: usize,
        rng: &mut R,
    ) -> PeerGraph {
        let mut g = PeerGraph::full_mesh(core);
        for w in watchers {
            g.adj.entry(*w).or_default();
            let mut targets: Vec<NodeId> = core.to_vec();
            targets.shuffle(rng);
            for t in targets.into_iter().take(watcher_links.max(1)) {
                g.link(*w, t);
            }
        }
        g
    }

    /// Whether the graph is connected (sanity check for experiments).
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.adj.keys().next().copied() else {
            return true;
        };
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                stack.extend(self.peers(n));
            }
        }
        seen.len() == self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn full_mesh_degrees() {
        let g = PeerGraph::full_mesh(&ids(5));
        for n in ids(5) {
            assert_eq!(g.degree(n), 4);
        }
        assert_eq!(g.link_count(), 10);
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_is_connected_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let nodes = ids(30);
        let g = PeerGraph::random_regular(&nodes, 8, &mut rng);
        assert!(g.is_connected());
        for n in &nodes {
            assert!(g.degree(*n) >= 2, "ring guarantees 2");
            assert!(g.degree(*n) <= 9, "degree should stay near target");
        }
    }

    #[test]
    fn tiered_core_links_watchers_to_core() {
        let mut rng = StdRng::seed_from_u64(7);
        let core = ids(5);
        let watchers: Vec<NodeId> = (100..110).map(NodeId).collect();
        let g = PeerGraph::tiered_core(&core, &watchers, 3, &mut rng);
        assert!(g.is_connected());
        for w in &watchers {
            assert!(g.degree(*w) >= 1 && g.degree(*w) <= 3);
            for p in g.peers(*w) {
                assert!(core.contains(&p), "watchers only link to the core");
            }
        }
    }

    #[test]
    fn self_links_ignored() {
        let mut g = PeerGraph::new(ids(2));
        g.link(NodeId(0), NodeId(0));
        assert_eq!(g.degree(NodeId(0)), 0);
    }
}

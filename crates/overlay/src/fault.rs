//! Per-link fault models for chaos testing.
//!
//! A [`LinkFault`] describes how one directed overlay link misbehaves:
//! messages can be dropped, duplicated, delayed, or held back long enough
//! to be reordered behind later traffic. A [`LinkFaultTable`] maps directed
//! links to fault models with an optional network-wide default.
//!
//! The model is sampled per message by the simulator's dedicated fault RNG
//! stream; a link with no configured fault draws nothing, so fault-free
//! links leave the base simulation's random streams untouched and a run
//! with an empty table is bit-identical to one without the table at all.

use rand::Rng;
use std::collections::BTreeMap;
use stellar_scp::NodeId;

/// Probabilistic misbehavior of one directed link.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a second copy of the message is also delivered.
    pub dup_p: f64,
    /// Probability a copy is delayed by an extra [`LinkFault::delay_ms`].
    pub delay_p: f64,
    /// Extra delay range (inclusive, ms) applied when a copy is delayed.
    pub delay_ms: (u64, u64),
    /// Probability a copy is held back behind later traffic (reordering).
    pub reorder_p: f64,
    /// Maximum hold-back (ms) a reordered copy suffers; the draw is
    /// uniform in `1..=reorder_hold_ms`.
    pub reorder_hold_ms: u64,
}

impl LinkFault {
    /// A fault-free link (all probabilities zero).
    pub fn none() -> LinkFault {
        LinkFault::default()
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> LinkFault {
        self.drop_p = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> LinkFault {
        self.dup_p = p;
        self
    }

    /// Sets the delay probability and extra-delay range in ms.
    pub fn with_delay(mut self, p: f64, min_ms: u64, max_ms: u64) -> LinkFault {
        self.delay_p = p;
        self.delay_ms = (min_ms, max_ms.max(min_ms));
        self
    }

    /// Sets the reorder probability with a hold-back window in ms.
    pub fn with_reorder(mut self, p: f64, hold_ms: u64) -> LinkFault {
        self.reorder_p = p;
        self.reorder_hold_ms = hold_ms.max(1);
        self
    }

    /// True when every probability is zero (sampling would be a no-op).
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 && self.reorder_p == 0.0
    }

    /// Samples the fate of one message on this link: the returned vector
    /// holds one extra-delay (ms) per copy to deliver. Empty means the
    /// message was dropped; two entries mean it was duplicated.
    pub fn sample_deliveries<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        if self.drop_p > 0.0 && rng.gen_bool(self.drop_p.min(1.0)) {
            return Vec::new();
        }
        let copies = if self.dup_p > 0.0 && rng.gen_bool(self.dup_p.min(1.0)) {
            2
        } else {
            1
        };
        (0..copies)
            .map(|_| {
                let mut extra = 0u64;
                if self.delay_p > 0.0 && rng.gen_bool(self.delay_p.min(1.0)) {
                    extra += rng.gen_range(self.delay_ms.0..=self.delay_ms.1);
                }
                if self.reorder_p > 0.0 && rng.gen_bool(self.reorder_p.min(1.0)) {
                    extra += rng.gen_range(1..=self.reorder_hold_ms.max(1));
                }
                extra
            })
            .collect()
    }
}

/// Fault assignments for a network's directed links.
#[derive(Clone, Debug, Default)]
pub struct LinkFaultTable {
    default_fault: Option<LinkFault>,
    links: BTreeMap<(NodeId, NodeId), LinkFault>,
}

impl LinkFaultTable {
    /// An empty table: every link behaves perfectly.
    pub fn new() -> LinkFaultTable {
        LinkFaultTable::default()
    }

    /// Applies `fault` to every link without an explicit entry.
    pub fn set_default(&mut self, fault: LinkFault) {
        self.default_fault = if fault.is_none() { None } else { Some(fault) };
    }

    /// Applies `fault` to the directed link `from -> to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, fault: LinkFault) {
        self.links.insert((from, to), fault);
    }

    /// Applies `fault` in both directions between `a` and `b`.
    pub fn set_link_bidirectional(&mut self, a: NodeId, b: NodeId, fault: LinkFault) {
        self.links.insert((a, b), fault.clone());
        self.links.insert((b, a), fault);
    }

    /// Removes every fault (default and per-link).
    pub fn clear(&mut self) {
        self.default_fault = None;
        self.links.clear();
    }

    /// The fault model for `from -> to`, if any applies.
    pub fn get(&self, from: NodeId, to: NodeId) -> Option<&LinkFault> {
        self.links
            .get(&(from, to))
            .or(self.default_fault.as_ref())
            .filter(|f| !f.is_none())
    }

    /// True when no fault is configured anywhere.
    pub fn is_empty(&self) -> bool {
        self.default_fault.is_none() && self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drop_probability_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let fault = LinkFault::none().with_drop(0.5);
        let dropped = (0..10_000)
            .filter(|_| fault.sample_deliveries(&mut rng).is_empty())
            .count();
        assert!((4_000..6_000).contains(&dropped), "got {dropped}");
    }

    #[test]
    fn duplicate_yields_two_copies() {
        let mut rng = StdRng::seed_from_u64(2);
        let fault = LinkFault::none().with_duplicate(1.0);
        assert_eq!(fault.sample_deliveries(&mut rng).len(), 2);
    }

    #[test]
    fn delay_and_reorder_add_latency() {
        let mut rng = StdRng::seed_from_u64(3);
        let fault = LinkFault::none()
            .with_delay(1.0, 50, 100)
            .with_reorder(1.0, 30);
        for _ in 0..100 {
            let d = fault.sample_deliveries(&mut rng);
            assert_eq!(d.len(), 1);
            assert!((51..=130).contains(&d[0]), "delay {}", d[0]);
        }
    }

    #[test]
    fn table_lookup_precedence() {
        let mut t = LinkFaultTable::new();
        assert!(t.get(NodeId(0), NodeId(1)).is_none());
        t.set_default(LinkFault::none().with_drop(0.1));
        t.set_link(NodeId(0), NodeId(1), LinkFault::none().with_drop(0.9));
        assert_eq!(t.get(NodeId(0), NodeId(1)).unwrap().drop_p, 0.9);
        assert_eq!(t.get(NodeId(1), NodeId(0)).unwrap().drop_p, 0.1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn explicit_none_masks_default() {
        let mut t = LinkFaultTable::new();
        t.set_default(LinkFault::none().with_drop(0.5));
        t.set_link(NodeId(2), NodeId(3), LinkFault::none());
        assert!(t.get(NodeId(2), NodeId(3)).is_none(), "healthy override");
        assert!(t.get(NodeId(3), NodeId(2)).is_some());
    }
}

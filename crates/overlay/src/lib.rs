//! The overlay network substrate (§5.4, §7.5).
//!
//! Production Stellar floods transactions and SCP messages over a partial
//! mesh of peer connections using "a naïve flooding protocol" (the paper
//! explicitly defers structured multicast to future work). This crate
//! provides the pieces the simulator composes into that behaviour:
//!
//! * [`message`] — the flooded payload kinds (SCP envelopes,
//!   transaction sets, transactions) plus the pull-mode advert/demand
//!   control messages, each content-addressed for de-duplication;
//! * [`topology`] — peer-graph builders: full mesh, random k-regular
//!   gossip graphs, and the tiered production-like shape of Fig. 7;
//! * [`flood`] — per-node flood state: seen-message cache and relay
//!   fan-out selection;
//! * [`pull`] — pull-mode flooding: the per-node demand scheduler
//!   (advert batching, one-demander-per-hash, timeout retry) and the
//!   bounded payload cache that answers incoming demands;
//! * [`stats`] — per-node traffic counters (messages and bytes in/out)
//!   backing the §7.4 validator-cost numbers;
//! * [`fault`] — per-link drop/duplicate/delay/reorder fault models for
//!   chaos testing (`stellar-chaos` drives these through the simulator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod flood;
pub mod message;
pub mod pull;
pub mod stats;
pub mod topology;

pub use fault::{LinkFault, LinkFaultTable};
pub use flood::FloodState;
pub use message::FloodMessage;
pub use pull::{DemandScheduler, FloodMode, PayloadCache, TickActions, MAX_DEMAND_ATTEMPTS};
pub use stats::{MsgKind, TrafficStats};
pub use topology::PeerGraph;

//! Traffic accounting (§7.4).
//!
//! The paper reports a production validator with 28 peer connections and
//! a quorum of 34 moving 2.78 Mbit/s in and 2.56 Mbit/s out. These
//! counters let the simulator produce the same row.

/// Message/byte counters for one node.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficStats {
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// SCP envelopes *originated* by this node (logical broadcasts,
    /// the §7.2 per-ledger message count).
    pub scp_originated: u64,
}

impl TrafficStats {
    /// Records a received message of `bytes` bytes.
    pub fn recv(&mut self, bytes: usize) {
        self.msgs_in += 1;
        self.bytes_in += bytes as u64;
    }

    /// Records a sent message of `bytes` bytes.
    pub fn send(&mut self, bytes: usize) {
        self.msgs_out += 1;
        self.bytes_out += bytes as u64;
    }

    /// Incoming bandwidth over a wall-clock window, in Mbit/s.
    pub fn mbps_in(&self, seconds: f64) -> f64 {
        self.bytes_in as f64 * 8.0 / 1_000_000.0 / seconds.max(1e-9)
    }

    /// Outgoing bandwidth over a wall-clock window, in Mbit/s.
    pub fn mbps_out(&self, seconds: f64) -> f64 {
        self.bytes_out as f64 * 8.0 / 1_000_000.0 / seconds.max(1e-9)
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.msgs_in += other.msgs_in;
        self.msgs_out += other.msgs_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.scp_originated += other.scp_originated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::default();
        s.recv(100);
        s.recv(50);
        s.send(200);
        assert_eq!(s.msgs_in, 2);
        assert_eq!(s.bytes_in, 150);
        assert_eq!(s.msgs_out, 1);
        assert_eq!(s.bytes_out, 200);
    }

    #[test]
    fn bandwidth_math() {
        let mut s = TrafficStats::default();
        s.recv(1_000_000); // 8 Mbit
        assert!((s.mbps_in(2.0) - 4.0).abs() < 1e-9);
        assert!((s.mbps_out(2.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums() {
        let mut a = TrafficStats::default();
        a.recv(10);
        let mut b = TrafficStats::default();
        b.send(20);
        b.scp_originated = 3;
        a.merge(&b);
        assert_eq!(a.bytes_in, 10);
        assert_eq!(a.bytes_out, 20);
        assert_eq!(a.scp_originated, 3);
    }
}

//! Traffic accounting (§7.4).
//!
//! The paper reports a production validator with 28 peer connections and
//! a quorum of 34 moving 2.78 Mbit/s in and 2.56 Mbit/s out. These
//! counters let the simulator produce the same row, and the per-type
//! split (SCP envelopes vs. transaction sets vs. transactions, plus
//! flood duplicate-suppression hits) feeds the §7.2 traffic table and
//! the telemetry snapshot.

/// The flooded message families, as a traffic-accounting tag: three
/// payload kinds plus the two pull-mode control kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// An SCP envelope.
    Scp,
    /// A transaction set.
    TxSet,
    /// A single transaction.
    Tx,
    /// A pull-mode advert (hash batch announcement).
    Advert,
    /// A pull-mode demand (hash batch request).
    Demand,
}

impl MsgKind {
    /// Stable lowercase name (metric key suffix).
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Scp => "scp",
            MsgKind::TxSet => "tx_set",
            MsgKind::Tx => "tx",
            MsgKind::Advert => "advert",
            MsgKind::Demand => "demand",
        }
    }

    /// Every kind, in index order (for report tables).
    pub const ALL: [MsgKind; 5] = [
        MsgKind::Scp,
        MsgKind::TxSet,
        MsgKind::Tx,
        MsgKind::Advert,
        MsgKind::Demand,
    ];
}

/// Message/byte counters for one node.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficStats {
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// SCP envelopes *originated* by this node (logical broadcasts,
    /// the §7.2 per-ledger message count).
    pub scp_originated: u64,
    /// Received messages by type: `[scp, tx_set, tx, advert, demand]`,
    /// indexable with [`MsgKind`] via [`TrafficStats::in_count`].
    pub in_by_kind: [u64; 5],
    /// Sent messages by type.
    pub out_by_kind: [u64; 5],
    /// Deliveries dropped by the flood seen-cache (duplicate
    /// suppression hits) — the §7.5 cost of naïve flooding.
    pub dup_suppressed: u64,
    /// Pull mode: demanded payloads that arrived.
    pub pull_fulfilled: u64,
    /// Pull mode: demands that expired and were retried (or given up).
    pub pull_timeouts: u64,
}

impl TrafficStats {
    fn idx(kind: MsgKind) -> usize {
        match kind {
            MsgKind::Scp => 0,
            MsgKind::TxSet => 1,
            MsgKind::Tx => 2,
            MsgKind::Advert => 3,
            MsgKind::Demand => 4,
        }
    }

    /// Records a received message of `bytes` bytes (type unknown —
    /// prefer [`TrafficStats::recv_kind`] where the payload is typed).
    pub fn recv(&mut self, bytes: usize) {
        self.msgs_in += 1;
        self.bytes_in += bytes as u64;
    }

    /// Records a received message of a known type.
    pub fn recv_kind(&mut self, kind: MsgKind, bytes: usize) {
        self.recv(bytes);
        self.in_by_kind[Self::idx(kind)] += 1;
    }

    /// Records a sent message of `bytes` bytes.
    pub fn send(&mut self, bytes: usize) {
        self.msgs_out += 1;
        self.bytes_out += bytes as u64;
    }

    /// Records a sent message of a known type.
    pub fn send_kind(&mut self, kind: MsgKind, bytes: usize) {
        self.send(bytes);
        self.out_by_kind[Self::idx(kind)] += 1;
    }

    /// Records a delivery suppressed as a duplicate by the flood cache.
    pub fn dup_hit(&mut self) {
        self.dup_suppressed += 1;
    }

    /// Records a demanded payload arriving (pull mode).
    pub fn record_pull_fulfilled(&mut self) {
        self.pull_fulfilled += 1;
    }

    /// Records `n` demand timeouts expiring on one flood tick.
    pub fn record_pull_timeouts(&mut self, n: u64) {
        self.pull_timeouts += n;
    }

    /// Received-message count for one type.
    pub fn in_count(&self, kind: MsgKind) -> u64 {
        self.in_by_kind[Self::idx(kind)]
    }

    /// Sent-message count for one type.
    pub fn out_count(&self, kind: MsgKind) -> u64 {
        self.out_by_kind[Self::idx(kind)]
    }

    /// Fraction of received messages that were duplicate-suppressed.
    pub fn dup_ratio(&self) -> f64 {
        if self.msgs_in == 0 {
            0.0
        } else {
            self.dup_suppressed as f64 / self.msgs_in as f64
        }
    }

    /// Incoming bandwidth over a wall-clock window, in Mbit/s.
    pub fn mbps_in(&self, seconds: f64) -> f64 {
        self.bytes_in as f64 * 8.0 / 1_000_000.0 / seconds.max(1e-9)
    }

    /// Outgoing bandwidth over a wall-clock window, in Mbit/s.
    pub fn mbps_out(&self, seconds: f64) -> f64 {
        self.bytes_out as f64 * 8.0 / 1_000_000.0 / seconds.max(1e-9)
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.msgs_in += other.msgs_in;
        self.msgs_out += other.msgs_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.scp_originated += other.scp_originated;
        for i in 0..5 {
            self.in_by_kind[i] += other.in_by_kind[i];
            self.out_by_kind[i] += other.out_by_kind[i];
        }
        self.dup_suppressed += other.dup_suppressed;
        self.pull_fulfilled += other.pull_fulfilled;
        self.pull_timeouts += other.pull_timeouts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::default();
        s.recv(100);
        s.recv(50);
        s.send(200);
        assert_eq!(s.msgs_in, 2);
        assert_eq!(s.bytes_in, 150);
        assert_eq!(s.msgs_out, 1);
        assert_eq!(s.bytes_out, 200);
    }

    #[test]
    fn typed_counters_split_by_kind() {
        let mut s = TrafficStats::default();
        s.recv_kind(MsgKind::Scp, 100);
        s.recv_kind(MsgKind::Scp, 100);
        s.recv_kind(MsgKind::Tx, 40);
        s.send_kind(MsgKind::TxSet, 500);
        assert_eq!(s.in_count(MsgKind::Scp), 2);
        assert_eq!(s.in_count(MsgKind::Tx), 1);
        assert_eq!(s.in_count(MsgKind::TxSet), 0);
        assert_eq!(s.out_count(MsgKind::TxSet), 1);
        // Typed records also feed the untyped totals.
        assert_eq!(s.msgs_in, 3);
        assert_eq!(s.bytes_in, 240);
        assert_eq!(s.msgs_out, 1);
    }

    #[test]
    fn dup_suppression_ratio() {
        let mut s = TrafficStats::default();
        assert_eq!(s.dup_ratio(), 0.0);
        for _ in 0..3 {
            s.recv_kind(MsgKind::Scp, 10);
        }
        s.dup_hit();
        assert_eq!(s.dup_suppressed, 1);
        assert!((s.dup_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_math() {
        let mut s = TrafficStats::default();
        s.recv(1_000_000); // 8 Mbit
        assert!((s.mbps_in(2.0) - 4.0).abs() < 1e-9);
        assert!((s.mbps_out(2.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums() {
        let mut a = TrafficStats::default();
        a.recv_kind(MsgKind::Scp, 10);
        a.dup_hit();
        let mut b = TrafficStats::default();
        b.send_kind(MsgKind::Tx, 20);
        b.scp_originated = 3;
        b.dup_hit();
        b.record_pull_fulfilled();
        b.record_pull_timeouts(2);
        a.merge(&b);
        assert_eq!(a.bytes_in, 10);
        assert_eq!(a.bytes_out, 20);
        assert_eq!(a.scp_originated, 3);
        assert_eq!(a.in_count(MsgKind::Scp), 1);
        assert_eq!(a.out_count(MsgKind::Tx), 1);
        assert_eq!(a.dup_suppressed, 2);
        assert_eq!(a.pull_fulfilled, 1);
        assert_eq!(a.pull_timeouts, 2);
    }

    #[test]
    fn pull_control_kinds_tracked() {
        let mut s = TrafficStats::default();
        s.send_kind(MsgKind::Advert, 36);
        s.recv_kind(MsgKind::Demand, 36);
        assert_eq!(s.out_count(MsgKind::Advert), 1);
        assert_eq!(s.in_count(MsgKind::Demand), 1);
        assert_eq!(MsgKind::ALL.len(), 5);
        assert_eq!(MsgKind::Advert.name(), "advert");
        assert_eq!(MsgKind::Demand.name(), "demand");
    }
}

//! Per-node flood state: naïve gossip with de-duplication.
//!
//! "Transactions and SCP messages are broadcast by validators using a
//! naïve flooding protocol" (§7.5). Each node remembers what it has seen
//! and relays new messages to every peer except the one it came from.
//! The seen-cache is bounded and evicts oldest-first, mirroring
//! production's per-ledger flood maps.
//!
//! Eviction additionally honors a **minimum residency**: an id younger
//! than the residency window is never evicted, even when the cache is over
//! capacity (the bound is soft under extreme churn). This breaks relay
//! ping-pong: if eviction were purely size-based, a duplicated message
//! could cycle forever around a loop of peers, each having already evicted
//! it by the time it comes back around. A relay cycle revisits a node in
//! round-trip time — far inside the residency window — so the revisit hits
//! the de-duplication check and the loop dies.

use std::collections::{HashSet, VecDeque};
use stellar_crypto::Hash256;
use stellar_scp::NodeId;

/// Flood bookkeeping for one node.
#[derive(Debug)]
pub struct FloodState {
    seen: HashSet<Hash256>,
    order: VecDeque<(u64, Hash256)>,
    capacity: usize,
    min_residency_ms: u64,
    clock_ms: u64,
}

impl FloodState {
    /// A flood cache remembering up to `capacity` message ids, with no
    /// minimum residency (pure size-based eviction).
    pub fn new(capacity: usize) -> FloodState {
        FloodState::with_min_residency(capacity, 0)
    }

    /// A flood cache where ids seen within the last `min_residency_ms`
    /// are exempt from capacity eviction.
    pub fn with_min_residency(capacity: usize, min_residency_ms: u64) -> FloodState {
        FloodState {
            seen: HashSet::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            min_residency_ms,
            clock_ms: 0,
        }
    }

    /// Whether `id` has been seen (read-only check).
    pub fn contains(&self, id: Hash256) -> bool {
        self.seen.contains(&id)
    }

    /// When this node first saw `id`, if it is still remembered — the
    /// per-node half of the tracing layer's flood-lag attribution (first
    /// network-wide sight vs first local sight). Linear in the retained
    /// window; callers use it per sampled trace, not per delivery.
    pub fn seen_at(&self, id: Hash256) -> Option<u64> {
        self.order
            .iter()
            .find(|(_, seen)| *seen == id)
            .map(|(t, _)| *t)
    }

    /// Clockless convenience for [`FloodState::record_at`]: stamps `id`
    /// with the last known time. Only for contexts with no clock at all
    /// (e.g. topology propagation analyses); anything driven by a
    /// simulation must pass its virtual time to `record_at`.
    pub fn record(&mut self, id: Hash256) -> bool {
        self.record_at(id, self.clock_ms)
    }

    /// Records `id` as seen at `now_ms`; returns `true` if it is new
    /// (and should be processed and relayed) or `false` on a duplicate.
    pub fn record_at(&mut self, id: Hash256, now_ms: u64) -> bool {
        self.clock_ms = self.clock_ms.max(now_ms);
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back((self.clock_ms, id));
        while self.order.len() > self.capacity {
            match self.order.front() {
                Some(&(seen_at, _)) if seen_at + self.min_residency_ms <= self.clock_ms => {
                    let (_, old) = self.order.pop_front().expect("non-empty");
                    self.seen.remove(&old);
                }
                _ => break, // oldest entry still within its residency window
            }
        }
        true
    }

    /// The peers a new message should be relayed to.
    pub fn relay_targets<'a>(
        &self,
        peers: impl Iterator<Item = NodeId> + 'a,
        from: Option<NodeId>,
    ) -> Vec<NodeId> {
        peers.filter(|p| Some(*p) != from).collect()
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> Hash256 {
        let mut b = [0u8; 32];
        b[0] = n;
        Hash256(b)
    }

    #[test]
    fn duplicates_suppressed() {
        let mut f = FloodState::new(10);
        assert!(f.record(id(1)));
        assert!(!f.record(id(1)));
        assert!(f.record(id(2)));
    }

    #[test]
    fn seen_at_reports_first_sight_until_eviction() {
        let mut f = FloodState::new(2);
        f.record_at(id(1), 100);
        assert!(!f.record_at(id(1), 250), "duplicate");
        assert_eq!(f.seen_at(id(1)), Some(100), "first sight, not the dup");
        assert_eq!(f.seen_at(id(9)), None);
        f.record_at(id(2), 300);
        f.record_at(id(3), 400); // evicts 1
        assert_eq!(f.seen_at(id(1)), None);
        assert_eq!(f.seen_at(id(3)), Some(400));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut f = FloodState::new(2);
        f.record(id(1));
        f.record(id(2));
        f.record(id(3)); // evicts 1
        assert_eq!(f.len(), 2);
        assert!(f.record(id(1)), "evicted id is new again");
    }

    #[test]
    fn min_residency_exempts_recent_ids_from_eviction() {
        let mut f = FloodState::with_min_residency(2, 1000);
        f.record_at(id(1), 0);
        f.record_at(id(2), 10);
        f.record_at(id(3), 20); // over capacity, but 1 is only 20ms old
        assert!(f.contains(id(1)), "young ids survive capacity pressure");
        assert_eq!(f.len(), 3, "bound is soft inside the window");
        // Once the window passes, capacity eviction resumes oldest-first.
        f.record_at(id(4), 2000);
        assert!(!f.contains(id(1)));
        assert!(!f.contains(id(2)));
        assert!(f.contains(id(3)) && f.contains(id(4)));
    }

    /// Regression: a message evicted from the seen-cache and re-delivered
    /// (duplicate-delivery fault) must not orbit a relay cycle forever.
    /// With pure size-based eviction each node on the cycle forgets the id
    /// before it comes back around, so every revisit looks fresh and the
    /// message relays indefinitely. Minimum residency keeps the id pinned
    /// long enough that the (fast) revisit hits de-duplication.
    #[test]
    fn evicted_and_redelivered_message_does_not_loop() {
        let loop_deliveries = |mut states: Vec<FloodState>| -> usize {
            // 3 nodes in a relay ring; each hop takes 10 ms. Background
            // traffic floods one new id per node per hop, so a capacity-2
            // cache without residency forgets the looping id every lap.
            let looping = id(255);
            let mut deliveries = 0usize;
            let mut carrier = Some(0usize); // node about to receive `looping`
            let mut uniq = 0u64;
            let mut background = || {
                uniq += 1;
                let mut b = [0u8; 32];
                b[..8].copy_from_slice(&uniq.to_le_bytes());
                b[31] = 1; // distinct from `looping` and the id() helper
                Hash256(b)
            };
            let mut now = 0u64;
            while let Some(node) = carrier.take() {
                deliveries += 1;
                if deliveries > 100 {
                    break; // unbounded loop: bail for the assertion below
                }
                let fresh = states[node].record_at(looping, now);
                for s in states.iter_mut() {
                    s.record_at(background(), now);
                }
                now += 10;
                if fresh {
                    carrier = Some((node + 1) % 3); // relay onward
                }
            }
            deliveries
        };
        let without = loop_deliveries((0..3).map(|_| FloodState::new(2)).collect());
        assert!(without > 100, "capacity-only eviction loops: {without}");
        let with = loop_deliveries(
            (0..3)
                .map(|_| FloodState::with_min_residency(2, 5_000))
                .collect(),
        );
        assert!(
            with <= 4,
            "residency must break the relay loop, got {with} deliveries"
        );
    }

    #[test]
    fn relay_skips_sender() {
        let f = FloodState::new(10);
        let peers = [NodeId(1), NodeId(2), NodeId(3)];
        let targets = f.relay_targets(peers.iter().copied(), Some(NodeId(2)));
        assert_eq!(targets, vec![NodeId(1), NodeId(3)]);
        let all = f.relay_targets(peers.iter().copied(), None);
        assert_eq!(all.len(), 3);
    }
}

#[cfg(test)]
mod propagation_tests {
    use super::*;
    use crate::topology::PeerGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn bfs_flood(graph: &PeerGraph, origin: NodeId) -> (usize, usize) {
        // Simulates flood propagation: returns (nodes reached, total sends).
        let mut states: BTreeMap<NodeId, FloodState> =
            graph.nodes().map(|n| (n, FloodState::new(64))).collect();
        let id = Hash256([7u8; 32]);
        let mut frontier: Vec<(NodeId, Option<NodeId>)> = vec![(origin, None)];
        let mut reached = 0usize;
        let mut sends = 0usize;
        while let Some((node, from)) = frontier.pop() {
            if !states.get_mut(&node).unwrap().record(id) {
                continue;
            }
            reached += 1;
            let targets = states[&node].relay_targets(graph.peers(node), from);
            sends += targets.len();
            for t in targets {
                frontier.push((t, Some(node)));
            }
        }
        (reached, sends)
    }

    #[test]
    fn flood_reaches_every_node_on_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        let nodes: Vec<NodeId> = (0..30).map(NodeId).collect();
        for g in [
            PeerGraph::full_mesh(&nodes),
            PeerGraph::random_regular(&nodes, 6, &mut rng),
        ] {
            let (reached, _) = bfs_flood(&g, NodeId(0));
            assert_eq!(reached, 30, "flood must reach the whole overlay");
        }
    }

    #[test]
    fn sparse_graphs_flood_with_fewer_sends() {
        // The §7.5 point: naïve flooding costs O(edges); sparser overlays
        // transmit less. (Structured multicast would cut this to O(n).)
        let mut rng = StdRng::seed_from_u64(6);
        let nodes: Vec<NodeId> = (0..40).map(NodeId).collect();
        let (_, mesh_sends) = bfs_flood(&PeerGraph::full_mesh(&nodes), NodeId(0));
        let sparse = PeerGraph::random_regular(&nodes, 6, &mut rng);
        let (reached, sparse_sends) = bfs_flood(&sparse, NodeId(0));
        assert_eq!(reached, 40);
        assert!(
            sparse_sends < mesh_sends / 3,
            "{sparse_sends} vs {mesh_sends}"
        );
    }
}

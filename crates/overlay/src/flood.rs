//! Per-node flood state: naïve gossip with de-duplication.
//!
//! "Transactions and SCP messages are broadcast by validators using a
//! naïve flooding protocol" (§7.5). Each node remembers what it has seen
//! and relays new messages to every peer except the one it came from.
//! The seen-cache is bounded and evicts oldest-first, mirroring
//! production's per-ledger flood maps.

use crate::message::FloodMessage;
use std::collections::{HashSet, VecDeque};
use stellar_crypto::Hash256;
use stellar_scp::NodeId;

/// Flood bookkeeping for one node.
#[derive(Debug)]
pub struct FloodState {
    seen: HashSet<Hash256>,
    order: VecDeque<Hash256>,
    capacity: usize,
}

impl FloodState {
    /// A flood cache remembering up to `capacity` message ids.
    pub fn new(capacity: usize) -> FloodState {
        FloodState {
            seen: HashSet::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records a message; returns `true` if it is new (and should be
    /// processed and relayed) or `false` if it is a duplicate.
    pub fn record(&mut self, msg: &FloodMessage) -> bool {
        self.record_id(msg.id())
    }

    /// Whether `id` has been seen (read-only check).
    pub fn contains(&self, id: Hash256) -> bool {
        self.seen.contains(&id)
    }

    /// Id-based variant of [`FloodState::record`].
    pub fn record_id(&mut self, id: Hash256) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    /// The peers a new message should be relayed to.
    pub fn relay_targets<'a>(
        &self,
        peers: impl Iterator<Item = NodeId> + 'a,
        from: Option<NodeId>,
    ) -> Vec<NodeId> {
        peers.filter(|p| Some(*p) != from).collect()
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> Hash256 {
        let mut b = [0u8; 32];
        b[0] = n;
        Hash256(b)
    }

    #[test]
    fn duplicates_suppressed() {
        let mut f = FloodState::new(10);
        assert!(f.record_id(id(1)));
        assert!(!f.record_id(id(1)));
        assert!(f.record_id(id(2)));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut f = FloodState::new(2);
        f.record_id(id(1));
        f.record_id(id(2));
        f.record_id(id(3)); // evicts 1
        assert_eq!(f.len(), 2);
        assert!(f.record_id(id(1)), "evicted id is new again");
    }

    #[test]
    fn relay_skips_sender() {
        let f = FloodState::new(10);
        let peers = [NodeId(1), NodeId(2), NodeId(3)];
        let targets = f.relay_targets(peers.iter().copied(), Some(NodeId(2)));
        assert_eq!(targets, vec![NodeId(1), NodeId(3)]);
        let all = f.relay_targets(peers.iter().copied(), None);
        assert_eq!(all.len(), 3);
    }
}

#[cfg(test)]
mod propagation_tests {
    use super::*;
    use crate::topology::PeerGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn bfs_flood(graph: &PeerGraph, origin: NodeId) -> (usize, usize) {
        // Simulates flood propagation: returns (nodes reached, total sends).
        let mut states: BTreeMap<NodeId, FloodState> =
            graph.nodes().map(|n| (n, FloodState::new(64))).collect();
        let id = Hash256([7u8; 32]);
        let mut frontier: Vec<(NodeId, Option<NodeId>)> = vec![(origin, None)];
        let mut reached = 0usize;
        let mut sends = 0usize;
        while let Some((node, from)) = frontier.pop() {
            if !states.get_mut(&node).unwrap().record_id(id) {
                continue;
            }
            reached += 1;
            let targets = states[&node].relay_targets(graph.peers(node), from);
            sends += targets.len();
            for t in targets {
                frontier.push((t, Some(node)));
            }
        }
        (reached, sends)
    }

    #[test]
    fn flood_reaches_every_node_on_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        let nodes: Vec<NodeId> = (0..30).map(NodeId).collect();
        for g in [
            PeerGraph::full_mesh(&nodes),
            PeerGraph::random_regular(&nodes, 6, &mut rng),
        ] {
            let (reached, _) = bfs_flood(&g, NodeId(0));
            assert_eq!(reached, 30, "flood must reach the whole overlay");
        }
    }

    #[test]
    fn sparse_graphs_flood_with_fewer_sends() {
        // The §7.5 point: naïve flooding costs O(edges); sparser overlays
        // transmit less. (Structured multicast would cut this to O(n).)
        let mut rng = StdRng::seed_from_u64(6);
        let nodes: Vec<NodeId> = (0..40).map(NodeId).collect();
        let (_, mesh_sends) = bfs_flood(&PeerGraph::full_mesh(&nodes), NodeId(0));
        let sparse = PeerGraph::random_regular(&nodes, 6, &mut rng);
        let (reached, sparse_sends) = bfs_flood(&sparse, NodeId(0));
        assert_eq!(reached, 40);
        assert!(
            sparse_sends < mesh_sends / 3,
            "{sparse_sends} vs {mesh_sends}"
        );
    }
}

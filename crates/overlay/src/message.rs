//! Flooded message kinds.

use stellar_crypto::codec::Encode;
use stellar_crypto::Hash256;
use stellar_ledger::tx::TransactionEnvelope;
use stellar_ledger::txset::TransactionSet;
use stellar_scp::Envelope;

/// Anything a node floods to its peers (§5.4: "validators also broadcast
/// any transactions they learn about").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FloodMessage {
    /// An SCP protocol envelope.
    Scp(Envelope),
    /// A proposed transaction set (peers need it to validate values).
    TxSet(TransactionSet),
    /// A client transaction on its way to every queue.
    Tx(TransactionEnvelope),
    /// Pull-mode announcement: content hashes of payloads the sender
    /// holds. Peers demand the ones they lack instead of receiving every
    /// payload on every link.
    Advert(Vec<Hash256>),
    /// Pull-mode request: send me the payloads behind these hashes.
    Demand(Vec<Hash256>),
}

impl FloodMessage {
    /// Content address for flood de-duplication. Advert/demand control
    /// messages are point-to-point and never deduplicated, but still get
    /// a stable id for tracing.
    pub fn id(&self) -> Hash256 {
        match self {
            FloodMessage::Scp(e) => e.hash(),
            FloodMessage::TxSet(s) => s.hash(),
            FloodMessage::Tx(t) => t.hash(),
            FloodMessage::Advert(ids) => hash_id_list(0xAD, ids),
            FloodMessage::Demand(ids) => hash_id_list(0xDE, ids),
        }
    }

    /// Encoded size in bytes (traffic accounting). Control messages are
    /// a count prefix plus 32 bytes per hash — the pull-mode overhead the
    /// E15 bench charges against the payload bytes it saves.
    pub fn wire_size(&self) -> usize {
        match self {
            FloodMessage::Scp(e) => e.to_bytes().len(),
            FloodMessage::TxSet(s) => s.to_bytes().len(),
            FloodMessage::Tx(t) => t.to_bytes().len(),
            FloodMessage::Advert(ids) | FloodMessage::Demand(ids) => 4 + 32 * ids.len(),
        }
    }

    /// True for SCP consensus traffic (the §7.2 message-count metric
    /// counts these, not transaction gossip).
    pub fn is_scp(&self) -> bool {
        matches!(self, FloodMessage::Scp(_))
    }

    /// True for pull-mode control messages (adverts and demands), which
    /// bypass the flood seen-cache and are never relayed.
    pub fn is_pull_control(&self) -> bool {
        matches!(self, FloodMessage::Advert(_) | FloodMessage::Demand(_))
    }

    /// The transaction trace ids this payload propagates — the context
    /// half of distributed tracing. Trace ids are content-derived (the
    /// u64 prefix of a transaction's hash), so no wire format changes:
    /// a `Tx` carries its own id, a `TxSet` carries every member's, and
    /// pull-mode control messages carry the ids of the payload hashes
    /// they announce (a tx payload's flood id *is* its tx hash). SCP
    /// envelopes reference tx sets only by hash and propagate no
    /// per-transaction context.
    pub fn trace_ids(&self) -> Vec<u64> {
        match self {
            FloodMessage::Scp(_) => Vec::new(),
            FloodMessage::TxSet(s) => s.txs.iter().map(|t| t.hash().prefix_u64()).collect(),
            FloodMessage::Tx(t) => vec![t.hash().prefix_u64()],
            FloodMessage::Advert(ids) | FloodMessage::Demand(ids) => {
                ids.iter().map(Hash256::prefix_u64).collect()
            }
        }
    }
}

fn hash_id_list(tag: u8, ids: &[Hash256]) -> Hash256 {
    let mut buf = Vec::with_capacity(1 + 32 * ids.len());
    buf.push(tag);
    for id in ids {
        buf.extend_from_slice(&id.0);
    }
    stellar_crypto::sha256::sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use stellar_crypto::sign::KeyPair;
    use stellar_scp::statement::{Statement, StatementKind};
    use stellar_scp::{NodeId, QuorumSet, Value};

    fn sample_envelope() -> Envelope {
        let keys = KeyPair::from_seed(1);
        Envelope::sign(
            Statement {
                node: NodeId(1),
                slot: 1,
                quorum_set: QuorumSet::threshold_of(1, vec![NodeId(1)]),
                kind: StatementKind::Nominate {
                    voted: [Value::new(b"x".to_vec())].into(),
                    accepted: BTreeSet::new(),
                },
            },
            &keys,
        )
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let a = FloodMessage::Scp(sample_envelope());
        let b = FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO));
        assert_eq!(a.id(), a.id());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn wire_size_positive() {
        assert!(FloodMessage::Scp(sample_envelope()).wire_size() > 0);
        assert!(FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO)).wire_size() > 0);
    }

    #[test]
    fn scp_detection() {
        assert!(FloodMessage::Scp(sample_envelope()).is_scp());
        assert!(!FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO)).is_scp());
    }

    #[test]
    fn trace_ids_are_content_derived_and_consistent() {
        // A Tx's trace id is its flood id's prefix — the propagation
        // invariant the tracing layer leans on.
        let scp = FloodMessage::Scp(sample_envelope());
        assert!(scp.trace_ids().is_empty());
        let h = Hash256([9u8; 32]);
        let advert = FloodMessage::Advert(vec![h]);
        let demand = FloodMessage::Demand(vec![h]);
        assert_eq!(advert.trace_ids(), vec![h.prefix_u64()]);
        assert_eq!(advert.trace_ids(), demand.trace_ids());
        let empty_set = FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO));
        assert!(empty_set.trace_ids().is_empty());
    }

    #[test]
    fn advert_and_demand_are_control_messages() {
        let ids = vec![Hash256([1u8; 32]), Hash256([2u8; 32])];
        let advert = FloodMessage::Advert(ids.clone());
        let demand = FloodMessage::Demand(ids.clone());
        assert!(advert.is_pull_control() && demand.is_pull_control());
        assert!(!FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO)).is_pull_control());
        // Same hash list, different direction: distinct ids.
        assert_ne!(advert.id(), demand.id());
        assert_eq!(advert.id(), FloodMessage::Advert(ids).id());
        // Wire size scales with the batch: count prefix + 32 B per hash.
        assert_eq!(advert.wire_size(), 4 + 64);
        assert_eq!(FloodMessage::Demand(Vec::new()).wire_size(), 4);
    }
}

//! Flooded message kinds.

use stellar_crypto::codec::Encode;
use stellar_crypto::Hash256;
use stellar_ledger::tx::TransactionEnvelope;
use stellar_ledger::txset::TransactionSet;
use stellar_scp::Envelope;

/// Anything a node floods to its peers (§5.4: "validators also broadcast
/// any transactions they learn about").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FloodMessage {
    /// An SCP protocol envelope.
    Scp(Envelope),
    /// A proposed transaction set (peers need it to validate values).
    TxSet(TransactionSet),
    /// A client transaction on its way to every queue.
    Tx(TransactionEnvelope),
}

impl FloodMessage {
    /// Content address for flood de-duplication.
    pub fn id(&self) -> Hash256 {
        match self {
            FloodMessage::Scp(e) => e.hash(),
            FloodMessage::TxSet(s) => s.hash(),
            FloodMessage::Tx(t) => t.hash(),
        }
    }

    /// Encoded size in bytes (traffic accounting).
    pub fn wire_size(&self) -> usize {
        match self {
            FloodMessage::Scp(e) => e.to_bytes().len(),
            FloodMessage::TxSet(s) => s.to_bytes().len(),
            FloodMessage::Tx(t) => t.to_bytes().len(),
        }
    }

    /// True for SCP consensus traffic (the §7.2 message-count metric
    /// counts these, not transaction gossip).
    pub fn is_scp(&self) -> bool {
        matches!(self, FloodMessage::Scp(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use stellar_crypto::sign::KeyPair;
    use stellar_scp::statement::{Statement, StatementKind};
    use stellar_scp::{NodeId, QuorumSet, Value};

    fn sample_envelope() -> Envelope {
        let keys = KeyPair::from_seed(1);
        Envelope::sign(
            Statement {
                node: NodeId(1),
                slot: 1,
                quorum_set: QuorumSet::threshold_of(1, vec![NodeId(1)]),
                kind: StatementKind::Nominate {
                    voted: [Value::new(b"x".to_vec())].into(),
                    accepted: BTreeSet::new(),
                },
            },
            &keys,
        )
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let a = FloodMessage::Scp(sample_envelope());
        let b = FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO));
        assert_eq!(a.id(), a.id());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn wire_size_positive() {
        assert!(FloodMessage::Scp(sample_envelope()).wire_size() > 0);
        assert!(FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO)).wire_size() > 0);
    }

    #[test]
    fn scp_detection() {
        assert!(FloodMessage::Scp(sample_envelope()).is_scp());
        assert!(!FloodMessage::TxSet(TransactionSet::empty(Hash256::ZERO)).is_scp());
    }
}

//! Pull-mode flooding: advert/demand scheduling and the payload cache.
//!
//! Naïve push flooding sends every payload across every link; §7.2 shows
//! the resulting bandwidth is dominated by redundant copies (the
//! duplicate-suppression ratio the traffic stats measure). Pull mode
//! replaces payload pushes with content-addressed gossip: a node that
//! learns a transaction or transaction set **adverts** its hash to its
//! peers, and each peer **demands** the payload from exactly one
//! advertiser, retrying from the next advertiser after a deterministic
//! timeout. Small SCP envelopes stay push — their latency is on the
//! consensus critical path and their size makes pull overhead pointless.
//!
//! This module holds the per-node bookkeeping; the simulator (or a real
//! overlay) supplies the clock, the links, and the tick cadence:
//!
//! * [`DemandScheduler`] — batches outgoing adverts per flood tick and
//!   tracks wanted hashes: who advertised them, whom we demanded from,
//!   and when to give up and try the next advertiser;
//! * [`PayloadCache`] — a bounded FIFO map of recently learned payloads,
//!   from which incoming demands are answered.

use std::collections::{BTreeMap, HashMap, VecDeque};
use stellar_crypto::Hash256;
use stellar_scp::NodeId;

/// How a simulation floods large payloads (transactions and tx sets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FloodMode {
    /// Naïve push flooding: every payload crosses every link (§7.5).
    #[default]
    Push,
    /// Advert/demand gossip: payloads cross a link only when demanded.
    Pull,
}

/// Total demand attempts per hash before the scheduler gives up (each
/// attempt waits one demand timeout). Advertisers are tried round-robin,
/// so transient drops retry a healthy peer before exhaustion.
pub const MAX_DEMAND_ATTEMPTS: u32 = 8;

/// One hash the node still lacks: its advertisers and the outstanding
/// demand, if any.
#[derive(Debug)]
struct Want {
    /// Peers that advertised the hash, in arrival order.
    advertisers: Vec<NodeId>,
    /// Index into `advertisers` of the next peer to try.
    next: usize,
    /// Demand attempts made so far.
    attempts: u32,
    /// Deadline of the outstanding demand (simulated ms).
    deadline_ms: u64,
}

/// What a scheduler tick asks the embedder to transmit.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TickActions {
    /// Hash batch to advertise to every peer (empty: no advert).
    pub adverts: Vec<Hash256>,
    /// Retry demands, grouped per target peer.
    pub demands: Vec<(NodeId, Vec<Hash256>)>,
    /// Demands that expired this tick (telemetry: timeout counter).
    pub timeouts: u64,
    /// The hashes whose demands expired this tick — retried or given
    /// up — so the embedder can attribute the timeout to each trace.
    pub expired: Vec<Hash256>,
}

/// Per-node pull-mode bookkeeping. All state transitions are driven by
/// explicit timestamps, so embedding it in a deterministic simulation
/// keeps runs bit-identical.
#[derive(Debug)]
pub struct DemandScheduler {
    /// Hashes learned since the last tick, to advertise in one batch.
    pending_adverts: Vec<Hash256>,
    /// Hashes we lack, keyed for deterministic iteration.
    wanted: BTreeMap<Hash256, Want>,
    demand_timeout_ms: u64,
}

impl DemandScheduler {
    /// A scheduler that retries an unanswered demand after
    /// `demand_timeout_ms` of simulated time.
    pub fn new(demand_timeout_ms: u64) -> DemandScheduler {
        DemandScheduler {
            pending_adverts: Vec::new(),
            wanted: BTreeMap::new(),
            demand_timeout_ms: demand_timeout_ms.max(1),
        }
    }

    /// Queues a freshly learned payload hash for the next advert batch.
    pub fn queue_advert(&mut self, id: Hash256) {
        if !self.pending_adverts.contains(&id) {
            self.pending_adverts.push(id);
        }
    }

    /// Registers an advert from `from` for hashes the node lacks
    /// (`missing` is pre-filtered by the caller's have-check). Returns
    /// the hashes to demand from `from` right now — those with no other
    /// outstanding demand. Hashes already being demanded elsewhere just
    /// gain `from` as a fallback advertiser for the retry path.
    pub fn on_advert(&mut self, from: NodeId, missing: &[Hash256], now_ms: u64) -> Vec<Hash256> {
        let mut demand_now = Vec::new();
        for id in missing {
            match self.wanted.get_mut(id) {
                Some(w) => {
                    if !w.advertisers.contains(&from) {
                        w.advertisers.push(from);
                    }
                }
                None => {
                    self.wanted.insert(
                        *id,
                        Want {
                            advertisers: vec![from],
                            next: 1,
                            attempts: 1,
                            deadline_ms: now_ms + self.demand_timeout_ms,
                        },
                    );
                    demand_now.push(*id);
                }
            }
        }
        demand_now
    }

    /// Marks a wanted payload as arrived; returns `true` if a demand was
    /// outstanding for it (the fulfilled counter).
    pub fn on_fulfilled(&mut self, id: Hash256) -> bool {
        self.wanted.remove(&id).is_some()
    }

    /// Whether `id` is currently being demanded.
    pub fn is_wanted(&self, id: Hash256) -> bool {
        self.wanted.contains_key(&id)
    }

    /// Demand attempts made so far for a wanted hash (1 = the immediate
    /// first ask). Lets the embedder stamp demand-round span events with
    /// the attempt number.
    pub fn attempt_of(&self, id: Hash256) -> Option<u32> {
        self.wanted.get(&id).map(|w| w.attempts)
    }

    /// One flood tick: drains the advert batch and re-demands every
    /// expired want from its next advertiser (round-robin). Wants that
    /// exhausted [`MAX_DEMAND_ATTEMPTS`] are dropped — a later advert
    /// recreates them.
    pub fn tick(&mut self, now_ms: u64) -> TickActions {
        let adverts = std::mem::take(&mut self.pending_adverts);
        let mut demands: BTreeMap<NodeId, Vec<Hash256>> = BTreeMap::new();
        let mut timeouts = 0u64;
        let mut expired = Vec::new();
        let mut give_up = Vec::new();
        for (id, w) in self.wanted.iter_mut() {
            if w.deadline_ms > now_ms {
                continue;
            }
            timeouts += 1;
            expired.push(*id);
            if w.attempts >= MAX_DEMAND_ATTEMPTS {
                give_up.push(*id);
                continue;
            }
            let peer = w.advertisers[w.next % w.advertisers.len()];
            w.next += 1;
            w.attempts += 1;
            w.deadline_ms = now_ms + self.demand_timeout_ms;
            demands.entry(peer).or_default().push(*id);
        }
        for id in give_up {
            self.wanted.remove(&id);
        }
        TickActions {
            adverts,
            demands: demands.into_iter().collect(),
            timeouts,
            expired,
        }
    }

    /// True when a future tick still has work to do (advert batch to
    /// send or demands to watch for expiry).
    pub fn has_work(&self) -> bool {
        !self.pending_adverts.is_empty() || !self.wanted.is_empty()
    }
}

/// A bounded FIFO map of recently learned payloads, keyed by content
/// hash — the store incoming demands are answered from. Overflow evicts
/// oldest-first: a demand for an evicted payload goes unanswered and the
/// demander retries another advertiser (mirroring production, where a
/// peer may have pruned an old tx set).
#[derive(Debug)]
pub struct PayloadCache<V> {
    map: HashMap<Hash256, V>,
    order: VecDeque<Hash256>,
    capacity: usize,
}

impl<V> PayloadCache<V> {
    /// A cache holding at most `capacity` payloads.
    pub fn new(capacity: usize) -> PayloadCache<V> {
        PayloadCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Inserts a payload (no-op if the hash is already cached).
    pub fn insert(&mut self, id: Hash256, payload: V) {
        if self.map.contains_key(&id) {
            return;
        }
        self.map.insert(id, payload);
        self.order.push_back(id);
        while self.order.len() > self.capacity {
            let old = self.order.pop_front().expect("non-empty");
            self.map.remove(&old);
        }
    }

    /// The payload behind `id`, if still cached.
    pub fn get(&self, id: Hash256) -> Option<&V> {
        self.map.get(&id)
    }

    /// Number of cached payloads.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> Hash256 {
        let mut b = [0u8; 32];
        b[0] = n;
        Hash256(b)
    }

    #[test]
    fn advert_batches_drain_per_tick() {
        let mut s = DemandScheduler::new(400);
        s.queue_advert(id(1));
        s.queue_advert(id(2));
        s.queue_advert(id(1)); // dedup within a batch
        let t = s.tick(100);
        assert_eq!(t.adverts, vec![id(1), id(2)]);
        assert_eq!(s.tick(200).adverts, Vec::<Hash256>::new());
    }

    #[test]
    fn first_advertiser_is_demanded_immediately() {
        let mut s = DemandScheduler::new(400);
        let d = s.on_advert(NodeId(7), &[id(1), id(2)], 1000);
        assert_eq!(d, vec![id(1), id(2)]);
        // A second advertiser of an outstanding hash is only a fallback.
        let d2 = s.on_advert(NodeId(8), &[id(1), id(3)], 1050);
        assert_eq!(d2, vec![id(3)]);
        assert!(s.is_wanted(id(1)) && s.is_wanted(id(3)));
    }

    #[test]
    fn timeout_retries_next_advertiser_round_robin() {
        let mut s = DemandScheduler::new(400);
        s.on_advert(NodeId(7), &[id(1)], 1000);
        s.on_advert(NodeId(8), &[id(1)], 1010);
        // Before the deadline: nothing expires.
        assert_eq!(s.tick(1300).timeouts, 0);
        // After: retry goes to the *second* advertiser.
        let t = s.tick(1400);
        assert_eq!(t.timeouts, 1);
        assert_eq!(t.expired, vec![id(1)]);
        assert_eq!(t.demands, vec![(NodeId(8), vec![id(1)])]);
        assert_eq!(s.attempt_of(id(1)), Some(2), "retry bumped the attempt");
        // Next expiry wraps back to the first.
        let t2 = s.tick(1800);
        assert_eq!(t2.demands, vec![(NodeId(7), vec![id(1)])]);
    }

    #[test]
    fn fulfilled_cancels_the_retry() {
        let mut s = DemandScheduler::new(400);
        s.on_advert(NodeId(7), &[id(1)], 1000);
        assert!(s.on_fulfilled(id(1)));
        assert!(!s.on_fulfilled(id(1)), "second arrival was not wanted");
        assert_eq!(s.tick(2000), TickActions::default());
        assert!(!s.has_work());
    }

    #[test]
    fn exhausted_attempts_drop_the_want() {
        let mut s = DemandScheduler::new(100);
        s.on_advert(NodeId(7), &[id(1)], 0);
        let mut now = 0;
        let mut retries = 0;
        for _ in 0..MAX_DEMAND_ATTEMPTS + 2 {
            now += 100;
            retries += s.tick(now).demands.len();
        }
        assert_eq!(retries as u32, MAX_DEMAND_ATTEMPTS - 1, "bounded retries");
        assert!(!s.is_wanted(id(1)), "given up");
        // A fresh advert recreates the want.
        assert_eq!(s.on_advert(NodeId(9), &[id(1)], now), vec![id(1)]);
    }

    #[test]
    fn payload_cache_bounded_fifo() {
        let mut c: PayloadCache<u32> = PayloadCache::new(2);
        c.insert(id(1), 10);
        c.insert(id(2), 20);
        c.insert(id(2), 99); // duplicate insert ignored
        assert_eq!(c.get(id(2)), Some(&20));
        c.insert(id(3), 30); // evicts id(1)
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(id(1)), None);
        assert_eq!(c.get(id(3)), Some(&30));
    }
}

//! CPU cost of one full SCP consensus round (nomination → externalize)
//! for N in-process nodes — the protocol-logic component of Fig. 11's
//! validator scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_scp::test_harness::InMemoryNetwork;
use stellar_scp::{NodeId, QuorumSet, Value};

fn one_round(n: u32, slot: u64) {
    let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
    let qset = QuorumSet::majority(nodes.clone());
    let mut net = InMemoryNetwork::new(&nodes, &qset, slot);
    for node in &nodes {
        net.propose(*node, slot, Value::new(format!("v{slot}").into_bytes()));
    }
    let decided = net.run_to_quiescence(slot);
    assert_eq!(decided.len(), n as usize);
}

fn bench_scp_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scp_round");
    group.sample_size(10);
    for n in [4u32, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut slot = 0u64;
            b.iter(|| {
                slot += 1;
                one_round(n, slot)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scp_round);
criterion_main!(benches);

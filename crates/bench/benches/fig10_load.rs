//! Fig. 10 (bench form): transaction-rate scaling — one simulated
//! consensus+close cycle at increasing load. Full sweep: `exp_fig10_load`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

fn run_point(rate: f64) {
    let report = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10_000,
        tx_rate: rate,
        target_ledgers: 3,
        seed: 10,
        max_tx_set_ops: 10_000,
        ..SimConfig::default()
    })
    .run_to_completion();
    assert!(report.ledgers.len() >= 3);
}

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_load_3ledgers");
    group.sample_size(10);
    for rate in [50.0f64, 100.0, 200.0] {
        group.bench_with_input(BenchmarkId::from_parameter(rate as u64), &rate, |b, &r| {
            b.iter(|| run_point(r))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

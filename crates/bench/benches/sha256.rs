//! SHA-256 throughput — the hash underpinning bucket hashing, tx-set
//! hashing, and leader selection (§3.2.5, §5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stellar_crypto::sha256::sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(std::hint::black_box(d)))
        });
    }
    group.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    use stellar_crypto::sign::{verify, KeyPair};
    let kp = KeyPair::from_seed(1);
    let msg = b"envelope bytes to sign";
    let sig = kp.sign(msg);
    c.bench_function("schnorr/sign", |b| {
        b.iter(|| kp.sign(std::hint::black_box(msg)))
    });
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| verify(kp.public(), std::hint::black_box(msg), &sig))
    });
}

criterion_group!(benches, bench_sha256, bench_sign_verify);
criterion_main!(benches);

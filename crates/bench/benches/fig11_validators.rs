//! Fig. 11 (bench form): validator-count scaling — one simulated
//! consensus+close cycle at increasing network size. Full sweep:
//! `exp_fig11_validators`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

fn run_point(n: u32) {
    let report = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: n },
        n_accounts: 1_000,
        tx_rate: 20.0,
        target_ledgers: 3,
        seed: 11,
        ..SimConfig::default()
    })
    .run_to_completion();
    assert!(report.ledgers.len() >= 3);
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_validators_3ledgers");
    group.sample_size(10);
    for n in [4u32, 10, 19] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_point(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);

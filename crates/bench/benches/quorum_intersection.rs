//! Quorum-intersection checker cost (E10): §6.2.1 reports that the
//! production closure of 20–30 nodes checks "in a matter of seconds on a
//! single CPU" with Lachowski's optimizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_quorum::criticality::{check_criticality, OrgMap};
use stellar_quorum::intersection::{enjoys_quorum_intersection, FbaSystem};
use stellar_quorum::tiers::{synthesize_all, OrgConfig, Quality};
use stellar_scp::NodeId;

fn tiered_system(n_orgs: u32, per_org: u32) -> (FbaSystem, OrgMap) {
    let orgs: Vec<OrgConfig> = (0..n_orgs)
        .map(|o| {
            let members: Vec<NodeId> = (o * per_org..(o + 1) * per_org).map(NodeId).collect();
            OrgConfig::new(&format!("org{o}"), members, Quality::High)
        })
        .collect();
    let sys = FbaSystem::new(synthesize_all(&orgs));
    let map: OrgMap = orgs
        .iter()
        .map(|o| (o.name.clone(), o.validators.clone()))
        .collect();
    (sys, map)
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_intersection");
    group.sample_size(10);
    // Shapes bounded to the paper's production closure scale (20-32
    // nodes); larger/flatter shapes hit the problem's co-NP-hard tail.
    for (orgs, per) in [(5u32, 3u32), (6, 4), (7, 4), (8, 4)] {
        let (sys, _) = tiered_system(orgs, per);
        let label = format!("{}nodes_{}orgs", orgs * per, orgs);
        group.bench_with_input(BenchmarkId::from_parameter(label), &sys, |b, s| {
            b.iter(|| assert!(enjoys_quorum_intersection(std::hint::black_box(s))))
        });
    }
    group.finish();
}

fn bench_criticality(c: &mut Criterion) {
    let mut group = c.benchmark_group("criticality_scan");
    group.sample_size(10);
    for orgs in [5u32, 7] {
        let (sys, map) = tiered_system(orgs, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(orgs),
            &(sys, map),
            |b, (s, m)| b.iter(|| check_criticality(std::hint::black_box(s), m)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersection, bench_criticality);
criterion_main!(benches);

//! Ledger-update cost: applying transaction sets (the dominant term in
//! Fig. 10's load sweep: "as the transaction set increases in size, it
//! takes longer to commit it to the database").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stellar_bench::{payment_tx_set, store_with_accounts};
use stellar_crypto::Hash256;
use stellar_ledger::apply::close_ledger;
use stellar_ledger::header::{LedgerHeader, LedgerParams};
use stellar_ledger::sigcache::SigVerifyCache;

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_apply");
    group.sample_size(10);
    for (accounts, txs) in [
        (1_000u64, 100u64),
        (10_000, 500),
        (100_000, 500),
        (100_000, 1500),
    ] {
        let store = store_with_accounts(accounts);
        let set = payment_tx_set(&store, accounts, txs);
        let prev = LedgerHeader::genesis(Hash256::ZERO);
        group.throughput(Throughput::Elements(txs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{accounts}acct_{txs}tx")),
            &(store, set, prev),
            |b, (store, set, prev)| {
                b.iter_batched(
                    || store.clone(),
                    |mut s| {
                        close_ledger(
                            &mut s,
                            prev,
                            set,
                            100,
                            LedgerParams::default(),
                            &mut SigVerifyCache::disabled(),
                        )
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);

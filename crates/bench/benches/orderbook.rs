//! Order-book crossing and path payments (E12): the trading substrate
//! behind §5's cross-issuer atomicity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_crypto::sign::PublicKey;
use stellar_ledger::amount::{xlm, Price};
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::{AccountEntry, AccountId};
use stellar_ledger::ops::{apply_operation, ExecEnv};
use stellar_ledger::pathfind::apply_path_payment;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::Operation;

fn acct(n: u64) -> AccountId {
    AccountId(PublicKey(n))
}

/// A store with a maker holding a USD/XLM book of `depth` offers.
fn book(depth: u64) -> (LedgerStore, Asset) {
    let usd = Asset::issued(acct(9), "USD");
    let mut store = LedgerStore::new();
    for id in [1u64, 2, 5, 9] {
        store.put_account(AccountEntry::new(acct(id), xlm(1_000_000)));
    }
    let env = ExecEnv::default();
    let mut d = store.begin();
    apply_operation(
        &mut d,
        acct(5),
        &Operation::ChangeTrust {
            asset: usd.clone(),
            limit: i64::MAX / 8,
        },
        &env,
    )
    .unwrap();
    apply_operation(
        &mut d,
        acct(2),
        &Operation::ChangeTrust {
            asset: usd.clone(),
            limit: i64::MAX / 8,
        },
        &env,
    )
    .unwrap();
    apply_operation(
        &mut d,
        acct(9),
        &Operation::Payment {
            destination: acct(5),
            asset: usd.clone(),
            amount: xlm(100_000),
        },
        &env,
    )
    .unwrap();
    for i in 0..depth {
        apply_operation(
            &mut d,
            acct(5),
            &Operation::ManageOffer {
                offer_id: 0,
                selling: usd.clone(),
                buying: Asset::Native,
                amount: 1000,
                price: Price::new(1 + (i % 50) as u32, 1),
                passive: false,
            },
            &env,
        )
        .unwrap();
    }
    let ch = d.into_changes();
    store.commit(ch);
    (store, usd)
}

fn bench_cross(c: &mut Criterion) {
    let mut group = c.benchmark_group("orderbook_cross");
    group.sample_size(10);
    for depth in [100u64, 1000] {
        let (store, usd) = book(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut d = store.begin();
                // Take half the book.
                let op = Operation::ManageOffer {
                    offer_id: 0,
                    selling: Asset::Native,
                    buying: usd.clone(),
                    amount: xlm(1),
                    price: Price::new(1, 50),
                    passive: false,
                };
                apply_operation(&mut d, acct(2), &op, &ExecEnv::default())
            })
        });
    }
    group.finish();
}

fn bench_path_payment(c: &mut Criterion) {
    let (store, usd) = book(1000);
    c.bench_function("path_payment_direct", |b| {
        b.iter(|| {
            let mut d = store.begin();
            apply_path_payment(
                &mut d,
                acct(2),
                &Asset::Native,
                xlm(100),
                acct(2),
                &usd,
                10_000,
                &[],
                &ExecEnv::default(),
            )
        })
    });
}

criterion_group!(benches, bench_cross, bench_path_payment);
criterion_main!(benches);

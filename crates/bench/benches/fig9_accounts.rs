//! Fig. 9 (bench form): the account-scaling cost drivers — one full
//! simulated consensus+close cycle at increasing account counts.
//!
//! The full sweep with the paper's table lives in `exp_fig9_accounts`;
//! this bench keeps each point small enough for Criterion while exercising
//! the identical code path (real ledger, real buckets, simulated network).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

fn run_point(accounts: u64) {
    let report = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: accounts,
        tx_rate: 20.0,
        target_ledgers: 3,
        seed: 9,
        ..SimConfig::default()
    })
    .run_to_completion();
    assert!(report.ledgers.len() >= 3);
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_accounts_3ledgers");
    group.sample_size(10);
    for accounts in [1_000u64, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(accounts), &accounts, |b, &n| {
            b.iter(|| run_point(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);

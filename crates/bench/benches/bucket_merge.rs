//! Bucket-list maintenance: the snapshot-hashing overhead that Fig. 9
//! attributes to "merging buckets, which get larger" as accounts grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stellar_buckets::BucketList;
use stellar_crypto::sign::PublicKey;
use stellar_ledger::entry::{AccountEntry, AccountId, LedgerEntry, LedgerKey};

fn change(n: u64) -> (LedgerKey, Option<LedgerEntry>) {
    let id = AccountId(PublicKey(n));
    (
        LedgerKey::Account(id),
        Some(LedgerEntry::Account(AccountEntry::new(id, n as i64))),
    )
}

/// Seeds a bucket list with `n` cold accounts, then measures 64 ledger
/// closes of 100 changes each (several level-0/1 spills included).
fn run_closes(seeded: &BucketList, ledgers: u64) {
    let mut bl = seeded.clone();
    for seq in 1..=ledgers {
        let batch: Vec<_> = (0..100).map(|k| change(seq * 1_000_000 + k)).collect();
        bl.add_batch(seq, &batch);
        std::hint::black_box(bl.hash());
    }
}

fn bench_bucket_closes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_close_64_ledgers");
    group.sample_size(10);
    for n in [1_000u64, 10_000, 100_000] {
        let seeded = BucketList::seed(
            (0..n).map(|i| LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(i)), 1))),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &seeded, |b, s| {
            b.iter(|| run_closes(s, 64))
        });
    }
    group.finish();
}

fn bench_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_seed");
    group.sample_size(10);
    for n in [10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut bl =
                    BucketList::seed((0..n).map(|i| {
                        LedgerEntry::Account(AccountEntry::new(AccountId(PublicKey(i)), 1))
                    }));
                std::hint::black_box(bl.hash())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bucket_closes, bench_seed);
criterion_main!(benches);

//! Shared fixtures for benchmarks and experiment binaries.
//!
//! Every table and figure in the paper's §7 has a regeneration target in
//! this crate (see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for
//! recorded outputs):
//!
//! | Paper artifact | Binary | Criterion bench |
//! |----------------|--------|-----------------|
//! | §7.2 public-network stats + message counts (E1, E2) | `exp_public_network` | — |
//! | Fig. 8 timeout percentiles (E3) | `exp_fig8_timeouts` | — |
//! | Fig. 9 latency vs. accounts (E4) | `exp_fig9_accounts` | `fig9_accounts` |
//! | Fig. 10 latency vs. load (E5) | `exp_fig10_load` | `fig10_load` |
//! | Fig. 11 latency vs. validators (E6) | `exp_fig11_validators` | `fig11_validators` |
//! | §7.3 baseline (E7) + close rate (E8) | `exp_baseline` | — |
//! | §7.4 validator cost (E9) | `exp_validator_cost` | — |
//! | §6.2 quorum checks (E10, E11) | `exp_quorum_check` | `quorum_intersection` |
//! | §3/§5.4 crash-restart recovery vs. ledger gap (E16) | `exp_recovery` | — |
//! | §6.2 at 500 orgs + cascade survival frontier (E21) | `exp_cascade` | — |
//! | micro: where the time goes (§7.2 "bottlenecks") | — | `sha256`, `scp_round`, `ledger_apply`, `bucket_merge`, `orderbook` |

#![forbid(unsafe_code)]

use stellar_ledger::amount::BASE_FEE;
use stellar_ledger::asset::Asset;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar_ledger::txset::TransactionSet;
use stellar_sim::loadgen::{genesis_store, user_account, user_keys};
use stellar_telemetry::Json;

/// A genesis store with `n` synthetic accounts (re-exported fixture).
pub fn store_with_accounts(n: u64) -> LedgerStore {
    genesis_store(n, 1000)
}

/// Builds a transaction set of `n_tx` single-payment transactions over a
/// store of `n_accounts` accounts (distinct senders, sequence 1 each).
pub fn payment_tx_set(_store: &LedgerStore, n_accounts: u64, n_tx: u64) -> TransactionSet {
    let txs: Vec<TransactionEnvelope> = (0..n_tx)
        .map(|i| {
            let src = i % n_accounts;
            let dst = (i + 1) % n_accounts;
            let keys = user_keys(src);
            let seq = 1 + i / n_accounts;
            let tx = Transaction {
                source: user_account(src),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::None,
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: user_account(dst),
                        asset: Asset::Native,
                        amount: 1 + i as i64,
                    },
                }],
            };
            TransactionEnvelope::sign(tx, &[&keys])
        })
        .collect();
    let prev = stellar_ledger::header::LedgerHeader::genesis(stellar_crypto::Hash256::ZERO);
    TransactionSet::assemble(prev.hash(), txs, u32::MAX)
}

/// Prints a row-aligned table: header then rows of equal-width columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| s.to_string()).collect())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Writes `doc` as `BENCH_<name>.json` next to the text output (schema
/// `stellar-bench/v2`, see EXPERIMENTS.md). The target directory comes
/// from `BENCH_OUT_DIR` (default: the current directory). Returns the
/// written path; rendering is validated by re-parsing before the write
/// so a malformed document fails loudly instead of landing on disk.
pub fn write_bench_json(name: &str, doc: &Json) -> std::io::Result<std::path::PathBuf> {
    let rendered = doc.render_pretty();
    Json::parse(&rendered).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("BENCH_{name}.json does not round-trip: {e:?}"),
        )
    })?;
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, rendered + "\n")?;
    println!("wrote {}", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stellar_ledger::apply::close_ledger;
    use stellar_ledger::header::{LedgerHeader, LedgerParams};
    use stellar_ledger::tx::TxResult;

    #[test]
    fn fixture_tx_sets_apply_cleanly() {
        let mut store = store_with_accounts(100);
        let set = payment_tx_set(&store, 100, 50);
        assert_eq!(set.txs.len(), 50);
        let prev = LedgerHeader::genesis(stellar_crypto::Hash256::ZERO);
        let res = close_ledger(
            &mut store,
            &prev,
            &set,
            100,
            LedgerParams::default(),
            &mut stellar_ledger::sigcache::SigVerifyCache::disabled(),
        );
        assert!(res.results.iter().all(TxResult::is_success));
    }

    #[test]
    fn multi_round_sequences() {
        // More txs than accounts wraps sequences correctly.
        let store = store_with_accounts(10);
        let set = payment_tx_set(&store, 10, 25);
        assert_eq!(set.txs.len(), 25);
    }
}

//! E14/E19 — the ledger-close hot path: closes/sec under a mixed
//! workload, swept across apply-thread counts.
//!
//! Exercises the full per-ledger pipeline a validator pays — submission
//! (signature checks), nomination-style set validation, apply, bucket
//! re-hash — over a sweep of accounts × resting offers × txs/ledger and
//! apply threads 1/2/4/8, and compares against the committed
//! pre-optimization baseline (`BENCH_close_perf_baseline.json`).
//!
//! Every parallel run doubles as a determinism check: its final header
//! hash must equal the sequential run's for the same sweep point, or
//! the bench aborts.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_close_perf [-- --quick]
//! ```

use std::time::Instant;
use stellar_bench::{print_table, write_bench_json};
use stellar_buckets::BucketList;
use stellar_crypto::Hash256;
use stellar_herder::queue::TxQueue;
use stellar_ledger::amount::{xlm, Price, BASE_FEE};
use stellar_ledger::apply::close_ledger;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::{AccountEntry, LedgerEntry, OfferEntry, TrustLineEntry};
use stellar_ledger::header::{LedgerHeader, LedgerParams};
use stellar_ledger::sigcache::SigVerifyCache;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar_ledger::txset::TransactionSet;
use stellar_sim::loadgen::{user_account, user_keys};
use stellar_telemetry::{Histogram, Json};

/// One sweep point.
#[derive(Clone, Copy)]
struct Config {
    accounts: u64,
    offers: u64,
    txs_per_ledger: u64,
    ledgers: u64,
}

/// Measured outcome of one sweep point.
struct Outcome {
    closes_per_sec: f64,
    mean_close_us: f64,
    p50_close_us: u64,
    p99_close_us: u64,
    sig_cache_hits: u64,
    sig_cache_misses: u64,
    txs_applied: u64,
    waves: u64,
    conflict_reruns: u64,
    footprint_fallbacks: u64,
    /// Final externalized header hash — the determinism witness.
    final_header: Hash256,
}

/// Number of dedicated market-maker accounts holding the resting book.
const MAKERS: u64 = 32;

/// User-account index of the USD issuer (placed far past any sweep size).
const ISSUER_IDX: u64 = u64::MAX / 2;

fn usd() -> Asset {
    Asset::issued(user_account(ISSUER_IDX), "USD")
}

/// Builds the genesis store: `accounts` payment users (the first quarter
/// also hold USD trustlines so they can place crossing orders), `MAKERS`
/// makers whose USD inventory backs `offers` resting offers selling USD
/// for XLM at ascending prices.
fn build_store(accounts: u64, offers: u64) -> LedgerStore {
    let usd = usd();
    let mut entries: Vec<LedgerEntry> = Vec::new();
    let takers = taker_count(accounts);
    for i in 0..accounts {
        let mut a = AccountEntry::new(user_account(i), xlm(1_000));
        if i < takers {
            a.num_subentries = 1; // USD trustline below
        }
        entries.push(LedgerEntry::Account(a));
        if i < takers {
            entries.push(LedgerEntry::TrustLine(TrustLineEntry {
                account: user_account(i),
                asset: usd.clone(),
                balance: 0,
                limit: i64::MAX / 2,
                authorized: true,
            }));
        }
    }
    entries.push(LedgerEntry::Account(AccountEntry::new(
        user_account(ISSUER_IDX),
        xlm(1_000),
    )));
    for m in 0..MAKERS {
        let idx = ISSUER_IDX + 1 + m;
        let per_maker = offers / MAKERS + 1;
        let mut a = AccountEntry::new(user_account(idx), xlm(100_000));
        a.num_subentries = 1 + per_maker as u32;
        entries.push(LedgerEntry::Account(a));
        entries.push(LedgerEntry::TrustLine(TrustLineEntry {
            account: user_account(idx),
            asset: usd.clone(),
            balance: i64::MAX / 4,
            limit: i64::MAX / 2,
            authorized: true,
        }));
    }
    for o in 0..offers {
        entries.push(LedgerEntry::Offer(OfferEntry {
            id: o + 1,
            account: user_account(ISSUER_IDX + 1 + (o % MAKERS)),
            selling: usd.clone(),
            buying: Asset::Native,
            amount: 1_000_000_000,
            // Ascending asks: 1.00, 1.01, … XLM per USD; takers cross only
            // the best few, but a naive matcher pays for the whole book.
            price: Price::new(100 + (o % 512) as u32, 100),
            passive: false,
        }));
    }
    LedgerStore::from_entries(entries)
}

/// How many user accounts carry a USD trustline (candidate order takers).
fn taker_count(accounts: u64) -> u64 {
    (accounts / 4).max(8)
}

/// Builds one ledger's transaction batch: 80% payments, 20% crossing
/// orders, with per-account sequence numbers threaded via `next_seq`.
fn build_batch(
    cfg: &Config,
    ledger: u64,
    next_seq: &mut std::collections::HashMap<u64, u64>,
) -> Vec<TransactionEnvelope> {
    let takers = taker_count(cfg.accounts);
    let payers = cfg.accounts - takers;
    let mut out = Vec::with_capacity(cfg.txs_per_ledger as usize);
    for t in 0..cfg.txs_per_ledger {
        let n = ledger * cfg.txs_per_ledger + t;
        let crossing = t % 5 == 4;
        let src = if crossing {
            n % takers
        } else {
            // Payment senders drawn from the upper (trustline-free) range
            // so order takers and payers don't contend on sequences.
            takers + (n % payers)
        };
        let seq = {
            let s = next_seq.entry(src).or_insert(1);
            let v = *s;
            *s += 1;
            v
        };
        let op = if crossing {
            // Sell 100 stroops of XLM for USD at 1 USD/XLM: crosses the
            // book's best asks and fully fills (no residue offer).
            Operation::ManageOffer {
                offer_id: 0,
                selling: Asset::Native,
                buying: usd(),
                amount: 100,
                price: Price::new(1, 1),
                passive: false,
            }
        } else {
            // Destination half the payer range away: consecutive senders
            // hit disjoint receivers, so a batch's payments are mutually
            // independent (the realistic case — unrelated users paying
            // unrelated users — and the one the wave scheduler exploits).
            Operation::Payment {
                destination: user_account(takers + ((src - takers + payers / 2) % payers)),
                asset: Asset::Native,
                amount: 1 + (n % 100) as i64,
            }
        };
        let tx = Transaction {
            source: user_account(src),
            seq_num: seq,
            fee: BASE_FEE,
            time_bounds: None,
            memo: Memo::None,
            operations: vec![SourcedOperation { source: None, op }],
        };
        out.push(TransactionEnvelope::sign(tx, &[&user_keys(src)]));
    }
    out
}

/// Runs one sweep point through the submission → nomination-check →
/// close pipeline, timing each close end to end.
fn run_config(cfg: Config, threads: u32) -> Outcome {
    let mut store = build_store(cfg.accounts, cfg.offers);
    let mut buckets = BucketList::seed(store.all_entries());
    let mut header = LedgerHeader::genesis(stellar_crypto::Hash256::ZERO);
    header.snapshot_hash = buckets.hash();
    let params = LedgerParams {
        apply_threads: threads,
        ..LedgerParams::default()
    };
    let mut queue = TxQueue::new();
    // Per-node signature-verify cache, sized as in `Herder::new`.
    let mut sig_cache = SigVerifyCache::new(1 << 16);
    let mut next_seq = std::collections::HashMap::new();
    let mut hist = Histogram::default();
    let mut txs_applied = 0u64;
    let mut waves = 0u64;
    let mut conflict_reruns = 0u64;
    let mut footprint_fallbacks = 0u64;
    let t_all = Instant::now();
    for ledger in 0..cfg.ledgers {
        let batch = build_batch(&cfg, ledger, &mut next_seq);
        let t0 = Instant::now();
        // 1. Admission: queue verifies signatures on submit (warms the
        //    cache for the two later checks).
        for env in batch {
            queue
                .submit(&store, env, &mut sig_cache)
                .expect("bench txs are valid");
        }
        // 2. Nomination-style validation of the candidate set.
        let candidates = queue.candidates(&store);
        let set = TransactionSet::assemble(header.hash(), candidates, u32::MAX);
        let close_time = header.close_time + 5;
        {
            let delta = store.begin();
            for env in &set.txs {
                stellar_ledger::apply::check_validity(
                    &delta,
                    env,
                    close_time,
                    set.base_fee_rate * env.tx.op_count().max(1) as i64,
                    &mut sig_cache,
                )
                .expect("bench txs validate");
            }
        }
        // 3. Apply + snapshot.
        let result = close_ledger(
            &mut store,
            &header,
            &set,
            close_time,
            params,
            &mut sig_cache,
        );
        for r in &result.results {
            assert!(r.is_success(), "bench tx failed: {r:?}");
        }
        waves += result.stats.waves;
        conflict_reruns += result.stats.conflict_reruns;
        footprint_fallbacks += result.stats.footprint_fallbacks;
        buckets.add_batch(result.header.ledger_seq, &result.changes);
        header = result.header;
        header.snapshot_hash = buckets.hash();
        queue.prune(&store);
        txs_applied += set.txs.len() as u64;
        hist.observe(t0.elapsed().as_micros() as u64);
    }
    let total_s = t_all.elapsed().as_secs_f64();
    Outcome {
        closes_per_sec: cfg.ledgers as f64 / total_s,
        mean_close_us: hist.mean(),
        p50_close_us: hist.quantile(50.0),
        p99_close_us: hist.quantile(99.0),
        sig_cache_hits: sig_cache.hits(),
        sig_cache_misses: sig_cache.misses(),
        txs_applied,
        waves,
        conflict_reruns,
        footprint_fallbacks,
        final_header: header.hash(),
    }
}

/// Loads the committed pre-change baseline, if present.
fn load_baseline() -> Option<Json> {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    for candidate in [
        std::path::Path::new(&dir).join("BENCH_close_perf_baseline.json"),
        std::path::PathBuf::from("BENCH_close_perf_baseline.json"),
    ] {
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            if let Ok(doc) = Json::parse(&text) {
                return Some(doc);
            }
        }
    }
    None
}

/// Baseline closes/sec for a config, from the baseline document.
fn baseline_rate(baseline: &Json, cfg: &Config) -> Option<f64> {
    for r in baseline.get("results")?.as_arr()? {
        let matches = |key: &str, v: u64| r.get(key).and_then(Json::as_f64) == Some(v as f64);
        if matches("accounts", cfg.accounts)
            && matches("offers", cfg.offers)
            && matches("txs_per_ledger", cfg.txs_per_ledger)
        {
            return r.get("closes_per_sec").and_then(Json::as_f64);
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: Vec<Config> = if quick {
        vec![Config {
            accounts: 1_000,
            offers: 100,
            txs_per_ledger: 20,
            ledgers: 8,
        }]
    } else {
        vec![
            Config {
                accounts: 1_000,
                offers: 100,
                txs_per_ledger: 50,
                ledgers: 30,
            },
            Config {
                accounts: 10_000,
                offers: 1_000,
                txs_per_ledger: 100,
                ledgers: 30,
            },
            Config {
                accounts: 20_000,
                offers: 2_000,
                txs_per_ledger: 200,
                ledgers: 20,
            },
        ]
    };
    let thread_sweep: Vec<u32> = if quick { vec![1, 4] } else { vec![1, 2, 4, 8] };

    let baseline = load_baseline();
    println!("=== E14/E19: ledger-close hot path (closes/sec × apply threads) ===\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for cfg in &configs {
        let mut seq: Option<Outcome> = None;
        for &threads in &thread_sweep {
            eprintln!(
                "running {} accounts × {} offers × {} tx/ledger × {} thread(s) …",
                cfg.accounts, cfg.offers, cfg.txs_per_ledger, threads
            );
            let out = run_config(*cfg, threads);
            // Determinism gate: the parallel runs must externalize the
            // exact ledger the sequential run does.
            if let Some(s) = &seq {
                assert_eq!(
                    s.final_header, out.final_header,
                    "parallel apply diverged from sequential at {threads} threads"
                );
            }
            let base = baseline.as_ref().and_then(|b| baseline_rate(b, cfg));
            let speedup_vs_seq = seq.as_ref().map(|s| out.closes_per_sec / s.closes_per_sec);
            rows.push(vec![
                format!("{}", cfg.accounts),
                format!("{}", cfg.offers),
                format!("{}", cfg.txs_per_ledger),
                format!("{threads}"),
                format!("{:.1}", out.closes_per_sec),
                format!("{:.0}", out.mean_close_us),
                format!("{}", out.p50_close_us),
                format!("{}", out.p99_close_us),
                format!("{}", out.conflict_reruns),
                speedup_vs_seq.map_or("-".into(), |s| format!("{s:.2}x")),
                base.map_or("-".into(), |b| format!("{:.2}x", out.closes_per_sec / b)),
            ]);
            let mut r = Json::obj()
                .set("accounts", cfg.accounts)
                .set("offers", cfg.offers)
                .set("txs_per_ledger", cfg.txs_per_ledger)
                .set("ledgers", cfg.ledgers)
                .set("threads", threads as u64)
                .set("txs_applied", out.txs_applied)
                .set("closes_per_sec", out.closes_per_sec)
                .set("mean_close_us", out.mean_close_us)
                .set("p50_close_us", out.p50_close_us)
                .set("p99_close_us", out.p99_close_us)
                .set("sig_cache_hits", out.sig_cache_hits)
                .set("sig_cache_misses", out.sig_cache_misses)
                .set("waves", out.waves)
                .set("conflict_reruns", out.conflict_reruns)
                .set("footprint_fallbacks", out.footprint_fallbacks);
            if let Some(s) = speedup_vs_seq {
                r = r.set("speedup_vs_sequential", s);
            }
            if let Some(b) = base {
                r = r
                    .set("baseline_closes_per_sec", b)
                    .set("speedup_vs_baseline", out.closes_per_sec / b);
            }
            if threads == 1 {
                seq = Some(out);
            }
            results.push(r);
        }
    }
    print_table(
        &[
            "accounts",
            "offers",
            "tx/ledger",
            "thr",
            "closes/s",
            "mean(us)",
            "p50(us)",
            "p99(us)",
            "rerun",
            "vs-1thr",
            "vs-base",
        ],
        &rows,
    );

    let mut doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "close_perf")
        .set("quick", quick)
        .set("results", Json::Arr(results));
    if baseline.is_some() {
        doc = doc.set("baseline_source", "BENCH_close_perf_baseline.json");
    }
    write_bench_json("close_perf", &doc).expect("write BENCH_close_perf.json");
}

//! E17 — storage-engine sweep: closes/s and resident bytes vs. ledger
//! size, RAM backend vs. the log-structured disk backend.
//!
//! The paper's nodes keep the whole ledger in RAM; the disk backend
//! bounds resident memory to the write-back cache + sparse key index +
//! spilled bucket list and pays for it with segment I/O at every close.
//! This bench quantifies that trade: for each account count it drives
//! the same payment-load close loop on both backends (RAM twin skipped
//! at the largest size) and records throughput, residency, and disk
//! traffic. Twin points gate on byte-identical ledger header and bucket
//! hashes — the disk backend must be invisible to consensus.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_store [-- --quick|--full]
//! ```

use std::collections::BTreeMap;
use std::time::Instant;
use stellar_bench::{print_table, write_bench_json};
use stellar_buckets::BucketList;
use stellar_crypto::Hash256;
use stellar_ledger::amount::{xlm, BASE_FEE};
use stellar_ledger::apply::close_ledger;
use stellar_ledger::asset::Asset;
use stellar_ledger::entry::{AccountEntry, LedgerEntry};
use stellar_ledger::header::{LedgerHeader, LedgerParams};
use stellar_ledger::sigcache::SigVerifyCache;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar_ledger::txset::TransactionSet;
use stellar_sim::loadgen::{user_account, user_keys};
use stellar_store::{open_streaming, BackendKind, DiskConfig};
use stellar_telemetry::Json;

/// Ledger closes driven per sweep point.
const CLOSES: u64 = 20;
/// Payments per close. Senders cycle over a small prefix of the account
/// space so signing cost stays flat across sweep sizes.
const TXS_PER_CLOSE: u64 = 50;
/// How many distinct accounts the payment load touches.
const HOT_ACCOUNTS: u64 = 500;

/// Measured outcome of one (accounts, backend) point.
struct Outcome {
    closes_per_sec: f64,
    close_ms_mean: f64,
    resident_bytes: u64,
    disk_bytes: u64,
    bytes_written: u64,
    cache_hit_rate: f64,
    segments: u64,
    compactions: u64,
    header_hash: Hash256,
    bucket_hashes: Vec<Hash256>,
}

/// The synthetic genesis entry stream: `n` accounts with a flat balance
/// (the same shape `genesis_store` materializes, without materializing).
fn genesis_entries(n: u64) -> impl Iterator<Item = LedgerEntry> {
    (0..n).map(|i| LedgerEntry::Account(AccountEntry::new(user_account(i), xlm(1000))))
}

/// Builds the sweep-point store on the chosen backend without ever
/// holding a full RAM copy for disk points.
fn build_store(n: u64, backend: BackendKind) -> LedgerStore {
    match backend {
        BackendKind::Mem => {
            let mut s = LedgerStore::new();
            for e in genesis_entries(n) {
                if let LedgerEntry::Account(a) = e {
                    s.put_account(a);
                }
            }
            s
        }
        BackendKind::Disk => open_streaming(genesis_entries(n), 1, &DiskConfig::default()),
    }
}

/// Drives `CLOSES` payment ledgers on one backend, mirroring the herder
/// close path (bucket blobs staged before the one data-disk sync per
/// close) and returns the measured outcome.
fn run_point(n_accounts: u64, backend: BackendKind) -> Outcome {
    let mut store = build_store(n_accounts, backend);
    // Seed buckets from the synthetic stream, not `store.all_entries()`:
    // the result is identical (bucket construction canonicalizes by
    // key), and it spares the disk backend a full random-order read
    // pass — segment reads checksum-verify ~1 MiB per cache miss, so a
    // million point reads at setup would dwarf the close loop we're
    // here to measure.
    let mut buckets = BucketList::seed(genesis_entries(n_accounts));
    if let Some(disk) = store.disk() {
        buckets.attach_disk(disk, 0);
    }
    let mut header = LedgerHeader::genesis(Hash256::ZERO);
    header.snapshot_hash = buckets.hash();
    let senders = HOT_ACCOUNTS.min(n_accounts);
    let mut next_seq: BTreeMap<u64, u64> = BTreeMap::new();
    let io_before = store.io_stats();

    let t0 = Instant::now();
    for l in 0..CLOSES {
        let mut batch = Vec::with_capacity(TXS_PER_CLOSE as usize);
        for t in 0..TXS_PER_CLOSE {
            let n = l * TXS_PER_CLOSE + t;
            let src = n % senders;
            let seq = {
                let s = next_seq.entry(src).or_insert(1);
                let v = *s;
                *s += 1;
                v
            };
            let tx = Transaction {
                source: user_account(src),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::Id(n),
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: user_account((src + 1) % senders),
                        asset: Asset::Native,
                        amount: 1 + (n % 100) as i64,
                    },
                }],
            };
            batch.push(TransactionEnvelope::sign(tx, &[&user_keys(src)]));
        }
        let set = TransactionSet::assemble(header.hash(), batch, u32::MAX);
        let res = close_ledger(
            &mut store,
            &header,
            &set,
            header.close_time + 5,
            LedgerParams::default(),
            &mut SigVerifyCache::disabled(),
        );
        for r in &res.results {
            assert!(r.is_success(), "bench tx failed: {r:?}");
        }
        let seq = res.header.ledger_seq;
        buckets.add_batch(seq, &res.changes);
        header = res.header;
        header.snapshot_hash = buckets.hash();
        buckets.persist_levels(seq);
        assert!(store.flush(seq), "no fault injection in this bench");
        buckets.note_synced();
    }
    let elapsed = t0.elapsed();

    let io = store.io_stats();
    let lookups = (io.cache_hits + io.cache_misses)
        .saturating_sub(io_before.cache_hits + io_before.cache_misses);
    let hits = io.cache_hits - io_before.cache_hits;
    Outcome {
        closes_per_sec: CLOSES as f64 / elapsed.as_secs_f64(),
        close_ms_mean: elapsed.as_secs_f64() * 1e3 / CLOSES as f64,
        resident_bytes: store.resident_bytes() + buckets.resident_bytes(),
        disk_bytes: io.disk_bytes,
        bytes_written: io.bytes_written - io_before.bytes_written,
        cache_hit_rate: if lookups == 0 {
            1.0
        } else {
            hits as f64 / lookups as f64
        },
        segments: io.segments,
        compactions: io.compactions,
        header_hash: header.hash(),
        bucket_hashes: buckets.level_hashes(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");
    // (accounts, run the RAM twin too?)
    let points: Vec<(u64, bool)> = if quick {
        vec![(20_000, true)]
    } else if full {
        vec![(100_000, true), (1_000_000, true), (10_000_000, false)]
    } else {
        vec![(100_000, true), (1_000_000, true)]
    };

    println!("=== E17: storage-engine closes/s and residency, RAM vs disk ===\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &(accounts, twin) in &points {
        let mut per_backend: Vec<(BackendKind, Outcome)> = Vec::new();
        if twin {
            eprintln!("running {accounts} accounts on mem …");
            per_backend.push((BackendKind::Mem, run_point(accounts, BackendKind::Mem)));
        }
        eprintln!("running {accounts} accounts on disk …");
        per_backend.push((BackendKind::Disk, run_point(accounts, BackendKind::Disk)));

        // Twin gate: consensus-visible state must be byte-identical.
        if let [(_, mem), (_, disk)] = &per_backend[..] {
            assert_eq!(
                mem.header_hash, disk.header_hash,
                "{accounts} accounts: header hash diverged between backends"
            );
            assert_eq!(
                mem.bucket_hashes, disk.bucket_hashes,
                "{accounts} accounts: bucket hashes diverged between backends"
            );
        }

        for (kind, out) in &per_backend {
            rows.push(vec![
                format!("{accounts}"),
                kind.name().to_string(),
                format!("{:.1}", out.closes_per_sec),
                format!("{:.1}", out.close_ms_mean),
                format!("{:.1}", out.resident_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", out.disk_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", out.cache_hit_rate),
                format!("{}", out.segments),
                format!("{}", out.compactions),
            ]);
            results.push(
                Json::obj()
                    .set("accounts", accounts)
                    .set("backend", kind.name())
                    .set("closes", CLOSES)
                    .set("txs_per_close", TXS_PER_CLOSE)
                    .set("closes_per_sec", out.closes_per_sec)
                    .set("close_ms_mean", out.close_ms_mean)
                    .set("resident_bytes", out.resident_bytes)
                    .set("disk_bytes", out.disk_bytes)
                    .set("bytes_written", out.bytes_written)
                    .set("cache_hit_rate", out.cache_hit_rate)
                    .set("segments", out.segments)
                    .set("compactions", out.compactions)
                    .set("header_hash", out.header_hash.to_hex()),
            );
        }

        // The point of the disk backend: residency is the bounded
        // write-back cache plus the sparse key index (~72 B/key) plus
        // spilled-bucket bookkeeping — never the entry data itself.
        let (_, disk_out) = per_backend.last().expect("disk run present");
        if accounts >= 1_000_000 {
            let bound = 96 * 1024 * 1024 + accounts * 96;
            assert!(
                disk_out.resident_bytes < bound,
                "{accounts} accounts: disk-backend residency not bounded: \
                 {} bytes (allowed {bound})",
                disk_out.resident_bytes
            );
        }
    }
    print_table(
        &[
            "accounts",
            "backend",
            "closes/s",
            "close(ms)",
            "resident(MiB)",
            "disk(MiB)",
            "hit rate",
            "segs",
            "compactions",
        ],
        &rows,
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "store")
        .set("quick", quick)
        .set("results", Json::Arr(results));
    write_bench_json("store", &doc).expect("write BENCH_store.json");
}

//! E9 — §7.4: the cost of running a validator.
//!
//! Paper: an SDF production validator (c5.large, 2 cores, 4 GiB) used ~7%
//! CPU and 300 MiB, with 28 peer connections and a quorum of 34 moving
//! 2.78 Mbit/s in and 2.56 Mbit/s out — about $40/month of hardware.
//!
//! This reproduction reports the same row for a simulated core validator:
//! peer count, message rates, and bandwidth from the overlay's byte
//! accounting (WAN topology, production-like load).
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_validator_cost
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

fn main() {
    eprintln!("running public-network topology with load …");
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::PublicNetwork {
            n_orgs: 5,
            validators_per_org: 3,
            n_watchers: 24,
        },
        n_accounts: 20_000,
        tx_rate: 15.7, // the paper's *operation* rate; worst case as tx rate
        target_ledgers: 30,
        seed: 74,
        ..SimConfig::default()
    });
    let report = sim.run().without_warmup(2);
    let secs = report.sim_duration_ms as f64 / 1000.0;

    println!("=== E9: §7.4 validator cost (simulated core validator) ===\n");
    let observer = sim.observer_id();
    let stats = report.traffic[&observer];
    let degree = {
        // Count peers from the graph via a fresh build of the scenario.
        let built = Scenario::PublicNetwork {
            n_orgs: 5,
            validators_per_org: 3,
            n_watchers: 24,
        }
        .build(74);
        built.graph.degree(observer)
    };
    let rows = vec![
        vec![
            "this repro".into(),
            format!("{degree}"),
            format!("{:.2}", stats.msgs_in as f64 / secs),
            format!("{:.2}", stats.msgs_out as f64 / secs),
            format!("{:.3}", stats.mbps_in(secs)),
            format!("{:.3}", stats.mbps_out(secs)),
        ],
        vec![
            "paper".into(),
            "28".into(),
            "—".into(),
            "—".into(),
            "2.78".into(),
            "2.56".into(),
        ],
    ];
    print_table(
        &[
            "source",
            "peers",
            "msgs/s in",
            "msgs/s out",
            "Mbit/s in",
            "Mbit/s out",
        ],
        &rows,
    );

    println!("\nper-node traffic (validators):");
    let mut rows = Vec::new();
    for (node, t) in report.traffic.iter().take(8) {
        rows.push(vec![
            format!("{node}"),
            format!("{}", t.msgs_in),
            format!("{}", t.msgs_out),
            format!("{:.3}", t.mbps_in(secs)),
            format!("{:.3}", t.mbps_out(secs)),
            format!("{}", t.scp_originated),
        ]);
    }
    print_table(
        &[
            "node",
            "msgs in",
            "msgs out",
            "Mbit/s in",
            "Mbit/s out",
            "scp originated",
        ],
        &rows,
    );
    println!("\n(absolute bandwidth depends on load and fan-out; shape: in ≈ out, few Mbit/s — cheap hardware)");

    let doc = report.to_bench_json("validator_cost").set(
        "validator_cost",
        Json::obj()
            .set("peers", degree as u64)
            .set("msgs_in_per_s", stats.msgs_in as f64 / secs)
            .set("msgs_out_per_s", stats.msgs_out as f64 / secs)
            .set("mbps_in", stats.mbps_in(secs))
            .set("mbps_out", stats.mbps_out(secs))
            .set("observer_traffic", stellar_sim::traffic_to_json(&stats)),
    );
    write_bench_json("validator_cost", &doc).expect("write BENCH_validator_cost.json");
}

//! E21 — internet-scale quorum resilience: checker scaling, the Fig. 6
//! tier sweep at scale, and cascading-failure survival frontiers.
//!
//! Four sections, all seeded and reproducible:
//!
//! 1. **Checker scaling** — `find_disjoint_quorums_with` runtime across
//!    generated FBAS families (uniform / tier-weighted / scale-free) and
//!    checker modes (pruned / memoized / parallel) as the org count
//!    grows to 500 (1500 validators). The 500-org tier-weighted point is
//!    acceptance-gated against `budget_ms`.
//! 2. **Fig. 6 tier sweep at scale** — the paper's §6.2 synthesized
//!    configurations checked at sizes far beyond the live network,
//!    recording when the symmetric fast path and SCC restriction engage.
//! 3. **Survival frontiers** — analytic cascade campaigns per family and
//!    failure order: how many staged org failures each topology absorbs
//!    before safety or (post-heal) liveness lapses, and which org
//!    failure is the fatal one.
//! 4. **Empirical cross-check** — a simulated below-frontier campaign
//!    must externalize with zero monitor violations, and a past-frontier
//!    campaign must reproduce the cascade with the monitor's frontier
//!    report naming the triggering org stage.
//!
//! A same-seed twin regeneration of every schedule, frontier, and
//! verdict must render byte-identically (the determinism gate).
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_cascade [-- --quick]
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_chaos::cascade::{analyze_cascade, CascadeOrder, CascadePlan};
use stellar_chaos::runner::{ChaosConfig, ChaosRun};
use stellar_chaos::CollapseKind;
use stellar_quorum::intersection::IntersectionResult;
use stellar_quorum::{
    find_disjoint_quorums_with, generate, CheckerOptions, TopologyFamily, TopologySpec,
};
use stellar_sim::scenario::Scenario;
use stellar_sim::SimConfig;
use stellar_telemetry::Json;

/// Acceptance budget for the 500-org tier-weighted intersection check.
const BUDGET_MS: f64 = 60_000.0;

const FAMILIES: [TopologyFamily; 3] = [
    TopologyFamily::Uniform,
    TopologyFamily::TierWeighted,
    TopologyFamily::ScaleFree,
];

fn modes() -> Vec<(&'static str, CheckerOptions)> {
    vec![
        ("pruned", CheckerOptions::pruned()),
        ("memoized", CheckerOptions::memoized()),
        ("parallel", CheckerOptions::parallel(4)),
    ]
}

fn verdict_label(v: &IntersectionResult) -> &'static str {
    match v {
        IntersectionResult::Intersecting => "intersecting",
        IntersectionResult::Disjoint(_, _) => "disjoint",
        IntersectionResult::NoQuorum => "no-quorum",
    }
}

/// Section 1+2: checker runtime per family × size × mode.
fn checker_scaling(quick: bool, points: &mut Vec<Json>) -> f64 {
    println!("=== E21a: intersection-checker scaling (generated FBAS families) ===\n");
    let sizes: &[usize] = if quick {
        &[20, 60]
    } else {
        &[20, 60, 120, 250, 500]
    };
    let mut rows = Vec::new();
    let mut gated_ms = 0.0;
    for family in FAMILIES {
        for &n in sizes {
            let spec = TopologySpec::new(family, n, 3, 0xE21);
            let topo = generate(&spec);
            for (mode, opts) in modes() {
                let t0 = std::time::Instant::now();
                let (verdict, stats) = find_disjoint_quorums_with(&topo.system, &opts);
                let ms = t0.elapsed().as_secs_f64() * 1000.0;
                if family == TopologyFamily::TierWeighted && n == 500 && mode == "memoized" {
                    gated_ms = ms;
                }
                points.push(
                    Json::obj()
                        .set("sweep", "checker_scaling")
                        .set("family", family.label())
                        .set("orgs", n)
                        .set("validators", topo.n_validators())
                        .set("mode", mode)
                        .set("verdict", verdict_label(&verdict))
                        .set("check_ms", ms)
                        .set("core_nodes", stats.core_nodes)
                        .set("scc_count", stats.scc_count)
                        .set("domain_nodes", stats.domain_nodes)
                        .set("branches", stats.branches)
                        .set("memo_hits", stats.memo_hits)
                        .set("symmetric", stats.symmetric),
                );
                rows.push(vec![
                    family.label().to_string(),
                    format!("{n}"),
                    format!("{}", topo.n_validators()),
                    mode.to_string(),
                    verdict_label(&verdict).to_string(),
                    format!("{ms:.2}"),
                    format!("{}", stats.domain_nodes),
                    format!("{}", stats.branches),
                    format!("{}", stats.symmetric),
                ]);
            }
        }
    }
    print_table(
        &[
            "family",
            "orgs",
            "validators",
            "mode",
            "verdict",
            "check(ms)",
            "domain",
            "branches",
            "symmetric",
        ],
        &rows,
    );
    println!(
        "\npaper (§6.2): 20–30 node closures check in seconds; the SCC + \
         symmetric-subtree restrictions keep 1500-validator families inside \
         the same budget."
    );
    gated_ms
}

/// Section 3: analytic survival-frontier curves per family and order.
fn frontier_curves(quick: bool, points: &mut Vec<Json>) -> Json {
    println!("\n=== E21b: survival frontiers (staged org-failure campaigns) ===\n");
    let n_orgs = if quick { 12 } else { 30 };
    let mut rows = Vec::new();
    // The canonical (timing-free) sub-document twin-run determinism is
    // gated on: every schedule, per-stage verdict, and frontier.
    let mut canonical = Vec::new();
    for family in FAMILIES {
        let topo = generate(&TopologySpec::new(family, n_orgs, 3, 0xE21));
        for order in [CascadeOrder::Random, CascadeOrder::TopTierFirst] {
            let order_label = match order {
                CascadeOrder::Random => "random",
                CascadeOrder::TopTierFirst => "top_tier_first",
            };
            let plan = CascadePlan {
                order,
                n_stages: n_orgs,
                start_ms: 10_000,
                stage_interval_ms: 5_000,
                heal_at_ms: None,
                seed: 0xE21,
            };
            let stages = plan.stages(&topo);
            let analysis = analyze_cascade(&topo, &stages, &CheckerOptions::default());
            let fatal = analysis
                .first_fatal
                .as_ref()
                .map(|(s, o)| format!("#{s} {o}"))
                .unwrap_or_else(|| "-".to_string());
            let max_cascade = analysis
                .stages
                .iter()
                .map(|s| s.cascaded_orgs.len())
                .max()
                .unwrap_or(0);
            rows.push(vec![
                family.label().to_string(),
                order_label.to_string(),
                format!("{n_orgs}"),
                format!("{}", analysis.frontier),
                fatal,
                format!("{max_cascade}"),
            ]);
            points.push(
                Json::obj()
                    .set("sweep", "survival_frontier")
                    .set("family", family.label())
                    .set("order", order_label)
                    .set("orgs", n_orgs)
                    .set("analysis", analysis.to_json()),
            );
            canonical.push(
                Json::obj()
                    .set("family", family.label())
                    .set("order", order_label)
                    .set(
                        "schedule",
                        Json::Arr(
                            stages
                                .iter()
                                .map(|s| {
                                    Json::obj()
                                        .set("stage", s.stage)
                                        .set("org", s.org.as_str())
                                        .set("at_ms", s.at_ms)
                                        .set("validators", s.validators.len())
                                })
                                .collect(),
                        ),
                    )
                    .set("analysis", analysis.to_json()),
            );
        }
    }
    print_table(
        &[
            "family",
            "order",
            "orgs",
            "frontier",
            "first fatal",
            "max cascaded orgs",
        ],
        &rows,
    );
    println!(
        "\nthe frontier counts staged org failures absorbed while the \
         survivors stay safe and live (or healable); past it the report \
         names the fatal org."
    );
    Json::Arr(canonical)
}

/// Section 4: a small simulated campaign cross-checks the analytic
/// frontier — clean below it, a named collapse past it.
fn empirical_crosscheck(quick: bool, points: &mut Vec<Json>) {
    println!("\n=== E21c: empirical cross-check (simulated cascade) ===\n");
    let spec = TopologySpec::new(TopologyFamily::Uniform, 8, 2, 0xE21);
    let topo = generate(&spec);
    let full_plan = CascadePlan {
        order: CascadeOrder::Random,
        n_stages: 8,
        start_ms: 12_000,
        stage_interval_ms: 6_000,
        heal_at_ms: None,
        seed: 0xE21,
    };
    let analysis = analyze_cascade(&topo, &full_plan.stages(&topo), &CheckerOptions::default());
    // Liveness (not healing) bounds the *in-sim* frontier: the monitor
    // watches the running network, which only heals if the schedule
    // carries reconfigure steps.
    let live_frontier = analysis
        .stages
        .iter()
        .take_while(|s| s.live && s.safe)
        .count();
    let (fatal_stage, fatal_org) = analysis
        .first_fatal
        .clone()
        .expect("full campaign is fatal");
    println!(
        "analytic: live+safe through stage {live_frontier}, fatal at stage {fatal_stage} ({fatal_org})"
    );

    let run = |n_stages: usize, label: &str| {
        let plan = CascadePlan {
            n_stages,
            ..full_plan
        };
        let report = ChaosRun::new(ChaosConfig {
            sim: SimConfig {
                scenario: Scenario::Generated { spec },
                n_accounts: 50,
                tx_rate: 2.0,
                target_ledgers: if quick { 10 } else { 16 },
                seed: 0xE21,
                max_sim_time_ms: 180_000,
                ..SimConfig::default()
            },
            schedule: plan.schedule(&topo),
            ..ChaosConfig::default()
        })
        .run();
        println!(
            "{label}: {} stages, violations={}, frontier={}, trigger={:?}, expected-health alerts={}",
            n_stages,
            report.violations.len(),
            report.frontier.frontier,
            report
                .frontier
                .triggering_stage
                .as_ref()
                .map(|s| format!("#{} {}", s.stage, s.label)),
            report.expected_health.len()
        );
        report
    };

    let below = run(live_frontier.min(2), "below-frontier");
    assert!(
        below.is_clean(),
        "below-frontier campaign must externalize cleanly: {:?}",
        below.violations
    );
    assert!(
        below.frontier.triggering_stage.is_none(),
        "below-frontier campaign must not collapse: {:?}",
        below.frontier
    );

    let past = run(8, "past-frontier");
    let trigger = past
        .frontier
        .triggering_stage
        .clone()
        .expect("past-frontier campaign must name a triggering stage");
    assert_eq!(
        past.frontier.collapse,
        Some(CollapseKind::IntactCollapse),
        "a crash-only cascade collapses intactness, it does not forge divergence"
    );
    println!(
        "past-frontier trigger: stage #{} ({}) — analytic fatal stage #{fatal_stage} ({fatal_org})",
        trigger.stage, trigger.label
    );

    points.push(
        Json::obj()
            .set("sweep", "empirical")
            .set("orgs", 8u64)
            .set("analytic_live_frontier", live_frontier)
            .set("analytic_fatal_stage", fatal_stage)
            .set("analytic_fatal_org", fatal_org.as_str())
            .set("below_clean", below.is_clean())
            .set("below_expected_health", below.expected_health.len())
            .set("past_trigger_stage", trigger.stage)
            .set("past_trigger_org", trigger.label.as_str())
            .set("past_collapse", "intact_collapse"),
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut points: Vec<Json> = Vec::new();

    let gated_ms = checker_scaling(quick, &mut points);
    let canonical = frontier_curves(quick, &mut points);
    // Twin regeneration: every schedule and verdict again, from the same
    // seeds. Timings are excluded by construction, so byte-inequality
    // means real nondeterminism.
    let twin = frontier_curves_silent();
    let deterministic = canonical.render() == twin.render();
    assert!(
        deterministic,
        "twin-run regeneration of cascade schedules and frontiers diverged"
    );
    println!("\ndeterminism gate: twin regeneration is byte-identical.");
    empirical_crosscheck(quick, &mut points);

    if !quick {
        assert!(
            gated_ms > 0.0 && gated_ms <= BUDGET_MS,
            "500-org tier-weighted check took {gated_ms:.0} ms (budget {BUDGET_MS:.0} ms)"
        );
    }

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "cascade")
        .set("quick", quick)
        .set("budget_ms", BUDGET_MS)
        .set(
            "gated_500_org_check_ms",
            if quick {
                Json::Null
            } else {
                Json::Num(gated_ms)
            },
        )
        .set("deterministic", deterministic)
        .set("points", points);
    write_bench_json("cascade", &doc).expect("write BENCH_cascade.json");

    fn frontier_curves_silent() -> Json {
        // Regenerate the canonical document without reprinting tables.
        let n_orgs_quick = std::env::args().any(|a| a == "--quick");
        let n_orgs = if n_orgs_quick { 12 } else { 30 };
        let mut canonical = Vec::new();
        for family in FAMILIES {
            let topo = generate(&TopologySpec::new(family, n_orgs, 3, 0xE21));
            for order in [CascadeOrder::Random, CascadeOrder::TopTierFirst] {
                let order_label = match order {
                    CascadeOrder::Random => "random",
                    CascadeOrder::TopTierFirst => "top_tier_first",
                };
                let plan = CascadePlan {
                    order,
                    n_stages: n_orgs,
                    start_ms: 10_000,
                    stage_interval_ms: 5_000,
                    heal_at_ms: None,
                    seed: 0xE21,
                };
                let stages = plan.stages(&topo);
                let analysis = analyze_cascade(&topo, &stages, &CheckerOptions::default());
                canonical.push(
                    Json::obj()
                        .set("family", family.label())
                        .set("order", order_label)
                        .set(
                            "schedule",
                            Json::Arr(
                                stages
                                    .iter()
                                    .map(|s| {
                                        Json::obj()
                                            .set("stage", s.stage)
                                            .set("org", s.org.as_str())
                                            .set("at_ms", s.at_ms)
                                            .set("validators", s.validators.len())
                                    })
                                    .collect(),
                            ),
                        )
                        .set("analysis", analysis.to_json()),
                );
            }
        }
        Json::Arr(canonical)
    }
}

//! E1/E2 — §7.2 public-network statistics.
//!
//! Paper observations on the production network: 126 full nodes, 66
//! validators, a 17-node tier-one core; 4.5 tx/s average; mean consensus
//! latency 1061 ms and ledger update 46 ms (99th: 2252 ms / 142 ms — the
//! former reflecting the 1 s nomination leader-selection timeout); ~7
//! logical SCP messages per ledger per validator (measured 6–7).
//!
//! This reproduction builds the Fig. 7 shape — 5 tier-one orgs × 3–4
//! validators with synthesized Fig. 6 quorum sets, plus watcher nodes —
//! over WAN latencies, at the production load level.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_public_network
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_overlay::{MsgKind, TrafficStats};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

fn main() {
    eprintln!("building Fig. 7-shaped network (5 orgs × 3 validators + 24 watchers) …");
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::PublicNetwork {
            n_orgs: 5,
            validators_per_org: 3,
            n_watchers: 24,
        },
        n_accounts: 20_000,
        tx_rate: 4.5,
        target_ledgers: 40,
        seed: 72,
        ..SimConfig::default()
    });
    let report = sim.run().without_warmup(2);

    println!("=== E1: §7.2 public-network statistics (Fig. 7 topology, WAN) ===\n");
    let rows = vec![
        vec![
            "this repro".into(),
            format!("{:.0}", report.mean_consensus_ms()),
            format!(
                "{:.0}",
                report.percentile_of(99.0, |l| (l.nomination_ms + l.balloting_ms) as f64)
            ),
            format!("{:.2}", report.mean_ledger_update_ms()),
            format!("{:.2}", report.percentile_of(99.0, |l| l.ledger_update_ms)),
            format!("{:.2}", report.mean_close_interval_s()),
        ],
        vec![
            "paper".into(),
            "1061".into(),
            "2252".into(),
            "46".into(),
            "142".into(),
            "~5".into(),
        ],
    ];
    print_table(
        &[
            "source",
            "consensus(ms)",
            "p99(ms)",
            "apply(ms)",
            "apply p99(ms)",
            "close(s)",
        ],
        &rows,
    );

    println!("\n=== E2: SCP message counts ===\n");
    let secs = report.sim_duration_ms as f64 / 1000.0;
    let per_validator_rate = report.scp_msgs_originated as f64 / secs / report.n_validators as f64;
    let rows = vec![
        vec![
            "this repro".into(),
            format!("{:.1}", report.scp_msgs_per_ledger()),
            format!("{:.2}", per_validator_rate),
        ],
        vec!["paper".into(), "6–7".into(), "1.3".into()],
    ];
    print_table(
        &["source", "scp msgs/ledger/validator", "msgs/s/validator"],
        &rows,
    );
    println!(
        "\n({} ledgers over {:.0} s of simulated time, {} validators, load {:.1} tx/s)",
        report.ledgers.len(),
        secs,
        report.n_validators,
        4.5
    );

    println!("\n=== §7.2 traffic by message type (network-wide) ===\n");
    let mut net = TrafficStats::default();
    for t in report.traffic.values() {
        net.merge(t);
    }
    let rows: Vec<Vec<String>> = MsgKind::ALL
        .iter()
        .map(|k| {
            vec![
                k.name().into(),
                format!("{}", net.in_count(*k)),
                format!("{}", net.out_count(*k)),
            ]
        })
        .collect();
    print_table(&["type", "delivered", "sent"], &rows);
    println!(
        "\nduplicate-suppressed deliveries: {} of {} ({:.1}% — the cost of naïve flooding)",
        net.dup_suppressed,
        net.msgs_in,
        net.dup_ratio() * 100.0
    );

    let doc = report.to_bench_json("public_network");
    write_bench_json("public_network", &doc).expect("write BENCH_public_network.json");
}

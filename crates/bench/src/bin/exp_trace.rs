//! E18 — end-to-end transaction lifecycle tracing: phase decomposition,
//! determinism, and overhead.
//!
//! The paper's headline number (§7.3, Fig. 7) is the ~5 s from payment
//! submission to ledger apply. This experiment reconstructs that number
//! from the distributed-tracing subsystem: every sampled transaction's
//! cross-node spans are folded into a per-phase latency decomposition
//! (submit → queue admit → nominate → externalize → apply → visible)
//! with p50/p99 per phase and the Fig. 7-style submit-to-apply CDF.
//!
//! Three properties are asserted in-run:
//!
//! 1. **coverage** — every applied transaction completes the whole
//!    pipeline (submit-to-apply samples == applied count);
//! 2. **determinism** — a same-seed twin run renders byte-identical
//!    per-transaction trace rows (trace timestamps are simulated-ms
//!    only, so traces replay exactly);
//! 3. **overhead** — sampled tracing (1-in-4) costs at most 5% of
//!    closes/s against tracing disabled, wall-clock best-of-N over
//!    alternating off/sampled runs.
//!
//! The committed `BENCH_trace.json` doubles as the regression baseline:
//! reruns fail if the schema drifts or the flagship submit-to-apply
//! median grows more than 10% over the committed figure.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_trace [-- --quick]
//! ```

use std::time::Instant;
use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::tracing::{rows_to_json, trace_summary_json};
use stellar_sim::{phase_stats, SimConfig, Simulation};
use stellar_telemetry::Json;

/// One sweep point: a tiered public-network topology under payment load.
#[derive(Clone, Copy)]
struct Config {
    n_orgs: u32,
    validators_per_org: u32,
    n_watchers: u32,
    tx_rate: f64,
    target_ledgers: u64,
    /// The acceptance-gated flagship (36 nodes, §7.3-level load).
    flagship: bool,
}

impl Config {
    fn nodes(&self) -> u32 {
        self.n_orgs * self.validators_per_org + self.n_watchers
    }

    fn sim(&self, trace_sample_every: u64) -> SimConfig {
        SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: self.n_orgs,
                validators_per_org: self.validators_per_org,
                n_watchers: self.n_watchers,
            },
            n_accounts: 2_000,
            tx_rate: self.tx_rate,
            target_ledgers: self.target_ledgers,
            seed: 0xE18,
            trace_sample_every,
            ..SimConfig::default()
        }
    }
}

/// Runs one simulation, returning the report and the wall-clock seconds
/// the run took (the overhead gate's raw material).
fn run_once(cfg: &Config, sample: u64) -> (stellar_sim::SimReport, f64) {
    let mut sim = Simulation::new(cfg.sim(sample));
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        report.ledgers.len() as u64 >= cfg.target_ledgers,
        "run closed only {} of {} ledgers",
        report.ledgers.len(),
        cfg.target_ledgers
    );
    (report, wall)
}

/// Best-of-N wall-clock seconds for the tracing-off and sampled
/// settings, measured in *alternating* pairs after a warmup run:
/// alternation cancels slow container drift, best-of damps scheduler
/// noise, and the warmup pays the one-time page-in cost outside the
/// timed window.
fn overhead_pair(cfg: &Config, iters: u32) -> (f64, f64) {
    run_once(cfg, 0); // warmup, untimed
    let (mut best_off, mut best_sampled) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        best_off = best_off.min(run_once(cfg, 0).1);
        best_sampled = best_sampled.min(run_once(cfg, 4).1);
    }
    (best_off, best_sampled)
}

/// Loads the committed previous results, if present (they double as the
/// regression baseline).
fn load_committed() -> Option<Json> {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    for candidate in [
        std::path::Path::new(&dir).join("BENCH_trace.json"),
        std::path::PathBuf::from("BENCH_trace.json"),
    ] {
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            if let Ok(doc) = Json::parse(&text) {
                return Some(doc);
            }
        }
    }
    None
}

/// Committed submit-to-apply median for a config, if recorded.
fn committed_s2a_p50(doc: &Json, cfg: &Config) -> Option<f64> {
    for r in doc.get("results")?.as_arr()? {
        let matches = |key: &str, v: f64| r.get(key).and_then(Json::as_f64) == Some(v);
        if matches("n_orgs", cfg.n_orgs as f64)
            && matches("validators_per_org", cfg.validators_per_org as f64)
            && matches("n_watchers", cfg.n_watchers as f64)
            && matches("tx_rate", cfg.tx_rate)
        {
            return r.get("submit_to_apply_p50_ms").and_then(Json::as_f64);
        }
    }
    None
}

/// Validates the committed document's shape before using it as a gate.
fn check_schema(doc: &Json) {
    let schema = doc.get("schema").and_then(Json::as_str);
    assert_eq!(
        schema,
        Some("stellar-bench/v2"),
        "committed BENCH_trace.json schema mismatch: {schema:?}"
    );
    let name = doc.get("name").and_then(Json::as_str);
    assert_eq!(
        name,
        Some("trace"),
        "committed BENCH_trace.json is not the trace document"
    );
    assert!(
        doc.get("results").and_then(Json::as_arr).is_some(),
        "committed BENCH_trace.json has no results array"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The quick config is the full sweep's smallest point, so the
    // committed baseline covers it and CI gets a real regression gate.
    let small = Config {
        n_orgs: 3,
        validators_per_org: 3,
        n_watchers: 6,
        tx_rate: 2.0,
        target_ledgers: 6,
        flagship: false,
    };
    let configs: Vec<Config> = if quick {
        vec![small]
    } else {
        vec![
            small,
            // Flagship: the 36-node tiered topology under real payment
            // load — the Fig. 7 setting whose phase decomposition is
            // the acceptance artifact.
            Config {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 24,
                tx_rate: 20.0,
                target_ledgers: 8,
                flagship: true,
            },
        ]
    };

    let committed = load_committed();
    if let Some(doc) = &committed {
        check_schema(doc);
    }

    println!("=== E18: transaction lifecycle tracing (submit→apply decomposition) ===\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for cfg in &configs {
        eprintln!(
            "running {} nodes ({} orgs × {} validators + {} watchers) at {} tx/s, traced twin + overhead …",
            cfg.nodes(),
            cfg.n_orgs,
            cfg.validators_per_org,
            cfg.n_watchers,
            cfg.tx_rate
        );

        // Fully-traced run plus a same-seed twin: trace timestamps are
        // simulated-ms only, so the rendered rows must match byte for
        // byte.
        let (report, _) = run_once(cfg, 1);
        let (twin, _) = run_once(cfg, 1);
        let rendered = rows_to_json(&report.tx_traces).render();
        assert_eq!(
            rendered,
            rows_to_json(&twin.tx_traces).render(),
            "same-seed twin runs must render identical trace rows"
        );

        let stats = phase_stats(&report.tx_traces);
        let s2a = stats
            .iter()
            .find(|p| p.phase == "submit_to_apply")
            .expect("submit_to_apply stats");
        let applied = report
            .tx_traces
            .iter()
            .filter(|r| r.applied_ms.is_some())
            .count() as u64;
        assert!(applied > 0, "load must apply transactions");
        assert_eq!(
            s2a.samples, applied,
            "every applied transaction must complete the whole pipeline"
        );
        assert!(
            report.health.is_empty(),
            "a clean run must raise no watchdog alerts: {:?}",
            report.health
        );

        // Overhead: sampled tracing (1-in-4) vs tracing off. The gate is
        // the acceptance bound: ≤5% closes/s regression. Quick runs are
        // short (sub-second), so they take more alternating pairs to
        // push timing noise below the bound.
        let iters = if quick { 5 } else { 3 };
        let (wall_off, wall_sampled) = overhead_pair(cfg, iters);
        let ledgers = report.ledgers.len() as f64;
        let off = ledgers / wall_off.max(1e-9);
        let sampled = ledgers / wall_sampled.max(1e-9);
        let overhead = 1.0 - sampled / off;
        assert!(
            sampled >= off * 0.95,
            "sampled tracing cost {:.1}% of closes/s (bound: 5%): {:.1} vs {:.1} closes/s",
            overhead * 100.0,
            sampled,
            off
        );

        if let Some(doc) = &committed {
            if let Some(base) = committed_s2a_p50(doc, cfg) {
                assert!(
                    s2a.p50_ms <= base * 1.10,
                    "submit-to-apply median regressed: {:.0} ms vs committed {:.0} ms",
                    s2a.p50_ms,
                    base
                );
            }
        }

        let summary = trace_summary_json(&report.tx_traces, 0);
        let flood_lag_p50 = summary
            .get("flood")
            .and_then(|f| f.get("lag_p50_ms"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        rows.push(vec![
            format!("{}", cfg.nodes()),
            format!("{:.1}", cfg.tx_rate),
            format!("{}", report.ledgers.len()),
            format!("{}", report.tx_traces.len()),
            format!("{:.0}", s2a.p50_ms),
            format!("{:.0}", s2a.p99_ms),
            format!("{:.0}", flood_lag_p50),
            format!("{:+.1}%", overhead * 100.0),
        ]);
        results.push(
            Json::obj()
                .set("n_orgs", u64::from(cfg.n_orgs))
                .set("validators_per_org", u64::from(cfg.validators_per_org))
                .set("n_watchers", u64::from(cfg.n_watchers))
                .set("nodes", u64::from(cfg.nodes()))
                .set("tx_rate", cfg.tx_rate)
                .set("target_ledgers", cfg.target_ledgers)
                .set("ledgers", report.ledgers.len() as u64)
                .set("traced", report.tx_traces.len() as u64)
                .set("applied", applied)
                .set("submit_to_apply_p50_ms", s2a.p50_ms)
                .set("submit_to_apply_p99_ms", s2a.p99_ms)
                .set("trace", summary)
                .set("closes_per_s_off", off)
                .set("closes_per_s_sampled", sampled)
                .set("overhead_frac", overhead)
                .set("deterministic", true)
                .set("flagship", cfg.flagship),
        );
    }
    print_table(
        &[
            "nodes",
            "tx/s",
            "ledgers",
            "traced",
            "s→a p50",
            "s→a p99",
            "flood p50",
            "overhead",
        ],
        &rows,
    );
    println!(
        "\n(phase latencies are simulated-ms and fully deterministic; the \
         overhead column is wall-clock, alternating best-of-{} each side; \
         committed BENCH_trace.json gates schema + submit-to-apply \
         regressions)",
        if quick { 5 } else { 3 }
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "trace")
        .set("quick", quick)
        .set("results", Json::Arr(results));
    write_bench_json("trace", &doc).expect("write BENCH_trace.json");
}

//! E13 — chaos sweep: adversary count vs. safety/liveness outcome.
//!
//! SCP's guarantees are conditional on the ill-behaved set staying
//! dispensable (§3): with `n − f` slices over 7 validators (`f = 2`),
//! up to 2 Byzantine nodes leave the rest intact — safety and liveness
//! must both hold — while 3 destroy quorum intersection and *all* bets
//! are off (the monitor reports "nobody intact" rather than a
//! violation, because no promise was broken). The sweep also runs a
//! fault-cocktail table: crash/revive, partitions, and lossy links on
//! an adversary-free network, where the invariants must stay clean
//! throughout.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_chaos
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_chaos::adversary::Strategy;
use stellar_chaos::runner::{ChaosConfig, ChaosRun};
use stellar_chaos::schedule::FaultSchedule;
use stellar_chaos::Violation;
use stellar_overlay::LinkFault;
use stellar_scp::NodeId;
use stellar_sim::scenario::Scenario;
use stellar_sim::SimConfig;
use stellar_telemetry::Json;

const N: u32 = 7;

fn sim(seed: u64) -> SimConfig {
    SimConfig {
        scenario: Scenario::ByzantineMesh { n_validators: N },
        n_accounts: 100,
        tx_rate: 5.0,
        target_ledgers: 4,
        seed,
        max_sim_time_ms: 240_000,
        ..SimConfig::default()
    }
}

fn outcome_row(label: &str, report: &stellar_chaos::ChaosReport) -> Vec<String> {
    let safety = report
        .violations
        .iter()
        .filter(|v| !matches!(v, Violation::LivenessStall { .. }))
        .count();
    let stalls = report.violations.len() - safety;
    let max_honest_seq = report.final_seqs.iter().map(|(_, s)| *s).max().unwrap_or(0);
    vec![
        label.to_string(),
        format!("{}", report.intact.len()),
        format!("{safety}"),
        format!("{stalls}"),
        format!("{max_honest_seq}"),
        format!("{}", report.injections),
        format!("{:.1}", report.sim_time_ms as f64 / 1000.0),
    ]
}

fn outcome_json(label: &str, report: &stellar_chaos::ChaosReport) -> Json {
    let safety = report
        .violations
        .iter()
        .filter(|v| !matches!(v, Violation::LivenessStall { .. }))
        .count();
    Json::obj()
        .set("label", label)
        .set("intact", report.intact.len() as u64)
        .set("safety_violations", safety as u64)
        .set("liveness_stalls", (report.violations.len() - safety) as u64)
        .set("injections", report.injections)
        .set("sim_time_ms", report.sim_time_ms)
        .set(
            "flight_recording_captured",
            !report.flight_recording.is_empty(),
        )
}

fn main() {
    let mut points: Vec<Json> = Vec::new();
    println!("=== E13a: adversary count sweep ({N} validators, n-f slices, f=2) ===\n");
    let strategies = [
        Strategy::EquivocateNomination,
        Strategy::SplitConfirm,
        Strategy::ReplayStale,
    ];
    let mut rows = Vec::new();
    for k in 0..=3usize {
        let adversaries: Vec<(NodeId, Strategy)> = (0..k)
            .map(|i| (NodeId(N - 1 - i as u32), strategies[i % strategies.len()]))
            .collect();
        let label = format!(
            "{k} ({})",
            adversaries
                .iter()
                .map(|(_, s)| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join("+")
        );
        let report = ChaosRun::new(ChaosConfig {
            sim: sim(0xE12 + k as u64),
            adversaries,
            ..ChaosConfig::default()
        })
        .run();
        points.push(outcome_json(&label, &report).set("sweep", "adversaries"));
        rows.push(outcome_row(&label, &report));
    }
    print_table(
        &[
            "adversaries",
            "intact",
            "safety viol.",
            "stalls",
            "max honest seq",
            "injections",
            "sim time(s)",
        ],
        &rows,
    );
    println!(
        "\nexpected: k ≤ 2 keeps every honest node intact with zero violations;\n\
         k = 3 empties the intact set (no guarantee to violate)."
    );

    println!("\n=== E13b: fault cocktail, no adversaries (invariants must stay clean) ===\n");
    let ids: Vec<NodeId> = (0..N).map(NodeId).collect();
    let cocktails: Vec<(&str, FaultSchedule)> = vec![
        (
            "crash 2, revive (archive catch-up)",
            FaultSchedule::builder()
                .crash_at(6_000, ids[5])
                .crash_at(8_000, ids[6])
                .revive_at(22_000, ids[5])
                .revive_at(26_000, ids[6])
                .build(),
        ),
        (
            "partition 4|3, heal at 35s",
            FaultSchedule::builder()
                .partition_at(
                    10_000,
                    vec![ids[..4].to_vec(), ids[4..].to_vec()],
                    Some(35_000),
                )
                .build(),
        ),
        (
            "10% drop + dup + 20-80ms delay everywhere",
            FaultSchedule::builder()
                .default_link_fault_at(
                    2_000,
                    LinkFault::none()
                        .with_drop(0.10)
                        .with_duplicate(0.05)
                        .with_delay(0.3, 20, 80),
                )
                .build(),
        ),
        (
            "everything at once",
            FaultSchedule::builder()
                .default_link_fault_at(2_000, LinkFault::none().with_drop(0.05))
                .crash_at(7_000, ids[6])
                .partition_at(
                    12_000,
                    vec![ids[..4].to_vec(), ids[4..].to_vec()],
                    Some(30_000),
                )
                .revive_at(34_000, ids[6])
                .build(),
        ),
    ];
    let mut rows = Vec::new();
    for (i, (label, schedule)) in cocktails.into_iter().enumerate() {
        let report = ChaosRun::new(ChaosConfig {
            sim: sim(0xB0B + i as u64),
            schedule,
            // Generous bound: cocktails legitimately slow closes down.
            liveness_bound_ms: 60_000,
            ..ChaosConfig::default()
        })
        .run();
        points.push(outcome_json(label, &report).set("sweep", "cocktail"));
        rows.push(outcome_row(label, &report));
    }
    print_table(
        &[
            "cocktail",
            "intact",
            "safety viol.",
            "stalls",
            "max honest seq",
            "injections",
            "sim time(s)",
        ],
        &rows,
    );
    println!(
        "\nexpected: zero violations in every row — faults below the paper's\n\
         thresholds degrade latency, never correctness."
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "chaos")
        .set("points", points);
    write_bench_json("chaos", &doc).expect("write BENCH_chaos.json");
}

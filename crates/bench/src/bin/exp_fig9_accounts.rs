//! E4 — Fig. 9: latency as the number of accounts increases.
//!
//! Paper setup: 4 validators, 100 tx/s, accounts swept 10⁵ → 5·10⁷ on
//! c5d.9xlarge (72 GiB). Paper shape: nomination and balloting stay flat;
//! ledger update stays low but bucket merging grows with account count.
//! This reproduction sweeps 10⁴ → 5·10⁵ (laptop-scale memory; four full
//! validator replicas share the process — see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_fig9_accounts
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

fn main() {
    let mut rows = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for accounts in [10_000u64, 50_000, 100_000, 200_000, 500_000] {
        eprintln!("accounts = {accounts} …");
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: accounts,
            tx_rate: 100.0,
            target_ledgers: 10,
            seed: 9,
            ..SimConfig::default()
        });
        let report = sim.run().without_warmup(2);
        let merge_work = sim.validator(sim.observer_id()).herder.buckets.merge_work;
        rows.push(vec![
            format!("{accounts}"),
            format!("{:.1}", report.mean_nomination_ms()),
            format!("{:.1}", report.mean_balloting_ms()),
            format!("{:.2}", report.mean_ledger_update_ms()),
            format!("{:.2}", report.mean_close_interval_s()),
            format!("{:.1}", report.mean_tx_per_ledger()),
            format!("{merge_work}"),
        ]);
        let point = report.to_bench_json("point");
        points.push(
            Json::obj()
                .set("accounts", accounts)
                .set("bucket_merge_work", merge_work)
                .set(
                    "results",
                    point.get("results").cloned().unwrap_or(Json::Null),
                ),
        );
    }
    println!("=== E4: Fig. 9 — latency vs. accounts (4 validators, 100 tx/s) ===\n");
    print_table(
        &[
            "accounts",
            "nominate(ms)",
            "ballot(ms)",
            "apply(ms)",
            "close(s)",
            "tx/ledger",
            "bucket merge work",
        ],
        &rows,
    );
    println!(
        "\npaper shape: consensus latency flat in accounts; apply/bucket-merge overhead grows."
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "fig9_accounts")
        .set("points", points);
    write_bench_json("fig9_accounts", &doc).expect("write BENCH_fig9_accounts.json");
}

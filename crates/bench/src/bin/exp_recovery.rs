//! E16 — crash-restart recovery: replay time vs. ledger gap.
//!
//! A rebooted validator rebuilds its state from cheap durable storage
//! alone (§5.4): it replays its own history archive from the last state
//! it can prove, re-verifying every header hash on the way. This bench
//! measures that recovery path end to end — build a chain of `gap`
//! ledgers under payment load, publish each to an archive, then time a
//! fresh herder catching up from genesis through the whole archive —
//! and sweeps the gap to show recovery cost is linear in the distance
//! fallen behind, not in total chain history.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_recovery [-- --quick]
//! ```

use std::collections::BTreeMap;
use std::time::Instant;
use stellar_bench::{print_table, store_with_accounts, write_bench_json};
use stellar_buckets::{BucketList, HistoryArchive};
use stellar_crypto::Hash256;
use stellar_herder::Herder;
use stellar_ledger::amount::BASE_FEE;
use stellar_ledger::apply::close_ledger;
use stellar_ledger::asset::Asset;
use stellar_ledger::header::{LedgerHeader, LedgerParams};
use stellar_ledger::sigcache::SigVerifyCache;
use stellar_ledger::store::LedgerStore;
use stellar_ledger::tx::{Memo, Operation, SourcedOperation, Transaction, TransactionEnvelope};
use stellar_ledger::txset::TransactionSet;
use stellar_scp::NodeId;
use stellar_sim::loadgen::{user_account, user_keys};
use stellar_telemetry::Json;

/// One sweep point: how many ledgers behind the rebooted node is.
#[derive(Clone, Copy)]
struct Config {
    gap: u64,
    accounts: u64,
    txs_per_ledger: u64,
}

/// Measured outcome of one sweep point.
struct Outcome {
    ledgers_replayed: u64,
    recovery_ms: f64,
    ledgers_per_sec: f64,
    txs_replayed: u64,
    archive_bytes: u64,
    checkpoints: u64,
    persisted_bytes: u64,
}

/// Closes `cfg.gap` ledgers of payment load on a lone chain, publishing
/// every ledger to a history archive, and returns the genesis store
/// (what the rebooted node starts from) plus the archive (what it
/// recovers through).
fn build_archive(cfg: &Config) -> (LedgerStore, HistoryArchive, u64) {
    let genesis = store_with_accounts(cfg.accounts);
    let mut live = genesis.clone();
    let mut buckets = BucketList::seed(live.all_entries());
    // Mirror `Herder::new` exactly: the recovering herder must start
    // from a bit-identical genesis header or replay verification fails.
    let mut header = LedgerHeader::genesis(Hash256::ZERO);
    header.snapshot_hash = buckets.hash();
    let mut archive = HistoryArchive::new();
    let mut next_seq: BTreeMap<u64, u64> = BTreeMap::new();
    let mut total_txs = 0u64;
    for l in 0..cfg.gap {
        let mut batch = Vec::with_capacity(cfg.txs_per_ledger as usize);
        for t in 0..cfg.txs_per_ledger {
            let n = l * cfg.txs_per_ledger + t;
            let src = n % cfg.accounts;
            let seq = {
                let s = next_seq.entry(src).or_insert(1);
                let v = *s;
                *s += 1;
                v
            };
            let tx = Transaction {
                source: user_account(src),
                seq_num: seq,
                fee: BASE_FEE,
                time_bounds: None,
                memo: Memo::Id(n),
                operations: vec![SourcedOperation {
                    source: None,
                    op: Operation::Payment {
                        destination: user_account((src + 1) % cfg.accounts),
                        asset: Asset::Native,
                        amount: 1 + (n % 100) as i64,
                    },
                }],
            };
            batch.push(TransactionEnvelope::sign(tx, &[&user_keys(src)]));
        }
        let set = TransactionSet::assemble(header.hash(), batch, u32::MAX);
        let res = close_ledger(
            &mut live,
            &header,
            &set,
            header.close_time + 5,
            LedgerParams::default(),
            &mut SigVerifyCache::disabled(),
        );
        for r in &res.results {
            assert!(r.is_success(), "bench tx failed: {r:?}");
        }
        total_txs += set.txs.len() as u64;
        buckets.add_batch(res.header.ledger_seq, &res.changes);
        header = res.header;
        header.snapshot_hash = buckets.hash();
        archive.publish(&header, &set, &mut buckets);
    }
    (genesis, archive, total_txs)
}

/// Times a fresh herder recovering through the archive: genesis state,
/// empty durable store, `catch_up_from` replays and hash-verifies every
/// ledger, then persists the recovered LCL.
fn run_config(cfg: Config) -> Outcome {
    let (genesis, archive, txs_replayed) = build_archive(&cfg);
    let mut herder = Herder::new(NodeId(0), genesis, BTreeMap::new());
    let t0 = Instant::now();
    let replayed = herder.catch_up_from(&archive);
    let elapsed = t0.elapsed();
    assert_eq!(replayed, cfg.gap, "recovery must replay the full gap");
    assert_eq!(
        herder.header.hash(),
        archive
            .header(archive.latest_seq().unwrap())
            .unwrap()
            .hash(),
        "recovered tip must match the archive"
    );
    let recovery_ms = elapsed.as_secs_f64() * 1e3;
    Outcome {
        ledgers_replayed: replayed,
        recovery_ms,
        ledgers_per_sec: replayed as f64 / elapsed.as_secs_f64(),
        txs_replayed,
        archive_bytes: archive.bytes_written,
        checkpoints: archive.checkpoint_count() as u64,
        persisted_bytes: herder.persist.stats().bytes_written,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let gaps: &[u64] = if quick {
        &[4, 16, 64]
    } else {
        &[4, 16, 64, 128, 256]
    };
    let configs: Vec<Config> = gaps
        .iter()
        .map(|&gap| Config {
            gap,
            accounts: 500,
            txs_per_ledger: 20,
        })
        .collect();

    println!("=== E16: crash-restart recovery time vs ledger gap ===\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for cfg in &configs {
        eprintln!(
            "running gap {} ({} tx/ledger, {} accounts) …",
            cfg.gap, cfg.txs_per_ledger, cfg.accounts
        );
        let out = run_config(*cfg);
        rows.push(vec![
            format!("{}", cfg.gap),
            format!("{}", out.ledgers_replayed),
            format!("{}", out.txs_replayed),
            format!("{:.2}", out.recovery_ms),
            format!("{:.0}", out.ledgers_per_sec),
            format!("{}", out.checkpoints),
            format!("{:.1}", out.archive_bytes as f64 / 1024.0),
            format!("{}", out.persisted_bytes),
        ]);
        results.push(
            Json::obj()
                .set("gap", cfg.gap)
                .set("accounts", cfg.accounts)
                .set("txs_per_ledger", cfg.txs_per_ledger)
                .set("ledgers_replayed", out.ledgers_replayed)
                .set("txs_replayed", out.txs_replayed)
                .set("recovery_ms", out.recovery_ms)
                .set("ledgers_per_sec", out.ledgers_per_sec)
                .set("checkpoints", out.checkpoints)
                .set("archive_bytes", out.archive_bytes)
                .set("persisted_bytes", out.persisted_bytes),
        );
    }
    print_table(
        &[
            "gap",
            "replayed",
            "txs",
            "recovery(ms)",
            "ledgers/s",
            "ckpts",
            "archive(KiB)",
            "lcl bytes",
        ],
        &rows,
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "recovery")
        .set("quick", quick)
        .set("results", Json::Arr(results));
    write_bench_json("recovery", &doc).expect("write BENCH_recovery.json");
}

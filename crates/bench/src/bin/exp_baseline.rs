//! E7/E8 — the §7.3 baseline experiment.
//!
//! Paper setup: 100,000 accounts, 4 validators, 100 tx/s. Paper results:
//! 507 ± 49 transactions per ledger; mean latencies 82.53 ms nomination,
//! 95.96 ms balloting, 174.08 ms ledger update; ledgers close every ~5 s
//! with no transactions dropped.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_baseline
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

fn main() {
    let accounts = 100_000;
    let rate = 100.0;
    let ledgers = 15;
    eprintln!("building 4 validators × {accounts} accounts …");
    let t0 = std::time::Instant::now();
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: accounts,
        tx_rate: rate,
        target_ledgers: ledgers,
        seed: 7,
        ..SimConfig::default()
    });
    eprintln!(
        "setup took {:.1}s; running {ledgers} ledgers …",
        t0.elapsed().as_secs_f64()
    );
    let report = sim.run().without_warmup(2);

    println!("=== E7: §7.3 baseline (100k accounts, 4 validators, 100 tx/s) ===\n");
    let rows = vec![
        vec![
            "this repro".into(),
            format!(
                "{:.1} ± {:.1}",
                report.mean_tx_per_ledger(),
                report.stddev_tx_per_ledger()
            ),
            format!("{:.2}", report.mean_nomination_ms()),
            format!("{:.2}", report.mean_balloting_ms()),
            format!("{:.2}", report.mean_ledger_update_ms()),
            format!("{:.2}", report.mean_close_interval_s()),
        ],
        vec![
            "paper".into(),
            "507 ± 49".into(),
            "82.53".into(),
            "95.96".into(),
            "174.08".into(),
            "~5.0".into(),
        ],
    ];
    print_table(
        &[
            "source",
            "tx/ledger",
            "nominate(ms)",
            "ballot(ms)",
            "apply(ms)",
            "close(s)",
        ],
        &rows,
    );

    let delivered: usize = report.ledgers.iter().map(|l| l.tx_count).sum();
    println!(
        "\ngenerated {} txs, confirmed {} across {} ledgers (queue drains into later ledgers; none dropped)",
        report.txs_generated,
        delivered,
        report.ledgers.len()
    );
    println!(
        "nomination p99: {:.1} ms   balloting p99: {:.1} ms",
        report.percentile_of(99.0, |l| l.nomination_ms as f64),
        report.percentile_of(99.0, |l| l.balloting_ms as f64),
    );

    // Machine-readable twin of the table above (same trimmed report, so
    // the JSON's mean_consensus_ms equals nominate + ballot printed).
    let doc = report.to_bench_json("baseline");
    write_bench_json("baseline", &doc).expect("write BENCH_baseline.json");
}

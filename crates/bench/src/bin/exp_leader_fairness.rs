//! Ablation — weighted federated leader selection (§3.2.5).
//!
//! The paper's motivating example: "if Europe and China each contribute 3
//! nodes to every quorum, but China runs 1,000 nodes and Europe 4, then
//! China will have the highest-priority node 99.6% of the time" under the
//! strawman (priority over all nodes). Slice *weights* fix this: a node's
//! chance of leading follows the fraction of slices it appears in, not
//! raw node count.
//!
//! This experiment builds exactly that configuration and measures, over
//! many slots, how often each organization's node wins leader election
//! under (a) the strawman and (b) the paper's neighbors/priority scheme.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_leader_fairness
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_scp::leader::{priority, round_leader};
use stellar_scp::{NodeId, QuorumSet};
use stellar_telemetry::Json;

fn main() {
    // Europe: nodes 0..4 (4 nodes). China: nodes 1000..2000 (1,000 nodes).
    let europe: Vec<NodeId> = (0..4).map(NodeId).collect();
    let china: Vec<NodeId> = (1000..2000).map(NodeId).collect();
    // Each org contributes an inner set of 3-of-its-nodes; both required.
    let qset = QuorumSet {
        threshold: 2,
        validators: vec![],
        inner: vec![
            QuorumSet::threshold_of(3, europe.clone()),
            QuorumSet::threshold_of(3, china.clone()),
        ],
    };
    let me = NodeId(0); // a European observer
    let slots = 5_000u64;

    // Strawman: highest priority over ALL nodes, no weighting.
    let mut strawman_china = 0u64;
    let all: Vec<NodeId> = europe.iter().chain(china.iter()).copied().collect();
    for slot in 0..slots {
        let best = all
            .iter()
            .copied()
            .max_by_key(|v| (priority(slot, 1, *v), *v))
            .unwrap();
        if best.0 >= 1000 {
            strawman_china += 1;
        }
    }

    // The paper's scheme: neighbors filtered by slice weight.
    let mut weighted_china = 0u64;
    let mut weighted_self = 0u64;
    for slot in 0..slots {
        let leader = round_leader(me, &qset, slot, 1);
        if leader.0 >= 1000 {
            weighted_china += 1;
        }
        if leader == me {
            weighted_self += 1;
        }
    }

    println!("=== ablation: leader fairness (§3.2.5 Europe 4 nodes vs China 1000 nodes) ===\n");
    let pct = |n: u64| format!("{:.1}%", n as f64 * 100.0 / slots as f64);
    let rows = vec![
        vec![
            "strawman: argmax priority(v)".into(),
            pct(strawman_china),
            "99.6% (paper)".into(),
        ],
        vec![
            "weighted neighbors (SCP)".into(),
            pct(weighted_china),
            "≈ slice-weight share".into(),
        ],
    ];
    print_table(&["scheme", "China-led slots", "expected"], &rows);
    println!(
        "\nweighted scheme: observer led itself {} of {slots} slots (self-weight 1.0 boost)",
        weighted_self
    );
    println!(
        "\nboth orgs required (2-of-2): weight(europe node) = 3/4, weight(china node) = 3/1000:"
    );
    println!(
        "  weight(europe node) = {:.4}, weight(china node) = {:.6}",
        qset.weight(NodeId(1)),
        qset.weight(NodeId(1500)),
    );
    println!("aggregate: Europe ≈ China in leadership share despite the 250× node-count gap.");
    assert!(
        strawman_china > slots * 95 / 100,
        "strawman must be dominated by China"
    );
    assert!(
        weighted_china < slots / 2,
        "weighting must suppress China's node-count advantage"
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "leader_fairness")
        .set(
            "results",
            Json::obj()
                .set("slots", slots)
                .set("strawman_china_led", strawman_china)
                .set("weighted_china_led", weighted_china)
                .set("weighted_self_led", weighted_self),
        );
    write_bench_json("leader_fairness", &doc).expect("write BENCH_leader_fairness.json");
}

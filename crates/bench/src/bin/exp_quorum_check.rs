//! E10/E11 — §6.2: quorum-intersection checking cost and tier synthesis.
//!
//! Paper: "the current network's quorum slice transitive closures are on
//! the order of 20–30 nodes and, with Lachowski's optimizations, typically
//! check in a matter of seconds on a single CPU."
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_quorum_check
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_quorum::criticality::{check_criticality, OrgMap};
use stellar_quorum::intersection::{enjoys_quorum_intersection, FbaSystem};
use stellar_quorum::tiers::{synthesize_all, synthesize_quorum_set, OrgConfig, Quality};
use stellar_scp::NodeId;
use stellar_telemetry::Json;

fn tiered(n_orgs: u32, per_org: u32) -> (FbaSystem, OrgMap) {
    let orgs: Vec<OrgConfig> = (0..n_orgs)
        .map(|o| {
            let members: Vec<NodeId> = (o * per_org..(o + 1) * per_org).map(NodeId).collect();
            OrgConfig::new(&format!("org{o}"), members, Quality::High)
        })
        .collect();
    let sys = FbaSystem::new(synthesize_all(&orgs));
    let map = orgs
        .iter()
        .map(|o| (o.name.clone(), o.validators.clone()))
        .collect();
    (sys, map)
}

fn main() {
    println!("=== E10: quorum-intersection check cost (§6.2.1) ===\n");
    let mut rows = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for (orgs, per) in [(4u32, 3u32), (5, 3), (6, 4), (7, 4), (8, 4)] {
        let (sys, map) = tiered(orgs, per);
        let t0 = std::time::Instant::now();
        let ok = enjoys_quorum_intersection(&sys);
        let check = t0.elapsed();
        let t0 = std::time::Instant::now();
        let report = check_criticality(&sys, &map);
        let crit = t0.elapsed();
        points.push(
            Json::obj()
                .set("nodes", u64::from(orgs * per))
                .set("orgs", u64::from(orgs))
                .set("intersects", ok)
                .set("check_ms", check.as_secs_f64() * 1000.0)
                .set("critical_orgs", report.critical_orgs.len() as u64)
                .set("criticality_scan_ms", crit.as_secs_f64() * 1000.0),
        );
        rows.push(vec![
            format!("{}", orgs * per),
            format!("{orgs}"),
            format!("{ok}"),
            format!("{:.2}", check.as_secs_f64() * 1000.0),
            format!("{}", report.critical_orgs.len()),
            format!("{:.2}", crit.as_secs_f64() * 1000.0),
        ]);
    }
    print_table(
        &[
            "nodes",
            "orgs",
            "intersects",
            "check(ms)",
            "critical orgs",
            "criticality scan(ms)",
        ],
        &rows,
    );
    println!("\npaper: 20–30 node closures check in seconds; ours are well inside that budget.");

    println!("\n=== E11: Fig. 6 tier synthesis ===\n");
    let orgs = vec![
        OrgConfig::new("crit-a", (0..3).map(NodeId).collect(), Quality::Critical),
        OrgConfig::new("crit-b", (3..6).map(NodeId).collect(), Quality::Critical),
        OrgConfig::new("high-a", (6..9).map(NodeId).collect(), Quality::High),
        OrgConfig::new("high-b", (9..12).map(NodeId).collect(), Quality::High),
        OrgConfig::new("high-c", (12..15).map(NodeId).collect(), Quality::High),
        OrgConfig::new("med-a", (15..18).map(NodeId).collect(), Quality::Medium),
        OrgConfig::new("low-a", (18..21).map(NodeId).collect(), Quality::Low),
    ];
    let (qset, warnings) = synthesize_quorum_set(&orgs);
    fn describe(q: &stellar_scp::QuorumSet, depth: usize) {
        let pad = "  ".repeat(depth);
        println!(
            "{pad}{}-of-{} ({} validators, {} inner groups)",
            q.threshold,
            q.num_entries(),
            q.validators.len(),
            q.inner.len()
        );
        for i in &q.inner {
            describe(i, depth + 1);
        }
    }
    describe(&qset, 0);
    println!("\nwarnings: {warnings:?}");
    let sys = FbaSystem::new(synthesize_all(&orgs));
    println!(
        "synthesized configuration enjoys quorum intersection: {}",
        enjoys_quorum_intersection(&sys)
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "quorum_check")
        .set("points", points);
    write_bench_json("quorum_check", &doc).expect("write BENCH_quorum_check.json");
}

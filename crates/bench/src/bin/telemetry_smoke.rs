//! CI smoke test for the observability stack (telemetry crate + wiring).
//!
//! Runs a short simulation and verifies, end to end, that:
//!
//! 1. the run produces a schema-valid `BENCH_smoke.json` (written, read
//!    back, re-parsed, and structurally checked — counters, histograms,
//!    typed traffic split all present and plausible);
//! 2. the observer's flight recorder captured a non-empty, renderable
//!    per-slot timeline and JSONL dump;
//! 3. registry upkeep stays cheap: a second identical run with the same
//!    seed reproduces the same counter values (determinism guard for
//!    the whole instrumentation path).
//!
//! Exits non-zero on the first failed check, printing what broke.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin telemetry_smoke
//! ```

use stellar_bench::write_bench_json;
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

fn fail(msg: &str) -> ! {
    eprintln!("telemetry smoke FAILED: {msg}");
    std::process::exit(1);
}

fn require(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

fn num(doc: &Json, path: &[&str]) -> f64 {
    let mut cur = doc;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| fail(&format!("missing key {:?}", path.join("."))));
    }
    cur.as_f64()
        .unwrap_or_else(|| fail(&format!("{} is not a number", path.join("."))))
}

fn smoke_config() -> SimConfig {
    SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 100,
        tx_rate: 10.0,
        target_ledgers: 4,
        seed: 4242,
        max_sim_time_ms: 120_000,
        ..SimConfig::default()
    }
}

fn main() {
    let mut sim = Simulation::new(smoke_config());
    let report = sim.run();
    require(report.ledgers.len() >= 4, "sim must close 4 ledgers");

    // 1. BENCH_smoke.json: write, read back, parse, check structure.
    let doc = report.to_bench_json("smoke");
    let path = write_bench_json("smoke", &doc).unwrap_or_else(|e| fail(&format!("write: {e}")));
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read back: {e}")));
    let parsed = Json::parse(&raw).unwrap_or_else(|e| fail(&format!("re-parse: {e:?}")));
    require(
        parsed.get("schema").and_then(Json::as_str) == Some("stellar-bench/v2"),
        "schema marker missing",
    );
    require(
        parsed.get("name").and_then(Json::as_str) == Some("smoke"),
        "name field missing",
    );
    let mean = num(&parsed, &["results", "mean_consensus_ms"]);
    require(
        mean > 0.0 && mean < 60_000.0,
        "mean consensus latency implausible",
    );
    require(
        (mean - report.mean_consensus_ms()).abs() < 1e-6,
        "JSON mean_consensus_ms must match the report",
    );
    let externalized = num(
        &parsed,
        &["telemetry", "registry", "counters", "scp.externalized"],
    );
    require(externalized >= 4.0, "scp.externalized counter too low");
    require(
        parsed
            .get("telemetry")
            .and_then(|t| t.get("registry"))
            .and_then(|r| r.get("histograms"))
            .and_then(|h| h.get("consensus.total_ms"))
            .is_some(),
        "consensus.total_ms histogram missing",
    );
    let dup = num(&parsed, &["telemetry", "network_traffic", "dup_suppressed"]);
    require(dup > 0.0, "flood duplicate-suppression counter is zero");
    let scp_in = num(
        &parsed,
        &["telemetry", "network_traffic", "in_by_kind", "scp"],
    );
    require(scp_in > 0.0, "typed traffic split shows no SCP messages");

    // 2. Flight recorder: non-empty dump and a renderable timeline.
    let recorder = &sim.telemetry(sim.observer_id()).recorder;
    require(!recorder.is_empty(), "flight recorder is empty");
    let dump = recorder.dump_jsonl();
    require(!dump.is_empty(), "flight-recorder JSONL dump is empty");
    for line in dump.lines() {
        if Json::parse(line).is_err() {
            fail(&format!("invalid JSONL line: {line}"));
        }
    }
    let timeline = recorder.timeline(recorder.latest_slot());
    require(
        timeline.contains("timeline"),
        "timeline renderer produced nothing",
    );

    // 3. Determinism: instrumentation must not perturb the run, and the
    // counters themselves must be reproducible.
    let mut sim2 = Simulation::new(smoke_config());
    let report2 = sim2.run();
    // (Histograms carry wall-clock apply times and are exempt; every
    // counter tracks simulated events and must match exactly.)
    let counters = |r: &Json| r.get("registry").and_then(|x| x.get("counters")).cloned();
    require(
        counters(&report.telemetry) == counters(&report2.telemetry),
        "telemetry counters must be deterministic for a fixed seed",
    );
    require(
        report.scp_msgs_originated == report2.scp_msgs_originated,
        "message counts must be deterministic",
    );

    println!(
        "telemetry smoke OK: {} ledgers, {} trace events, {} bytes of BENCH_smoke.json",
        report.ledgers.len(),
        recorder.len(),
        raw.len()
    );
}

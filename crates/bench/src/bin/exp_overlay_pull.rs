//! E15 — pull-mode overlay flooding: advert/demand vs naïve push.
//!
//! Runs the same loaded network twice per sweep point — once with §7.5
//! push flooding, once with pull-mode advert/demand gossip — and
//! compares total flooded bytes per closed ledger. Production
//! stellar-core moved to exactly this advert/demand scheme to cut the
//! duplicate-payload waste of naïve flooding; the flagship 36-node
//! tiered topology must show at least a 30% reduction.
//!
//! The committed `BENCH_overlay_pull.json` doubles as the regression
//! baseline: reruns fail if the schema drifts or pull-mode flood bytes
//! regress more than 10% above the committed figures.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_overlay_pull [-- --quick]
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_overlay::{FloodMode, MsgKind, TrafficStats};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

/// One sweep point: a tiered topology under a given load.
#[derive(Clone, Copy)]
struct Config {
    n_orgs: u32,
    validators_per_org: u32,
    n_watchers: u32,
    tx_rate: f64,
    target_ledgers: u64,
    /// The acceptance-gated flagship (36 nodes, §7.2-level load).
    flagship: bool,
}

impl Config {
    fn nodes(&self) -> u32 {
        self.n_orgs * self.validators_per_org + self.n_watchers
    }
}

/// Network-wide traffic outcome of one run.
struct Outcome {
    ledgers: u64,
    bytes_per_ledger: f64,
    net: TrafficStats,
}

fn run_mode(cfg: &Config, mode: FloodMode) -> Outcome {
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::PublicNetwork {
            n_orgs: cfg.n_orgs,
            validators_per_org: cfg.validators_per_org,
            n_watchers: cfg.n_watchers,
        },
        n_accounts: 2_000,
        tx_rate: cfg.tx_rate,
        target_ledgers: cfg.target_ledgers,
        seed: 0xE15,
        flood_mode: mode,
        ..SimConfig::default()
    });
    let report = sim.run();
    let mut net = TrafficStats::default();
    for t in report.traffic.values() {
        net.merge(t);
    }
    let ledgers = report.ledgers.len().max(1) as u64;
    assert!(
        report.ledgers.len() as u64 >= cfg.target_ledgers,
        "{:?} run closed only {} of {} ledgers",
        mode,
        report.ledgers.len(),
        cfg.target_ledgers
    );
    Outcome {
        ledgers,
        bytes_per_ledger: net.bytes_out as f64 / ledgers as f64,
        net,
    }
}

/// Loads the committed previous results, if present (they double as the
/// regression baseline).
fn load_committed() -> Option<Json> {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    for candidate in [
        std::path::Path::new(&dir).join("BENCH_overlay_pull.json"),
        std::path::PathBuf::from("BENCH_overlay_pull.json"),
    ] {
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            if let Ok(doc) = Json::parse(&text) {
                return Some(doc);
            }
        }
    }
    None
}

/// Committed pull-mode bytes/ledger for a config, if recorded.
fn committed_pull_rate(doc: &Json, cfg: &Config) -> Option<f64> {
    for r in doc.get("results")?.as_arr()? {
        let matches = |key: &str, v: f64| r.get(key).and_then(Json::as_f64) == Some(v);
        if matches("n_orgs", cfg.n_orgs as f64)
            && matches("validators_per_org", cfg.validators_per_org as f64)
            && matches("n_watchers", cfg.n_watchers as f64)
            && matches("tx_rate", cfg.tx_rate)
        {
            return r.get("pull_bytes_per_ledger").and_then(Json::as_f64);
        }
    }
    None
}

/// Validates the committed document's shape before using it as a gate.
fn check_schema(doc: &Json) {
    let schema = doc.get("schema").and_then(Json::as_str);
    assert_eq!(
        schema,
        Some("stellar-bench/v2"),
        "committed BENCH_overlay_pull.json schema mismatch: {schema:?}"
    );
    let name = doc.get("name").and_then(Json::as_str);
    assert_eq!(
        name,
        Some("overlay_pull"),
        "committed BENCH_overlay_pull.json is not the overlay_pull document"
    );
    assert!(
        doc.get("results").and_then(Json::as_arr).is_some(),
        "committed BENCH_overlay_pull.json has no results array"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The quick config is the full sweep's smallest point, so the
    // committed baseline covers it and CI gets a real regression gate.
    let small = Config {
        n_orgs: 3,
        validators_per_org: 3,
        n_watchers: 6,
        tx_rate: 2.0,
        target_ledgers: 6,
        flagship: false,
    };
    let configs: Vec<Config> = if quick {
        vec![small]
    } else {
        vec![
            small,
            Config {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 12,
                tx_rate: 2.0,
                target_ledgers: 6,
                flagship: false,
            },
            // The 36-node tiered topology at the paper's production
            // average (§7.2: 4.5 tx/s): SCP envelopes — push in both
            // modes — dominate, so the saving is modest.
            Config {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 24,
                tx_rate: 4.5,
                target_ledgers: 8,
                flagship: false,
            },
            // Flagship: the same 36 nodes under real payment load
            // (§7.3 ramps ledgers into the hundreds of ops). Here
            // Tx/TxSet payloads dominate the flood and pull-mode's
            // once-per-node transfer must cut total bytes ≥30% —
            // acceptance-gated below.
            Config {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 24,
                tx_rate: 20.0,
                target_ledgers: 8,
                flagship: true,
            },
        ]
    };

    let committed = load_committed();
    if let Some(doc) = &committed {
        check_schema(doc);
    }

    println!("=== E15: pull-mode flooding vs push (total flooded bytes/ledger) ===\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for cfg in &configs {
        eprintln!(
            "running {} nodes ({} orgs × {} validators + {} watchers) at {} tx/s, push vs pull …",
            cfg.nodes(),
            cfg.n_orgs,
            cfg.validators_per_org,
            cfg.n_watchers,
            cfg.tx_rate
        );
        let push = run_mode(cfg, FloodMode::Push);
        let pull = run_mode(cfg, FloodMode::Pull);
        let reduction = 1.0 - pull.bytes_per_ledger / push.bytes_per_ledger;

        if cfg.flagship {
            assert!(
                reduction >= 0.30,
                "flagship {}-node topology: pull saved only {:.1}% of flooded bytes (need ≥30%)",
                cfg.nodes(),
                reduction * 100.0
            );
        }
        if let Some(doc) = &committed {
            if let Some(base) = committed_pull_rate(doc, cfg) {
                assert!(
                    pull.bytes_per_ledger <= base * 1.10,
                    "pull-mode flood bytes regressed: {:.0}/ledger vs committed {:.0}/ledger",
                    pull.bytes_per_ledger,
                    base
                );
            }
        }

        rows.push(vec![
            format!("{}", cfg.nodes()),
            format!("{:.1}", cfg.tx_rate),
            format!("{:.0}", push.bytes_per_ledger),
            format!("{:.0}", pull.bytes_per_ledger),
            format!("{:.1}%", reduction * 100.0),
            format!("{}", pull.net.out_count(MsgKind::Advert)),
            format!("{}", pull.net.out_count(MsgKind::Demand)),
            format!("{}", pull.net.pull_timeouts),
        ]);
        results.push(
            Json::obj()
                .set("n_orgs", u64::from(cfg.n_orgs))
                .set("validators_per_org", u64::from(cfg.validators_per_org))
                .set("n_watchers", u64::from(cfg.n_watchers))
                .set("nodes", u64::from(cfg.nodes()))
                .set("tx_rate", cfg.tx_rate)
                .set("target_ledgers", cfg.target_ledgers)
                .set("ledgers_push", push.ledgers)
                .set("ledgers_pull", pull.ledgers)
                .set("push_bytes_per_ledger", push.bytes_per_ledger)
                .set("pull_bytes_per_ledger", pull.bytes_per_ledger)
                .set("bytes_reduction", reduction)
                .set("push_dup_suppressed", push.net.dup_suppressed)
                .set("pull_dup_suppressed", pull.net.dup_suppressed)
                .set("adverts_sent", pull.net.out_count(MsgKind::Advert))
                .set("demands_sent", pull.net.out_count(MsgKind::Demand))
                .set("pull_fulfilled", pull.net.pull_fulfilled)
                .set("pull_timeouts", pull.net.pull_timeouts)
                .set("flagship", cfg.flagship),
        );
    }
    print_table(
        &[
            "nodes",
            "tx/s",
            "push B/ledger",
            "pull B/ledger",
            "saved",
            "adverts",
            "demands",
            "timeouts",
        ],
        &rows,
    );
    println!(
        "\n(push baseline measured in-run with the same seed; committed \
         BENCH_overlay_pull.json gates schema + pull-byte regressions)"
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "overlay_pull")
        .set("quick", quick)
        .set("results", Json::Arr(results));
    write_bench_json("overlay_pull", &doc).expect("write BENCH_overlay_pull.json");
}

//! E3 — Fig. 8: timeouts per ledger on a production-like network.
//!
//! Paper table (68 hours on a production validator):
//!
//! | percentile | nomination | balloting |
//! |-----------:|-----------:|----------:|
//! | 75%        | 0          | 0         |
//! | 99%        | 1          | 0         |
//! | max        | 4          | 1         |
//!
//! Nomination timeouts measure leader-election (in)effectiveness; ballot
//! timeouts depend on network delays. This reproduction runs the Fig. 7
//! topology over WAN latencies for many ledgers and prints the same rows.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_fig8_timeouts
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

fn main() {
    let ledgers = 150;
    eprintln!("running {ledgers} WAN ledgers …");
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::PublicNetwork {
            n_orgs: 5,
            validators_per_org: 3,
            n_watchers: 12,
        },
        n_accounts: 5_000,
        tx_rate: 4.5,
        target_ledgers: ledgers,
        seed: 68,
        ..SimConfig::default()
    });
    let report = sim.run().without_warmup(2);
    let t = report.timeout_percentiles();

    println!(
        "=== E3: Fig. 8 — timeouts per ledger ({} ledgers, WAN) ===\n",
        report.ledgers.len()
    );
    let rows = vec![
        vec![
            "75%".into(),
            format!("{:.0}", t.nomination_p75),
            format!("{:.0}", t.ballot_p75),
            "0 / 0".into(),
        ],
        vec![
            "99%".into(),
            format!("{:.0}", t.nomination_p99),
            format!("{:.0}", t.ballot_p99),
            "1 / 0".into(),
        ],
        vec![
            "max".into(),
            format!("{:.0}", t.nomination_max),
            format!("{:.0}", t.ballot_max),
            "4 / 1".into(),
        ],
    ];
    print_table(
        &[
            "percentile",
            "nomination",
            "balloting",
            "paper (nom/ballot)",
        ],
        &rows,
    );

    let total_nom: u64 = report.ledgers.iter().map(|l| l.nomination_timeouts).sum();
    let total_bal: u64 = report.ledgers.iter().map(|l| l.ballot_timeouts).sum();
    println!("\ntotals: {total_nom} nomination timeouts, {total_bal} ballot timeouts");
    println!(
        "(most ledgers see zero timeouts; occasional nomination-round expiries match the paper)"
    );

    let doc = report.to_bench_json("fig8_timeouts").set(
        "timeouts",
        Json::obj()
            .set("nomination_p75", t.nomination_p75)
            .set("nomination_p99", t.nomination_p99)
            .set("nomination_max", t.nomination_max)
            .set("ballot_p75", t.ballot_p75)
            .set("ballot_p99", t.ballot_p99)
            .set("ballot_max", t.ballot_max)
            .set("nomination_total", total_nom)
            .set("ballot_total", total_bal),
    );
    write_bench_json("fig8_timeouts", &doc).expect("write BENCH_fig8_timeouts.json");
}

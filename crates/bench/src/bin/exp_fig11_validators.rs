//! E6 — Fig. 11: latency as the number of validators increases.
//!
//! Paper setup: 100,000 accounts, 100 tx/s, validators swept 4 → 43, all
//! validators in all quorum slices (worst case). Paper shape: nomination
//! grows slowly, balloting is the bottleneck (more messages to exchange),
//! ledger update independent of validator count.
//!
//! This reproduction uses 20k accounts per validator replica to keep the
//! 43-replica point inside laptop memory (documented in EXPERIMENTS.md);
//! account count does not affect the validator-scaling shape (Fig. 9).
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_fig11_validators
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

fn main() {
    let mut rows = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for n in [4u32, 10, 19, 28, 37, 43] {
        eprintln!("validators = {n} …");
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: n },
            n_accounts: 20_000,
            tx_rate: 100.0,
            target_ledgers: 8,
            seed: 11,
            ..SimConfig::default()
        });
        let report = sim.run().without_warmup(2);
        rows.push(vec![
            format!("{n}"),
            format!("{:.1}", report.mean_nomination_ms()),
            format!("{:.1}", report.mean_balloting_ms()),
            format!("{:.2}", report.mean_ledger_update_ms()),
            format!("{:.2}", report.mean_close_interval_s()),
            format!("{:.1}", report.scp_msgs_per_ledger()),
        ]);
        let point = report.to_bench_json("point");
        points.push(Json::obj().set("n_validators", u64::from(n)).set(
            "results",
            point.get("results").cloned().unwrap_or(Json::Null),
        ));
    }
    println!("=== E6: Fig. 11 — latency vs. validators (100 tx/s, majority slices) ===\n");
    print_table(
        &[
            "validators",
            "nominate(ms)",
            "ballot(ms)",
            "apply(ms)",
            "close(s)",
            "scp msgs/ledger",
        ],
        &rows,
    );
    println!(
        "\npaper shape: balloting grows with validator count; ledger update independent of it."
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "fig11_validators")
        .set("points", points);
    write_bench_json("fig11_validators", &doc).expect("write BENCH_fig11_validators.json");
}

//! Diagnostic: per-ledger nomination latency and timeout breakdown.

use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};

fn main() {
    let mut sim = Simulation::new(SimConfig {
        scenario: Scenario::ControlledMesh { n_validators: 4 },
        n_accounts: 10_000,
        tx_rate: 100.0,
        target_ledgers: 10,
        seed: 9,
        ..SimConfig::default()
    });
    let report = sim.run();
    for l in &report.ledgers {
        println!(
            "slot {:>3}  nominate {:>6} ms  ballot {:>5} ms  nom_timeouts {}  ballot_timeouts {}  ext_at {}",
            l.slot, l.nomination_ms, l.balloting_ms, l.nomination_timeouts, l.ballot_timeouts, l.externalized_at_ms
        );
    }
    // Dump raw events of the observer for the slowest slot.
    let worst = report
        .ledgers
        .iter()
        .max_by_key(|l| l.nomination_ms)
        .unwrap()
        .slot;
    println!("\nevents for slot {worst} at observer:");
    let obs = sim.validator(sim.observer_id());
    for (t, ev) in &obs.herder.events {
        let s = format!("{ev:?}");
        if s.contains(&format!("slot: {worst}")) {
            println!("  t={t}  {s}");
        }
    }
}

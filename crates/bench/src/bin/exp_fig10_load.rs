//! E5 — Fig. 10: latency as transaction load increases.
//!
//! Paper setup: 100,000 accounts, 4 validators, load swept 100 → 350
//! tx/s. Paper shape: "slow growth in the consensus latency, while the
//! majority of time was spent updating the ledger" — apply time grows
//! with transactions per ledger.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_fig10_load
//! ```

use stellar_bench::{print_table, write_bench_json};
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, Simulation};
use stellar_telemetry::Json;

fn main() {
    let accounts = 100_000;
    let mut rows = Vec::new();
    let mut points: Vec<Json> = Vec::new();
    for rate in [100.0f64, 150.0, 200.0, 250.0, 300.0, 350.0] {
        eprintln!("load = {rate} tx/s …");
        let mut sim = Simulation::new(SimConfig {
            scenario: Scenario::ControlledMesh { n_validators: 4 },
            n_accounts: accounts,
            tx_rate: rate,
            target_ledgers: 10,
            seed: 10,
            max_tx_set_ops: 10_000,
            ..SimConfig::default()
        });
        let report = sim.run().without_warmup(2);
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{:.1}", report.mean_nomination_ms()),
            format!("{:.1}", report.mean_balloting_ms()),
            format!("{:.2}", report.mean_ledger_update_ms()),
            format!("{:.2}", report.mean_close_interval_s()),
            format!("{:.1}", report.mean_tx_per_ledger()),
        ]);
        let point = report.to_bench_json("point");
        points.push(Json::obj().set("tx_rate", rate).set(
            "results",
            point.get("results").cloned().unwrap_or(Json::Null),
        ));
    }
    println!("=== E5: Fig. 10 — latency vs. load (100k accounts, 4 validators) ===\n");
    print_table(
        &[
            "tx/s",
            "nominate(ms)",
            "ballot(ms)",
            "apply(ms)",
            "close(s)",
            "tx/ledger",
        ],
        &rows,
    );
    println!("\npaper shape: consensus latency grows slowly; ledger update grows with tx/ledger.");

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "fig10_load")
        .set("points", points);
    write_bench_json("fig10_load", &doc).expect("write BENCH_fig10_load.json");
}

//! E20 — the horizon production pipeline under sustained query+submit
//! load: p99 query latency vs ingestion lag, admission-controlled burst
//! shedding, and the indexer on/off determinism gate.
//!
//! §5 of the paper describes Horizon as the API tier that "ingests the
//! ledger changes" and serves clients without sitting on the consensus
//! path. This experiment measures that tier end to end on a closing
//! tiered public network (flagship: 36 nodes):
//!
//! 1. **latency vs lag** — horizon clients continuously query account
//!    summaries, indexed history pages, and fee stats against the
//!    observer while payment load closes ledgers. Sweeping the
//!    ingestion cadence (per-close, 2 s, 8 s) trades freshness for
//!    batching: wall-clock query p50/p99 (µs) is reported against the
//!    ingestion-lag distribution (ledgers behind head) sampled at each
//!    query.
//! 2. **determinism** — a same-seed twin with the whole pipeline
//!    removed must externalize byte-identical headers (the header's
//!    snapshot hash commits the bucket list), ledger by ledger: the
//!    pipeline is provably off-consensus at bench scale.
//! 3. **burst shedding** — a 10× submission burst against a strict
//!    admission tuning must be shed at the front door (shed > 0)
//!    while ledgers keep closing at a cadence within 1.6× of the
//!    unburdened run: overload degrades service, never consensus.
//! 4. **1M clients** — the admission front door itself is driven by
//!    one million *distinct* client identities (the fan-in the 36-node
//!    network's front door would see); the per-source bucket table must
//!    stay within its configured bound via idle-bucket recycling, at
//!    millions of decisions per second.
//!
//! The committed `BENCH_horizon.json` doubles as the regression
//! baseline: reruns fail if the schema drifts, if the (deterministic,
//! simulated) ingestion-lag curve grows more than 50% over the
//! committed figure, or if the burst run stops shedding.
//!
//! ```sh
//! cargo run --release -p stellar-bench --bin exp_horizon [-- --quick]
//! ```

use std::time::Instant;
use stellar_bench::{print_table, write_bench_json};
use stellar_crypto::sign::PublicKey;
use stellar_horizon::{AdmissionConfig, AdmissionControl};
use stellar_ledger::entry::AccountId;
use stellar_sim::scenario::Scenario;
use stellar_sim::{SimConfig, SimReport, Simulation};
use stellar_telemetry::Json;

/// One sweep point: a tiered public-network topology under payment and
/// horizon query load.
#[derive(Clone, Copy)]
struct Config {
    n_orgs: u32,
    validators_per_org: u32,
    n_watchers: u32,
    tx_rate: f64,
    query_rate: f64,
    target_ledgers: u64,
    /// The acceptance-gated flagship (36 nodes).
    flagship: bool,
}

impl Config {
    fn nodes(&self) -> u32 {
        self.n_orgs * self.validators_per_org + self.n_watchers
    }

    fn sim(
        &self,
        admission: Option<AdmissionConfig>,
        tx_rate: f64,
        query_rate: f64,
        ingest_interval_ms: u64,
    ) -> SimConfig {
        SimConfig {
            scenario: Scenario::PublicNetwork {
                n_orgs: self.n_orgs,
                validators_per_org: self.validators_per_org,
                n_watchers: self.n_watchers,
            },
            n_accounts: 2_000,
            tx_rate,
            target_ledgers: self.target_ledgers,
            seed: 0xE20,
            horizon: admission,
            horizon_query_rate: query_rate,
            horizon_ingest_interval_ms: ingest_interval_ms,
            ..SimConfig::default()
        }
    }
}

/// A front door that never sheds: the admission code path runs on every
/// submission, but consensus input matches the pipeline-free twin.
fn permissive_admission() -> AdmissionConfig {
    AdmissionConfig {
        bucket_capacity: 1 << 20,
        refill_per_sec: 1 << 20,
        queue_capacity: 1 << 20,
        max_pending: 1 << 20,
        ..AdmissionConfig::default()
    }
}

/// A production-strict tuning for the burst experiment: a small global
/// pending limit so collapse-grade load is shed cheaply at the door.
fn strict_admission() -> AdmissionConfig {
    AdmissionConfig {
        bucket_capacity: 4,
        refill_per_sec: 1,
        queue_capacity: 100,
        max_pending: 60,
        ..AdmissionConfig::default()
    }
}

/// Mean observer-side inter-close interval (simulated ms).
fn mean_close_interval_ms(report: &SimReport) -> f64 {
    let times: Vec<u64> = report
        .ledgers
        .iter()
        .map(|l| l.externalized_at_ms)
        .collect();
    if times.len() < 2 {
        return 0.0;
    }
    times.windows(2).map(|w| (w[1] - w[0]) as f64).sum::<f64>() / (times.len() - 1) as f64
}

fn run_sim(cfg: SimConfig, target: u64) -> (Simulation, SimReport) {
    let mut sim = Simulation::new(cfg);
    let report = sim.run();
    assert!(
        report.ledgers.len() as u64 >= target,
        "run closed only {} of {} ledgers",
        report.ledgers.len(),
        target
    );
    (sim, report)
}

/// The admission front door alone, under `clients` *distinct* client
/// identities arriving at a sustained ~100 clients/ms. Returns the
/// results object for the report.
fn front_door_scale(clients: u64) -> Json {
    let cfg = AdmissionConfig::default();
    let mut ac = AdmissionControl::new(cfg);
    let (mut admitted, mut shed) = (0u64, 0u64);
    let t0 = Instant::now();
    for i in 0..clients {
        // A synthetic identity per client; the sustained clock advance
        // (1 ms per 100 arrivals) is what lets idle-bucket recycling
        // keep the table bounded.
        let source = AccountId(PublicKey(0x5EED_0000 + i));
        match ac.admit(source, i / 100, 0) {
            Ok(()) => admitted += 1,
            Err(_) => shed += 1,
        }
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let tracked = ac.tracked_sources();
    let recycles = ac.registry.counter("admission.table_recycles");
    assert!(
        tracked <= cfg.max_sources,
        "bucket table exceeded its bound: {} > {}",
        tracked,
        cfg.max_sources
    );
    assert!(
        recycles > 0,
        "a {clients}-client run must exercise table recycling"
    );
    eprintln!(
        "front door: {clients} distinct clients in {wall:.2} s \
         ({:.2} M decisions/s), table peak ≤ {}, {} recycles",
        clients as f64 / wall / 1e6,
        cfg.max_sources,
        recycles
    );
    Json::obj()
        .set("clients", clients)
        .set("admitted", admitted)
        .set("shed", shed)
        .set("wall_s", wall)
        .set("decisions_per_s", clients as f64 / wall)
        .set("tracked_sources_final", tracked as u64)
        .set("max_sources", cfg.max_sources as u64)
        .set("table_recycles", recycles)
}

/// Loads the committed previous results, if present (they double as the
/// regression baseline).
fn load_committed() -> Option<Json> {
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    for candidate in [
        std::path::Path::new(&dir).join("BENCH_horizon.json"),
        std::path::PathBuf::from("BENCH_horizon.json"),
    ] {
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            if let Ok(doc) = Json::parse(&text) {
                return Some(doc);
            }
        }
    }
    None
}

/// Committed mean ingestion lag for a (nodes, cadence) point, if any.
fn committed_lag_mean(doc: &Json, nodes: u32, cadence: u64) -> Option<f64> {
    for r in doc.get("results")?.as_arr()? {
        if r.get("nodes").and_then(Json::as_f64) == Some(nodes as f64)
            && r.get("ingest_interval_ms").and_then(Json::as_f64) == Some(cadence as f64)
        {
            return r.get("lag_mean_ledgers").and_then(Json::as_f64);
        }
    }
    None
}

/// Validates the committed document's shape before using it as a gate.
fn check_schema(doc: &Json) {
    let schema = doc.get("schema").and_then(Json::as_str);
    assert_eq!(
        schema,
        Some("stellar-bench/v2"),
        "committed BENCH_horizon.json schema mismatch: {schema:?}"
    );
    let name = doc.get("name").and_then(Json::as_str);
    assert_eq!(
        name,
        Some("horizon"),
        "committed BENCH_horizon.json is not the horizon document"
    );
    assert!(
        doc.get("results").and_then(Json::as_arr).is_some(),
        "committed BENCH_horizon.json has no results array"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The quick config is the full sweep's smallest point, so the
    // committed baseline covers it and CI gets a real regression gate.
    let small = Config {
        n_orgs: 3,
        validators_per_org: 3,
        n_watchers: 6,
        tx_rate: 2.0,
        query_rate: 20.0,
        target_ledgers: 6,
        flagship: false,
    };
    let configs: Vec<Config> = if quick {
        vec![small]
    } else {
        vec![
            small,
            // Flagship: the 36-node tiered topology with sustained
            // query+submit load — the acceptance setting.
            Config {
                n_orgs: 4,
                validators_per_org: 3,
                n_watchers: 24,
                tx_rate: 20.0,
                query_rate: 50.0,
                target_ledgers: 8,
                flagship: true,
            },
        ]
    };
    // Ingestion cadence sweep: per-close (lag pinned at 0), sub-interval
    // batching, and super-interval batching (lag must appear). Quick
    // runs keep the two endpoints the gates need.
    let cadences: &[u64] = if quick {
        &[0, 8_000]
    } else {
        &[0, 2_000, 8_000]
    };

    let committed = load_committed();
    if let Some(doc) = &committed {
        check_schema(doc);
    }

    println!("=== E20: horizon pipeline (query latency vs ingestion lag, burst shedding) ===\n");
    let mut lat_rows = Vec::new();
    let mut burst_rows = Vec::new();
    let mut results = Vec::new();
    let mut bursts = Vec::new();
    for cfg in &configs {
        eprintln!(
            "running {} nodes ({} orgs × {} validators + {} watchers), {} tx/s + {} q/s …",
            cfg.nodes(),
            cfg.n_orgs,
            cfg.validators_per_org,
            cfg.n_watchers,
            cfg.tx_rate,
            cfg.query_rate
        );

        // -- latency vs ingestion lag, sweeping the cadence ------------
        let mut baseline_interval = 0.0f64;
        let mut per_close_sim = None;
        for &cadence in cadences {
            let (sim, report) = run_sim(
                cfg.sim(
                    Some(permissive_admission()),
                    cfg.tx_rate,
                    cfg.query_rate,
                    cadence,
                ),
                cfg.target_ledgers,
            );
            let m = sim.horizon_metrics();
            let queries = m.counter("horizon.queries");
            assert!(queries > 0, "query load must have run");
            let q = m.histogram("horizon.query_ns").expect("query histogram");
            let lag = m.histogram("horizon.lag_at_query").expect("lag histogram");
            let (q_p50, q_p99) = (q.quantile(0.5), q.quantile(0.99));
            let (lag_mean, lag_max) = (lag.mean(), lag.max());
            let p = sim.horizon().expect("pipeline attached");
            let head = sim.validator(sim.observer_id()).herder.header.ledger_seq;
            if cadence == 0 {
                // Per-close ingestion: the indexer tracks the head
                // exactly, so every query observes zero lag.
                assert_eq!(p.indexer.ingested_seq(), head, "per-close indexer lags");
                assert_eq!(lag_max, 0, "per-close ingestion must pin lag at 0");
                baseline_interval = mean_close_interval_ms(&report);
            } else {
                assert!(
                    p.registry().counter("ingest.ledgers") > 0,
                    "indexer never ran"
                );
            }
            if cadence > 5_000 {
                // Batching slower than the close cadence must make lag
                // visible to clients — that is the freshness trade-off
                // this sweep quantifies.
                assert!(lag_max > 0, "super-interval cadence showed no lag");
            }
            if let Some(doc) = &committed {
                if let Some(base) = committed_lag_mean(doc, cfg.nodes(), cadence) {
                    assert!(
                        lag_mean <= base * 1.5 + 0.25,
                        "ingestion lag regressed at cadence {cadence}: \
                         mean {lag_mean:.2} vs committed {base:.2} ledgers"
                    );
                }
            }

            lat_rows.push(vec![
                format!("{}", cfg.nodes()),
                format!("{:.0}", cfg.query_rate),
                if cadence == 0 {
                    "close".into()
                } else {
                    format!("{cadence}")
                },
                format!("{}", report.ledgers.len()),
                format!("{}", queries),
                format!("{:.1}", q_p50 as f64 / 1000.0),
                format!("{:.1}", q_p99 as f64 / 1000.0),
                format!("{:.2}", lag_mean),
                format!("{}", lag_max),
            ]);
            results.push(
                Json::obj()
                    .set("nodes", u64::from(cfg.nodes()))
                    .set("n_orgs", u64::from(cfg.n_orgs))
                    .set("validators_per_org", u64::from(cfg.validators_per_org))
                    .set("n_watchers", u64::from(cfg.n_watchers))
                    .set("tx_rate", cfg.tx_rate)
                    .set("query_rate", cfg.query_rate)
                    .set("ingest_interval_ms", cadence)
                    .set("ledgers", report.ledgers.len() as u64)
                    .set("queries", queries)
                    .set("query_p50_ns", q_p50)
                    .set("query_p99_ns", q_p99)
                    .set("lag_mean_ledgers", lag_mean)
                    .set("lag_max_ledgers", lag_max)
                    .set("ingested_ledgers", p.registry().counter("ingest.ledgers"))
                    .set("flagship", cfg.flagship),
            );
            if cadence == 0 {
                per_close_sim = Some(sim);
            }
        }

        // -- determinism: pipeline on vs off, same seed ----------------
        let with = per_close_sim.expect("per-close run present");
        let (without, _) = run_sim(cfg.sim(None, cfg.tx_rate, 0.0, 0), cfg.target_ledgers);
        let obs = with.observer_id();
        assert_eq!(obs, without.observer_id());
        let (hw, ho) = (&with.validator(obs).herder, &without.validator(obs).herder);
        assert_eq!(
            hw.header.hash(),
            ho.header.hash(),
            "pipeline on/off twins diverged at the final header"
        );
        assert_eq!(
            hw.header.snapshot_hash, ho.header.snapshot_hash,
            "pipeline on/off twins diverged in the bucket list"
        );
        let latest = hw.archive.latest_seq().expect("closed ledgers");
        for seq in 2..=latest {
            assert_eq!(
                hw.archive.header(seq).map(|h| h.hash()),
                ho.archive.header(seq).map(|h| h.hash()),
                "pipeline on/off twins diverged at archived header {seq}"
            );
        }
        drop(with);

        // -- 10× submission burst against the strict front door --------
        let (burst_sim, burst_report) = run_sim(
            cfg.sim(
                Some(strict_admission()),
                cfg.tx_rate * 10.0,
                cfg.query_rate,
                0,
            ),
            cfg.target_ledgers,
        );
        let bm = burst_sim.horizon_metrics();
        let submitted = bm.counter("horizon.submitted");
        let shed = bm.counter("horizon.shed");
        assert!(shed > 0, "a 10× burst against a strict door must shed");
        let attempts = submitted + shed;
        let shed_frac = shed as f64 / attempts.max(1) as f64;
        let burst_interval = mean_close_interval_ms(&burst_report);
        // The acceptance property: overload is absorbed at the door and
        // the close cadence stays within a small factor of the
        // unburdened run (simulated time, so this is deterministic).
        assert!(
            burst_interval <= baseline_interval * 1.6 + 1.0,
            "ledger close stalled under burst: {burst_interval:.0} ms \
             vs baseline {baseline_interval:.0} ms"
        );

        burst_rows.push(vec![
            format!("{}", cfg.nodes()),
            format!("{:.0}", cfg.tx_rate * 10.0),
            format!("{}", burst_report.ledgers.len()),
            format!("{}", attempts),
            format!("{}", shed),
            format!("{:.0}%", shed_frac * 100.0),
            format!("{:.0}", baseline_interval),
            format!("{:.0}", burst_interval),
        ]);
        bursts.push(
            Json::obj()
                .set("nodes", u64::from(cfg.nodes()))
                .set("burst_tx_rate", cfg.tx_rate * 10.0)
                .set("ledgers", burst_report.ledgers.len() as u64)
                .set("attempts", attempts)
                .set("submitted", submitted)
                .set("shed", shed)
                .set("rejected", bm.counter("horizon.rejected"))
                .set("shed_frac", shed_frac)
                .set("baseline_close_interval_ms", baseline_interval)
                .set("burst_close_interval_ms", burst_interval)
                .set("flagship", cfg.flagship),
        );
    }

    // -- the front door alone at 1M-client fan-in ----------------------
    let clients = if quick { 250_000 } else { 1_000_000 };
    let front_door = front_door_scale(clients);

    println!("query latency vs ingestion lag (µs wall-clock; lag in ledgers):");
    print_table(
        &[
            "nodes", "q/s", "cadence", "ledgers", "queries", "p50 µs", "p99 µs", "lag μ", "lag max",
        ],
        &lat_rows,
    );
    println!("\n10× submission burst vs strict admission (close intervals simulated-ms):");
    print_table(
        &[
            "nodes",
            "tx/s",
            "ledgers",
            "attempts",
            "shed",
            "shed %",
            "base ivl",
            "burst ivl",
        ],
        &burst_rows,
    );
    println!(
        "\n(per-close cadence pins lag at 0; super-interval batching trades \
         freshness for batching and the lag column shows it; pipeline \
         on/off twins externalized byte-identical headers at every point; \
         the front door absorbed {clients} distinct clients in a bounded \
         bucket table)"
    );

    let doc = Json::obj()
        .set("schema", "stellar-bench/v2")
        .set("name", "horizon")
        .set("quick", quick)
        .set("deterministic", true)
        .set("results", Json::Arr(results))
        .set("burst", Json::Arr(bursts))
        .set("front_door", front_door);
    write_bench_json("horizon", &doc).expect("write BENCH_horizon.json");
}

//! The metrics registry: counters, gauges, and log₂-bucketed histograms.
//!
//! Every node owns one [`Registry`]; consensus, overlay, and ledger code
//! update it on the hot path, so the primitives are deliberately cheap —
//! a counter bump is one `BTreeMap` lookup plus an add, a histogram
//! observation additionally computes `ilog2` of the sample. There is no
//! interior mutability and no locking: nodes are single-threaded state
//! machines here, exactly like the SCP crate itself.
//!
//! [`Registry::snapshot`] exports everything as a [`Json`] object (the
//! machine-readable half of the §7 evaluation tables); histograms report
//! count/sum/min/max plus p50/p75/p99 estimated from bucket upper bounds.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of log₂ buckets: covers u64's full range (bucket `i` holds
/// values with `ilog2(v) == i - 1`, bucket 0 holds zero).
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket boundaries are powers of two, so recording costs one
/// `leading_zeros` and quantiles resolve to a bucket's upper bound —
/// at most 2× off, which is plenty for latency distributions whose
/// interesting differences are order-of-magnitude.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => v.ilog2() as usize + 1,
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            i if i >= 64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate (`p` in 0–100): the upper bound of
    /// the bucket holding the p-th sample, clamped to the observed max.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON summary: `{count, sum, mean, min, max, p50, p75, p99}`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("mean", self.mean())
            .set("min", self.min())
            .set("max", self.max)
            .set("p50", self.quantile(50.0))
            .set("p75", self.quantile(75.0))
            .set("p99", self.quantile(99.0))
    }
}

/// One node's metric store.
///
/// Metric names are dotted paths (`scp.envelope_in.prepare`,
/// `ledger.apply_us`); the snapshot groups them flat under `counters`,
/// `gauges`, and `histograms`. Unknown names spring into existence on
/// first touch — instrumentation sites never pre-register.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `by`.
    pub fn add(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of gauge `name` (0 if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Read access to histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges every metric of `other` into this registry (counters and
    /// histograms sum; gauges take `other`'s value — last write wins,
    /// matching a scrape of the most recent state).
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
        for (name, v) in &other.gauges {
            self.set_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Exports the full registry as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    /// sum, mean, min, max, p50, p75, p99}}}`.
    pub fn snapshot(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in &self.counters {
            counters = counters.set(name, *v);
        }
        let mut gauges = Json::obj();
        for (name, v) in &self.gauges {
            gauges = gauges.set(name, *v);
        }
        let mut histograms = Json::obj();
        for (name, h) in &self.histograms {
            histograms = histograms.set(name, h.to_json());
        }
        Json::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.inc("a");
        r.inc("a");
        r.add("b", 10);
        r.set_gauge("g", -5);
        assert_eq!(r.counter("a"), 2);
        assert_eq!(r.counter("b"), 10);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("g"), -5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Log2 buckets: quantile lands on a power-of-two upper bound, at
        // most 2x above the true value and never above the observed max.
        let p50 = h.quantile(50.0);
        assert!((50..=100).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(99.0);
        assert!((99..=100).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(100.0), 100);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(50.0), 0);
        assert_eq!(h.min(), 0);
        h.observe(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(99.0), 0);
    }

    #[test]
    fn histogram_extreme_values() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(100.0), u64::MAX);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Registry::new();
        a.inc("c");
        a.observe("h", 4);
        let mut b = Registry::new();
        b.add("c", 2);
        b.observe("h", 8);
        b.set_gauge("g", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), 7);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().max(), 8);
    }

    #[test]
    fn snapshot_shape() {
        let mut r = Registry::new();
        r.inc("scp.envelope_in.prepare");
        r.observe("ledger.apply_us", 1234);
        let snap = r.snapshot();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("scp.envelope_in.prepare"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let hist = snap
            .get("histograms")
            .and_then(|h| h.get("ledger.apply_us"))
            .expect("histogram present");
        for key in ["count", "sum", "mean", "min", "max", "p50", "p75", "p99"] {
            assert!(hist.get(key).is_some(), "missing {key}");
        }
        // Snapshot renders to parseable JSON.
        assert!(Json::parse(&snap.render()).is_ok());
    }
}

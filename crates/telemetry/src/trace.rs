//! Distributed transaction-lifecycle tracing: causally-ordered spans.
//!
//! The flight recorder ([`crate::recorder`]) answers "what did this
//! *slot* do on this *node*"; this module answers the paper's §7.3
//! question — "where did this *transaction's* latency go" — across the
//! whole network. Every submitted transaction gets a [`TraceId`] derived
//! from its content hash, so the id needs no wire format of its own:
//! every node that sees the payload derives the same id, and the
//! simulator can merge per-node span streams into one cross-node causal
//! DAG after the fact.
//!
//! A [`SpanEvent`] is a *point* in that DAG: `(trace, node, t_ms,
//! phase)`. Phases are points rather than start/end pairs because the
//! interesting durations (queue→flood→nominate→externalize→apply) span
//! *different* nodes — an aggregation pass derives latencies between
//! consecutive phase points instead of each node guessing at intervals.
//!
//! Determinism rules match the rest of the crate: timestamps are the
//! embedder's (simulated) clock, never a wall clock, so two same-seed
//! runs dump byte-identical span streams. The [`TraceStore`] is bounded
//! (oldest spans evicted, eviction counted) and has a deterministic
//! sampling knob: `trace % sample_every == 0` keeps a trace on *every*
//! node or none, so sampled traces are still causally complete.

use crate::json::Json;
use std::collections::VecDeque;

/// A transaction's trace identity: the big-endian u64 prefix of its
/// content hash. Content-derived, so every node computes the same id
/// without any context header on the wire.
pub type TraceId = u64;

/// A lifecycle milestone a transaction passed on some node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// A client handed the transaction to this node (the trace root).
    Submit,
    /// The pending queue accepted it.
    QueueAdmit,
    /// The pending queue rejected it.
    QueueReject {
        /// Stringified [`QueueError`](`std::fmt::Debug`) class.
        reason: &'static str,
    },
    /// The full payload arrived by flood (one hop of propagation).
    FloodRecv {
        /// The peer that delivered it.
        from: u32,
    },
    /// Pull mode: a peer advertised the payload's hash to this node.
    AdvertSeen {
        /// The advertising peer.
        from: u32,
    },
    /// Pull mode: this node demanded the payload from a peer.
    DemandSent {
        /// The peer demanded from.
        to: u32,
        /// Demand attempt number (1 = first ask).
        attempt: u32,
    },
    /// Pull mode: a demand went unanswered and will be retried.
    DemandTimeout {
        /// The attempt that timed out.
        attempt: u32,
    },
    /// The transaction was included in this node's nominated tx set.
    Nominated {
        /// The consensus slot it was proposed for.
        slot: u64,
    },
    /// A slot carrying this transaction externalized on this node.
    Externalized {
        /// The decided slot.
        slot: u64,
    },
    /// The ledger close applied the transaction.
    Applied {
        /// The ledger sequence it landed in.
        slot: u64,
    },
    /// The closed ledger was published to the history archive.
    Archived {
        /// The archived ledger sequence.
        slot: u64,
    },
    /// The close was made durable (store flush + fsync attempt).
    Flushed {
        /// The flushed ledger sequence.
        slot: u64,
    },
    /// The transaction became queryable through horizon on this node.
    HorizonVisible {
        /// The ledger sequence a query will find it in.
        slot: u64,
    },
}

impl SpanPhase {
    /// Short machine tag for the JSONL `phase` field.
    pub fn tag(&self) -> &'static str {
        match self {
            SpanPhase::Submit => "submit",
            SpanPhase::QueueAdmit => "queue_admit",
            SpanPhase::QueueReject { .. } => "queue_reject",
            SpanPhase::FloodRecv { .. } => "flood_recv",
            SpanPhase::AdvertSeen { .. } => "advert_seen",
            SpanPhase::DemandSent { .. } => "demand_sent",
            SpanPhase::DemandTimeout { .. } => "demand_timeout",
            SpanPhase::Nominated { .. } => "nominated",
            SpanPhase::Externalized { .. } => "externalized",
            SpanPhase::Applied { .. } => "applied",
            SpanPhase::Archived { .. } => "archived",
            SpanPhase::Flushed { .. } => "flushed",
            SpanPhase::HorizonVisible { .. } => "horizon_visible",
        }
    }

    /// Pipeline position, for ordering simultaneous spans (several close
    /// milestones share one simulated-ms timestamp; causal order within
    /// that millisecond is the pipeline order, matching the actual code
    /// path apply → archive publish → store flush → horizon-visible).
    pub fn order(&self) -> u32 {
        match self {
            SpanPhase::Submit => 0,
            SpanPhase::QueueAdmit | SpanPhase::QueueReject { .. } => 1,
            SpanPhase::AdvertSeen { .. } => 2,
            SpanPhase::DemandSent { .. } => 3,
            SpanPhase::DemandTimeout { .. } => 4,
            SpanPhase::FloodRecv { .. } => 5,
            SpanPhase::Nominated { .. } => 6,
            SpanPhase::Externalized { .. } => 7,
            SpanPhase::Applied { .. } => 8,
            SpanPhase::Archived { .. } => 9,
            SpanPhase::Flushed { .. } => 10,
            SpanPhase::HorizonVisible { .. } => 11,
        }
    }

    /// The consensus slot this phase is tied to, when it has one.
    pub fn slot(&self) -> Option<u64> {
        match self {
            SpanPhase::Nominated { slot }
            | SpanPhase::Externalized { slot }
            | SpanPhase::Applied { slot }
            | SpanPhase::Archived { slot }
            | SpanPhase::Flushed { slot }
            | SpanPhase::HorizonVisible { slot } => Some(*slot),
            _ => None,
        }
    }

    fn detail_json(&self, obj: Json) -> Json {
        match self {
            SpanPhase::QueueReject { reason } => obj.set("reason", *reason),
            SpanPhase::FloodRecv { from } | SpanPhase::AdvertSeen { from } => {
                obj.set("from", u64::from(*from))
            }
            SpanPhase::DemandSent { to, attempt } => obj
                .set("to", u64::from(*to))
                .set("attempt", u64::from(*attempt)),
            SpanPhase::DemandTimeout { attempt } => obj.set("attempt", u64::from(*attempt)),
            _ => match self.slot() {
                Some(slot) => obj.set("slot", slot),
                None => obj,
            },
        }
    }
}

/// One causally-ordered point of a transaction's lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The transaction's trace id.
    pub trace: TraceId,
    /// The node the event happened on.
    pub node: u32,
    /// Timestamp (embedder clock; simulated ms in the simulator).
    pub t_ms: u64,
    /// What happened.
    pub phase: SpanPhase,
}

impl SpanEvent {
    /// One JSONL line:
    /// `{"trace":..,"node":..,"t_ms":..,"phase":..,...}`.
    pub fn to_json(&self) -> Json {
        let obj = Json::obj()
            .set("trace", self.trace)
            .set("node", u64::from(self.node))
            .set("t_ms", self.t_ms)
            .set("phase", self.phase.tag());
        self.phase.detail_json(obj)
    }
}

/// A node's bounded span buffer with deterministic sampling.
///
/// `sample_every == 0` disables tracing entirely; `1` traces every
/// transaction; `n` keeps traces with `trace % n == 0`. The keep rule
/// depends only on the content-derived id, so every node samples the
/// same traces and a kept trace is complete across the network.
#[derive(Clone, Debug)]
pub struct TraceStore {
    node: u32,
    sample_every: u64,
    cap: usize,
    spans: VecDeque<SpanEvent>,
    dropped: u64,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(0)
    }
}

impl TraceStore {
    /// Default span-buffer capacity per node.
    pub const DEFAULT_CAP: usize = 1 << 16;

    /// A store for node `node`, tracing everything, default capacity.
    pub fn new(node: u32) -> TraceStore {
        TraceStore {
            node,
            sample_every: 1,
            cap: Self::DEFAULT_CAP,
            spans: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Re-tags the owning node (recovery rebuilds telemetry wholesale).
    pub fn set_node(&mut self, node: u32) {
        self.node = node;
    }

    /// Sets the sampling knob and buffer capacity.
    pub fn configure(&mut self, sample_every: u64, cap: usize) {
        self.sample_every = sample_every;
        self.cap = cap.max(1);
    }

    /// True when any tracing is enabled.
    pub fn enabled(&self) -> bool {
        self.sample_every != 0
    }

    /// The deterministic keep rule — identical on every node.
    pub fn wants(&self, trace: TraceId) -> bool {
        self.sample_every != 0 && trace.is_multiple_of(self.sample_every)
    }

    /// Records a span point, if the trace is sampled. Oldest spans are
    /// evicted (and counted) when the buffer is full.
    pub fn record(&mut self, trace: TraceId, t_ms: u64, phase: SpanPhase) {
        if !self.wants(trace) {
            return;
        }
        if self.spans.len() >= self.cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(SpanEvent {
            trace,
            node: self.node,
            t_ms,
            phase,
        });
    }

    /// All retained spans, in record order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter()
    }

    /// Retained spans of one trace, in record order.
    pub fn for_trace(&self, trace: TraceId) -> Vec<&SpanEvent> {
        self.spans.iter().filter(|s| s.trace == trace).collect()
    }

    /// Spans evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained span count.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Every retained span as JSON Lines (one object per line).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&s.to_json().render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_rule_is_deterministic_and_shared() {
        let mut a = TraceStore::new(0);
        let mut b = TraceStore::new(1);
        a.configure(4, 100);
        b.configure(4, 100);
        for id in 0..16u64 {
            assert_eq!(a.wants(id), b.wants(id), "id {id}");
            assert_eq!(a.wants(id), id % 4 == 0);
        }
        a.record(4, 10, SpanPhase::Submit);
        a.record(5, 10, SpanPhase::Submit); // not sampled
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn zero_disables_tracing() {
        let mut s = TraceStore::new(0);
        s.configure(0, 100);
        assert!(!s.enabled());
        s.record(0, 1, SpanPhase::Submit);
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let mut s = TraceStore::new(7);
        s.configure(1, 3);
        for t in 0..5u64 {
            s.record(t, t, SpanPhase::Submit);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.spans().next().unwrap().trace, 2);
        assert!(s.spans().all(|e| e.node == 7));
    }

    #[test]
    fn jsonl_lines_parse_and_carry_phase_details() {
        let mut s = TraceStore::new(3);
        s.record(0xAB, 5, SpanPhase::FloodRecv { from: 9 });
        s.record(0xAB, 6, SpanPhase::Applied { slot: 4 });
        let dump = s.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(
            first.get("phase").and_then(Json::as_str),
            Some("flood_recv")
        );
        assert_eq!(first.get("from").and_then(Json::as_f64), Some(9.0));
        let second = Json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("slot").and_then(Json::as_f64), Some(4.0));
        assert_eq!(second.get("node").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn phase_order_follows_the_pipeline() {
        let seq = [
            SpanPhase::Submit,
            SpanPhase::QueueAdmit,
            SpanPhase::AdvertSeen { from: 0 },
            SpanPhase::DemandSent { to: 0, attempt: 1 },
            SpanPhase::DemandTimeout { attempt: 1 },
            SpanPhase::FloodRecv { from: 0 },
            SpanPhase::Nominated { slot: 2 },
            SpanPhase::Externalized { slot: 2 },
            SpanPhase::Applied { slot: 2 },
            SpanPhase::Archived { slot: 2 },
            SpanPhase::Flushed { slot: 2 },
            SpanPhase::HorizonVisible { slot: 2 },
        ];
        for w in seq.windows(2) {
            assert!(w[0].order() < w[1].order(), "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn for_trace_filters() {
        let mut s = TraceStore::new(0);
        s.record(1, 1, SpanPhase::Submit);
        s.record(2, 2, SpanPhase::Submit);
        s.record(1, 3, SpanPhase::QueueAdmit);
        assert_eq!(s.for_trace(1).len(), 2);
        assert_eq!(s.for_trace(2).len(), 1);
        assert!(s.for_trace(3).is_empty());
    }
}

//! The slot-scoped flight recorder: a bounded ring of structured trace
//! events covering the last N consensus slots.
//!
//! Metrics say *that* a slot was slow; the flight recorder says *why*. It
//! retains the full consensus timeline — phase transitions, quorum
//! threshold crossings, timer arms/fires, envelope send/receive with
//! causal slot+node tags — for the most recent slots only, so a week-long
//! run costs the same memory as a short one. Chaos runs dump it when an
//! invariant breaks; the timeline renderer turns a stalled slot into a
//! story a human can read top to bottom.

use crate::json::Json;
use std::collections::VecDeque;

/// What happened (the structured payload of a [`TraceEvent`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A consensus phase began or changed (`"nomination"`, `"ballot"`,
    /// `"externalize"`, ...).
    Phase {
        /// Name of the phase entered.
        phase: &'static str,
    },
    /// A federated-voting threshold was crossed (accepted/confirmed
    /// prepare, accepted commit) at a ballot counter.
    QuorumThreshold {
        /// Which milestone (`"accept-prepare"`, `"confirm-prepare"`,
        /// `"accept-commit"`).
        milestone: &'static str,
        /// The ballot counter it crossed at.
        counter: u32,
    },
    /// A new ballot was started.
    BallotBump {
        /// The new ballot counter.
        counter: u32,
    },
    /// A nomination round began (round 1 = nomination start).
    NominationRound {
        /// The round number.
        round: u32,
    },
    /// A timer was armed (or re-armed).
    TimerArmed {
        /// `"nomination"` or `"ballot"`.
        timer: &'static str,
        /// Delay until expiry (ms).
        delay_ms: u64,
    },
    /// A timer was cancelled.
    TimerCanceled {
        /// `"nomination"` or `"ballot"`.
        timer: &'static str,
    },
    /// A timer fired.
    TimerFired {
        /// `"nomination"` or `"ballot"`.
        timer: &'static str,
    },
    /// This node broadcast an SCP statement.
    EnvelopeSent {
        /// Statement class (`"nominate"`, `"prepare"`, `"confirm"`,
        /// `"externalize"`).
        statement: &'static str,
    },
    /// This node processed a peer's SCP statement.
    EnvelopeReceived {
        /// Statement class.
        statement: &'static str,
        /// Originating node.
        from: u32,
    },
    /// The slot decided a value.
    Externalized,
    /// The ledger for this slot was applied.
    LedgerClosed {
        /// Transactions in the applied set.
        tx_count: u32,
        /// Wall-clock apply time (µs).
        apply_us: u64,
    },
}

impl TraceKind {
    /// Short machine tag for the JSONL `event` field.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceKind::Phase { .. } => "phase",
            TraceKind::QuorumThreshold { .. } => "quorum_threshold",
            TraceKind::BallotBump { .. } => "ballot_bump",
            TraceKind::NominationRound { .. } => "nomination_round",
            TraceKind::TimerArmed { .. } => "timer_armed",
            TraceKind::TimerCanceled { .. } => "timer_canceled",
            TraceKind::TimerFired { .. } => "timer_fired",
            TraceKind::EnvelopeSent { .. } => "envelope_sent",
            TraceKind::EnvelopeReceived { .. } => "envelope_received",
            TraceKind::Externalized => "externalized",
            TraceKind::LedgerClosed { .. } => "ledger_closed",
        }
    }

    fn describe(&self) -> String {
        match self {
            TraceKind::Phase { phase } => format!("phase → {phase}"),
            TraceKind::QuorumThreshold { milestone, counter } => {
                format!("quorum threshold: {milestone} at counter {counter}")
            }
            TraceKind::BallotBump { counter } => format!("ballot bumped to counter {counter}"),
            TraceKind::NominationRound { round } => format!("nomination round {round}"),
            TraceKind::TimerArmed { timer, delay_ms } => {
                format!("{timer} timer armed (+{delay_ms}ms)")
            }
            TraceKind::TimerCanceled { timer } => format!("{timer} timer canceled"),
            TraceKind::TimerFired { timer } => format!("{timer} timer FIRED"),
            TraceKind::EnvelopeSent { statement } => format!("sent {statement}"),
            TraceKind::EnvelopeReceived { statement, from } => {
                format!("recv {statement} from node {from}")
            }
            TraceKind::Externalized => "EXTERNALIZED".to_string(),
            // apply_us is wall clock and varies run to run; timelines must
            // stay byte-identical for a fixed seed, so it only appears in
            // the structured JSONL dump.
            TraceKind::LedgerClosed { tx_count, .. } => {
                format!("ledger closed: {tx_count} txs applied")
            }
        }
    }

    fn detail_json(&self, obj: Json) -> Json {
        match self {
            TraceKind::Phase { phase } => obj.set("phase", *phase),
            TraceKind::QuorumThreshold { milestone, counter } => obj
                .set("milestone", *milestone)
                .set("counter", u64::from(*counter)),
            TraceKind::BallotBump { counter } => obj.set("counter", u64::from(*counter)),
            TraceKind::NominationRound { round } => obj.set("round", u64::from(*round)),
            TraceKind::TimerArmed { timer, delay_ms } => {
                obj.set("timer", *timer).set("delay_ms", *delay_ms)
            }
            TraceKind::TimerCanceled { timer } => obj.set("timer", *timer),
            TraceKind::TimerFired { timer } => obj.set("timer", *timer),
            TraceKind::EnvelopeSent { statement } => obj.set("statement", *statement),
            TraceKind::EnvelopeReceived { statement, from } => obj
                .set("statement", *statement)
                .set("from", u64::from(*from)),
            TraceKind::Externalized => obj,
            TraceKind::LedgerClosed { tx_count, apply_us } => obj
                .set("tx_count", u64::from(*tx_count))
                .set("apply_us", *apply_us),
        }
    }
}

/// One entry of the consensus timeline: when, who, which slot, what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp (ms; simulated time in the simulator).
    pub t_ms: u64,
    /// The node this event happened on.
    pub node: u32,
    /// The consensus slot it belongs to.
    pub slot: u64,
    /// The structured payload.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// One JSONL line: `{"t_ms":..,"node":..,"slot":..,"event":..,...}`.
    pub fn to_json(&self) -> Json {
        let obj = Json::obj()
            .set("t_ms", self.t_ms)
            .set("node", u64::from(self.node))
            .set("slot", self.slot)
            .set("event", self.kind.tag());
        self.kind.detail_json(obj)
    }
}

/// Bounded, slot-scoped event ring.
///
/// Retention is two-dimensional: events for slots older than
/// `keep_slots` behind the newest recorded slot are dropped, and the
/// total event count is hard-capped (oldest evicted first) so a
/// pathological slot cannot grow memory without bound either.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    events: VecDeque<TraceEvent>,
    keep_slots: u64,
    max_events: usize,
    max_slot: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(8, 16_384)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `keep_slots` slots, at most
    /// `max_events` events total.
    pub fn new(keep_slots: u64, max_events: usize) -> FlightRecorder {
        FlightRecorder {
            events: VecDeque::new(),
            keep_slots: keep_slots.max(1),
            max_events: max_events.max(1),
            max_slot: 0,
        }
    }

    /// Records one event.
    pub fn record(&mut self, t_ms: u64, node: u32, slot: u64, kind: TraceKind) {
        if slot > self.max_slot {
            self.max_slot = slot;
            let cutoff = self.max_slot.saturating_sub(self.keep_slots - 1);
            self.events.retain(|e| e.slot >= cutoff);
        }
        if slot + self.keep_slots <= self.max_slot {
            return; // older than the retention window: drop on arrival
        }
        if self.events.len() >= self.max_events {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            t_ms,
            node,
            slot,
            kind,
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events for one slot, oldest first.
    pub fn slot_events(&self, slot: u64) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.slot == slot).collect()
    }

    /// Newest slot that has recorded events.
    pub fn latest_slot(&self) -> u64 {
        self.max_slot
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything aged out).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Human-readable timeline of one slot: one line per event with a
    /// relative-time column, e.g.
    ///
    /// ```text
    /// slot 7 timeline (12 events, 1840ms span)
    ///     +0ms  [node 0] nomination round 1
    ///     +0ms  [node 0] sent nominate
    ///  +1002ms  [node 0] nomination timer FIRED
    /// ```
    pub fn timeline(&self, slot: u64) -> String {
        let events = self.slot_events(slot);
        let Some(first) = events.first() else {
            return format!("slot {slot}: no recorded events\n");
        };
        let t0 = first.t_ms;
        let span = events.last().map_or(0, |e| e.t_ms - t0);
        let mut out = format!(
            "slot {slot} timeline ({} events, {span}ms span)\n",
            events.len()
        );
        for e in events {
            out.push_str(&format!(
                "{:>9}  [node {}] {}\n",
                format!("+{}ms", e.t_ms - t0),
                e.node,
                e.kind.describe()
            ));
        }
        out
    }

    /// Every retained event as JSON Lines (one object per line).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().render());
            out.push('\n');
        }
        out
    }

    /// One slot's events as JSON Lines.
    pub fn dump_jsonl_slot(&self, slot: u64) -> String {
        let mut out = String::new();
        for e in self.slot_events(slot) {
            out.push_str(&e.to_json().render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn rec(fr: &mut FlightRecorder, t: u64, slot: u64, kind: TraceKind) {
        fr.record(t, 0, slot, kind);
    }

    #[test]
    fn slot_window_evicts_old_slots() {
        let mut fr = FlightRecorder::new(2, 1000);
        rec(&mut fr, 10, 1, TraceKind::Externalized);
        rec(&mut fr, 20, 2, TraceKind::Externalized);
        assert_eq!(fr.len(), 2);
        rec(&mut fr, 30, 3, TraceKind::Externalized);
        // Slot 1 aged out; slots 2 and 3 retained.
        assert!(fr.slot_events(1).is_empty());
        assert_eq!(fr.slot_events(2).len(), 1);
        assert_eq!(fr.slot_events(3).len(), 1);
        // Late arrival for an evicted slot is dropped, not resurrected.
        rec(&mut fr, 40, 1, TraceKind::Externalized);
        assert!(fr.slot_events(1).is_empty());
    }

    #[test]
    fn event_cap_evicts_oldest() {
        let mut fr = FlightRecorder::new(10, 3);
        for t in 0..5u64 {
            rec(&mut fr, t, 1, TraceKind::BallotBump { counter: t as u32 });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.events().next().unwrap().t_ms, 2);
    }

    #[test]
    fn timeline_renders_relative_times() {
        let mut fr = FlightRecorder::default();
        rec(&mut fr, 1000, 7, TraceKind::NominationRound { round: 1 });
        fr.record(
            1080,
            2,
            7,
            TraceKind::EnvelopeReceived {
                statement: "prepare",
                from: 2,
            },
        );
        rec(&mut fr, 2010, 7, TraceKind::Externalized);
        let text = fr.timeline(7);
        assert!(text.contains("slot 7 timeline (3 events, 1010ms span)"));
        assert!(text.contains("+0ms"));
        assert!(text.contains("+80ms"));
        assert!(text.contains("recv prepare from node 2"));
        assert!(text.contains("EXTERNALIZED"));
        assert!(fr.timeline(99).contains("no recorded events"));
    }

    #[test]
    fn ring_wrap_evicts_strictly_oldest_first_across_slots() {
        // Interleave two live slots past the event cap: eviction must
        // follow arrival order, not slot order, and the survivors must
        // keep their relative order.
        let mut fr = FlightRecorder::new(10, 4);
        for t in 0..8u64 {
            let slot = 1 + (t % 2); // events alternate slots 1 and 2
            rec(
                &mut fr,
                t,
                slot,
                TraceKind::BallotBump { counter: t as u32 },
            );
        }
        assert_eq!(fr.len(), 4);
        let times: Vec<u64> = fr.events().map(|e| e.t_ms).collect();
        assert_eq!(times, vec![4, 5, 6, 7], "oldest four evicted, in order");
        // Both slots still represented: the cap is global, not per slot.
        assert!(!fr.slot_events(1).is_empty());
        assert!(!fr.slot_events(2).is_empty());
    }

    #[test]
    fn jsonl_dump_after_wrap_matches_retained_events() {
        let mut fr = FlightRecorder::new(10, 3);
        for t in 0..6u64 {
            rec(&mut fr, t, 1, TraceKind::BallotBump { counter: t as u32 });
        }
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), fr.len());
        // Every line parses, and the first line is the oldest survivor.
        for line in &lines {
            Json::parse(line).expect("wrapped dump line parses");
        }
        assert_eq!(
            Json::parse(lines[0])
                .unwrap()
                .get("t_ms")
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            Json::parse(lines[2])
                .unwrap()
                .get("counter")
                .and_then(Json::as_f64),
            Some(5.0)
        );
    }

    #[test]
    fn render_is_stable_under_slot_reuse() {
        // A slot number that ages out and "returns" (late arrival or a
        // wrapped counter) must neither resurrect old events nor change
        // an existing render.
        let mut fr = FlightRecorder::new(2, 100);
        rec(&mut fr, 10, 5, TraceKind::NominationRound { round: 1 });
        rec(&mut fr, 20, 5, TraceKind::Externalized);
        let first_render = fr.timeline(5);
        assert!(first_render.contains("slot 5 timeline (2 events, 10ms span)"));
        // Rendering is a pure read: byte-identical on repeat.
        assert_eq!(fr.timeline(5), first_render);
        // Advance far enough that slot 5 ages out of the keep window.
        rec(&mut fr, 30, 6, TraceKind::Externalized);
        rec(&mut fr, 40, 7, TraceKind::Externalized);
        assert!(fr.timeline(5).contains("no recorded events"));
        // Late arrivals for the evicted slot stay dropped; the render
        // reflects only what the ring actually retains.
        rec(&mut fr, 50, 5, TraceKind::BallotBump { counter: 9 });
        assert!(fr.timeline(5).contains("no recorded events"));
        assert_eq!(fr.dump_jsonl_slot(5), "");
        // The live slots are unaffected by the reuse attempt.
        assert_eq!(fr.slot_events(6).len(), 1);
        assert_eq!(fr.slot_events(7).len(), 1);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_tags() {
        let mut fr = FlightRecorder::default();
        rec(
            &mut fr,
            5,
            3,
            TraceKind::TimerArmed {
                timer: "ballot",
                delay_ms: 2000,
            },
        );
        rec(
            &mut fr,
            6,
            3,
            TraceKind::LedgerClosed {
                tx_count: 12,
                apply_us: 480,
            },
        );
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(
            first.get("event").and_then(Json::as_str),
            Some("timer_armed")
        );
        assert_eq!(first.get("delay_ms").and_then(Json::as_f64), Some(2000.0));
        let second = Json::parse(lines[1]).expect("valid JSON line");
        assert_eq!(second.get("tx_count").and_then(Json::as_f64), Some(12.0));
        assert_eq!(fr.dump_jsonl_slot(3).lines().count(), 2);
        assert_eq!(fr.dump_jsonl_slot(4).lines().count(), 0);
    }
}

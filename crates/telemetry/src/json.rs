//! A minimal JSON value: render and parse, no dependencies.
//!
//! The workspace has no registry access (see the dependency policy in
//! `DESIGN.md`), so the telemetry export format is hand-rolled rather
//! than serde-derived. The parser exists so tests and the CI smoke can
//! validate that every `BENCH_*.json` a binary writes is well-formed and
//! carries the documented schema — it is not a general-purpose parser
//! (no `\uXXXX` escapes beyond the BMP pass-through, no number edge-case
//! pedantry), but it round-trips everything [`Json::render`] produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
///
/// Objects use a [`BTreeMap`] so rendering is deterministic — two runs
/// from the same seed produce byte-identical exports, which keeps bench
/// baselines diffable.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Json {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (rendered without trailing zeros when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key` into an object, builder-style. Panics on non-objects
    /// (a programming error, not a data error).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation (the `BENCH_*.json` on-disk
    /// format: diff-friendly and human-skimmable).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    pad(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses JSON text. Returns a descriptive error with a byte offset.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-lossy encoding.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let doc = Json::obj()
            .set("name", "baseline")
            .set("ok", true)
            .set("count", 42u64)
            .set("ratio", 0.25)
            .set("none", Json::Null)
            .set(
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\n".into())]),
            );
        for text in [doc.render(), doc.render_pretty()] {
            let back = Json::parse(&text).expect("parse");
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn integral_numbers_render_without_decimal_point() {
        assert_eq!(Json::Num(5.0).render(), "5");
        assert_eq!(Json::Num(5.5).render(), "5.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn deterministic_key_order() {
        let a = Json::obj().set("b", 1u64).set("a", 2u64);
        assert_eq!(a.render(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{}extra").is_err());
    }

    #[test]
    fn unicode_survives() {
        let doc = Json::Str("héllo ☃".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(r#""☃""#).unwrap(), Json::Str("\u{2603}".into()));
    }

    #[test]
    fn accessors() {
        let doc = Json::obj().set("n", 3u64).set("s", "x");
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}

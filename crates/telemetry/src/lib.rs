//! Per-node observability for the Stellar reproduction.
//!
//! The paper's whole evaluation (§7.2–§7.3) is an observability
//! exercise — per-slot latency decomposition, timeout percentiles,
//! message and traffic accounting. This crate is the measurement
//! substrate the rest of the workspace reports through:
//!
//! * [`registry`] — a zero-dependency metrics registry: counters,
//!   gauges, and log₂-bucketed histograms with p50/p75/p99/max, updated
//!   on the hot path by scp/herder/overlay/ledger instrumentation;
//! * [`recorder`] — the slot-scoped **flight recorder**: a bounded ring
//!   of structured [`TraceEvent`]s capturing the full consensus timeline
//!   of the last N slots, with a human-readable per-slot renderer and a
//!   JSONL dump (what chaos runs attach to invariant violations);
//! * [`trace`] — distributed **transaction tracing**: content-derived
//!   trace ids, causally-ordered lifecycle spans (submit → queue →
//!   flood hops → nominate → externalize → apply → flush → archive →
//!   horizon-visible), bounded per-node span buffers with a
//!   deterministic sampling knob;
//! * [`json`] — a hand-rolled JSON value (render + parse) backing
//!   [`Registry::snapshot`] and the `BENCH_*.json` machine-readable
//!   bench output (the workspace has no registry access, so no serde).
//!
//! The crate depends on nothing — not even the other workspace crates.
//! Nodes and slots are plain `u32`/`u64` here; embedders translate their
//! own id types at the instrumentation site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use json::Json;
pub use recorder::{FlightRecorder, TraceEvent, TraceKind};
pub use registry::{Histogram, Registry};
pub use trace::{SpanEvent, SpanPhase, TraceId, TraceStore};

use std::collections::BTreeMap;

/// The observability bundle one node owns: its metrics registry plus its
/// flight recorder, with the little bit of cross-event bookkeeping
/// (nomination round durations) that needs state between hook calls.
#[derive(Clone, Debug, Default)]
pub struct NodeTelemetry {
    /// This node's id (tags flight-recorder events).
    pub node: u32,
    /// The metrics registry.
    pub registry: Registry,
    /// The flight recorder.
    pub recorder: FlightRecorder,
    /// The transaction-lifecycle span buffer (distributed tracing).
    pub spans: TraceStore,
    /// Per-slot start time of the nomination round in progress.
    round_started_ms: BTreeMap<u64, u64>,
}

impl NodeTelemetry {
    /// Telemetry for node `node`.
    pub fn new(node: u32) -> NodeTelemetry {
        let mut t = NodeTelemetry {
            node,
            ..NodeTelemetry::default()
        };
        t.spans.set_node(node);
        t
    }

    /// Records a flight-recorder event stamped with this node's id.
    pub fn trace(&mut self, t_ms: u64, slot: u64, kind: TraceKind) {
        self.recorder.record(t_ms, self.node, slot, kind);
    }

    /// Records a transaction-lifecycle span point (subject to the span
    /// store's sampling rule).
    pub fn span(&mut self, trace: TraceId, t_ms: u64, phase: SpanPhase) {
        self.spans.record(trace, t_ms, phase);
    }

    /// Notes a nomination round starting: traces it, counts it, and — for
    /// rounds past the first — observes the previous round's duration in
    /// the `scp.nomination_round_ms` histogram (the Fig. 8 denominator).
    pub fn nomination_round(&mut self, t_ms: u64, slot: u64, round: u32) {
        if let Some(prev) = self.round_started_ms.insert(slot, t_ms) {
            self.registry
                .observe("scp.nomination_round_ms", t_ms.saturating_sub(prev));
        }
        self.registry.inc("scp.nomination_rounds");
        self.trace(t_ms, slot, TraceKind::NominationRound { round });
        // Same retention discipline as the recorder: bookkeeping for
        // slots far behind the newest one is dead weight.
        if self.round_started_ms.len() > 32 {
            let cutoff = slot.saturating_sub(32);
            self.round_started_ms.retain(|s, _| *s >= cutoff);
        }
    }

    /// Closes out nomination-round bookkeeping for an externalized slot,
    /// folding the final round's duration into the histogram.
    pub fn slot_externalized(&mut self, t_ms: u64, slot: u64) {
        if let Some(start) = self.round_started_ms.remove(&slot) {
            self.registry
                .observe("scp.nomination_round_ms", t_ms.saturating_sub(start));
        }
        self.registry.inc("scp.externalized");
        self.trace(t_ms, slot, TraceKind::Externalized);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nomination_round_durations_accumulate() {
        let mut t = NodeTelemetry::new(3);
        t.nomination_round(1000, 2, 1);
        t.nomination_round(2000, 2, 2); // round 1 lasted 1000ms
        t.slot_externalized(2400, 2); // round 2 lasted 400ms
        let h = t.registry.histogram("scp.nomination_round_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 400);
        assert_eq!(t.registry.counter("scp.nomination_rounds"), 2);
        assert_eq!(t.registry.counter("scp.externalized"), 1);
        // Events carry the node tag.
        assert!(t.recorder.events().all(|e| e.node == 3));
    }

    #[test]
    fn span_helper_stamps_node_id() {
        let mut t = NodeTelemetry::new(5);
        t.span(42, 100, SpanPhase::Submit);
        t.span(42, 110, SpanPhase::QueueAdmit);
        assert_eq!(t.spans.len(), 2);
        assert!(t.spans.spans().all(|s| s.node == 5));
    }

    #[test]
    fn round_bookkeeping_stays_bounded() {
        let mut t = NodeTelemetry::new(0);
        for slot in 0..100u64 {
            t.nomination_round(slot * 10, slot, 1);
        }
        assert!(t.round_started_ms.len() <= 33);
    }
}

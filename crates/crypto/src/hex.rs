//! Minimal hex encoding/decoding for digests, keys, and test vectors.

/// Encodes bytes as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper- or lowercase) into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = from_digit(pair[0])?;
        let lo = from_digit(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn from_digit(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)), Some(data));
    }

    #[test]
    fn accepts_uppercase() {
        assert_eq!(decode("DEADbeef"), Some(vec![0xde, 0xad, 0xbe, 0xef]));
    }

    #[test]
    fn rejects_odd_length_and_bad_chars() {
        assert_eq!(decode("abc"), None);
        assert_eq!(decode("zz"), None);
        assert_eq!(decode("0g"), None);
    }

    #[test]
    fn empty_is_ok() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode(""), Some(vec![]));
    }
}

//! Deterministic binary encoding, in the spirit of XDR.
//!
//! Production `stellar-core` defines all on-wire and hashed structures in
//! XDR so that every node serializes — and therefore hashes — a structure
//! identically. This module provides the same guarantee with a small
//! hand-rolled scheme:
//!
//! * fixed-width integers are big-endian;
//! * variable-length byte strings and sequences carry a `u64` length prefix;
//! * `Option<T>` is a one-byte tag (0/1) followed by the payload;
//! * structs encode fields in declaration order; enums encode a `u32`
//!   discriminant then the variant payload.
//!
//! Everything that is ever hashed or signed implements [`Encode`]; types
//! that travel between simulated nodes also implement [`Decode`] so the
//! overlay can exercise a real serialize → flood → deserialize path.

use std::collections::{BTreeMap, BTreeSet};

/// Serializes `self` into a deterministic byte stream.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Deserializes a value previously produced by [`Encode`].
pub trait Decode: Sized {
    /// Reads a value from the front of `input`, advancing it.
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must consume the whole buffer.
    fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(DecodeError::TrailingBytes(input.len()))
        }
    }
}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated,
    /// An enum discriminant or tag byte had no corresponding variant.
    BadTag(u32),
    /// A declared length exceeded the remaining input (corrupt or hostile).
    BadLength(u64),
    /// Bytes remained after a full-buffer decode.
    TrailingBytes(usize),
    /// A value failed a domain check (e.g. non-UTF-8 string).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t}"),
            DecodeError::BadLength(l) => write!(f, "declared length {l} exceeds input"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reads exactly `n` bytes from the front of `input`.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
        }
        impl Decode for $t {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_be_bytes(arr))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t as u32)),
        }
    }
}

impl Encode for crate::Hash256 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for crate::Hash256 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = take(input, 32)?;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(bytes);
        Ok(crate::Hash256(arr))
    }
}

impl Encode for [u8] {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self);
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode(out);
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = Vec::<u8>::decode(input)?;
        String::from_utf8(bytes).map_err(|_| DecodeError::Invalid("non-utf8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(DecodeError::BadTag(t as u32)),
        }
    }
}

/// Generic sequence encoding: length prefix then each element.
fn encode_seq<'a, T: Encode + 'a>(iter: impl ExactSizeIterator<Item = &'a T>, out: &mut Vec<u8>) {
    (iter.len() as u64).encode(out);
    for item in iter {
        item.encode(out);
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(self.iter(), out);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u64::decode(input)?;
        // Each element takes at least one byte; reject absurd lengths early.
        if len > input.len() as u64 {
            return Err(DecodeError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(self.iter(), out);
    }
}

impl<T: Decode + Ord> Decode for BTreeSet<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = Vec::<T>::decode(input)?;
        Ok(v.into_iter().collect())
    }
}

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u64::decode(input)?;
        if len > input.len() as u64 {
            return Err(DecodeError::BadLength(len));
        }
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<T: Encode> Encode for &T {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self).encode(out);
    }
}

/// Implements [`Encode`]/[`Decode`] for a struct, field by field in order.
///
/// ```
/// use stellar_crypto::impl_codec_struct;
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_codec_struct!(Point { x, y });
///
/// use stellar_crypto::codec::{Encode, Decode};
/// let p = Point { x: 1, y: 2 };
/// assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_codec_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::codec::Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $( self.$field.encode(out); )+
            }
        }
        impl $crate::codec::Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::codec::DecodeError> {
                Ok(Self {
                    $( $field: $crate::codec::Decode::decode(input)?, )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn ints_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(12345u32);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(i128::MIN);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u64));
        roundtrip(String::from("hello"));
        roundtrip(BTreeSet::from([3u32, 1, 2]));
        roundtrip(BTreeMap::from([
            (1u32, "a".to_string()),
            (2, "b".to_string()),
        ]));
        roundtrip((7u8, vec![1u16]));
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = 77u64.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(u64::from_bytes(&bytes[..cut]), Err(DecodeError::Truncated));
        }
    }

    #[test]
    fn hostile_length_is_rejected() {
        // Vec<u8> claiming u64::MAX elements must not allocate.
        let mut bytes = u64::MAX.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Vec::<u8>::from_bytes(&bytes),
            Err(DecodeError::BadLength(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0xff);
        assert_eq!(u32::from_bytes(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_and_option_tags() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(DecodeError::BadTag(2))
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9, 0]),
            Err(DecodeError::BadTag(9))
        ));
    }

    #[test]
    fn btreeset_encoding_is_order_independent() {
        let a: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        let b: BTreeSet<u32> = [2, 3, 1].into_iter().collect();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut bytes = Vec::new();
        vec![0xffu8, 0xfe].encode(&mut bytes);
        assert!(matches!(
            String::from_bytes(&bytes),
            Err(DecodeError::Invalid(_))
        ));
    }
}

//! Public-key signatures for SCP envelopes and transactions.
//!
//! Production Stellar signs envelopes and transactions with ed25519. This
//! workspace has no external crypto dependencies, so we substitute a
//! **structurally faithful Schnorr signature at toy parameters** (see
//! `DESIGN.md`, substitutions): key generation, signing, and public
//! verification all work exactly as in a production scheme, over the
//! multiplicative group of a 62-bit safe prime. The group is far too small
//! to be secure against a real attacker, but the protocol code paths —
//! envelope signing, signature checks on receipt, multisig weight
//! accumulation — are identical to what a production scheme would exercise,
//! and the API is swap-in compatible.
//!
//! Scheme (Fiat–Shamir Schnorr):
//! * parameters: safe prime `p = 2q + 1`, generator `g` of the order-`q`
//!   subgroup;
//! * secret key `x ∈ [1, q)`, public key `y = g^x mod p`;
//! * sign(m): pick nonce `k` (derived deterministically from the secret key
//!   and message, RFC 6979-style), `r = g^k`, `e = H(r ∥ y ∥ m) mod q`,
//!   `s = k + x·e mod q`; signature is `(e, s)`;
//! * verify: `r' = g^s · y^{-e}`, accept iff `e == H(r' ∥ y ∥ m) mod q`.

use crate::codec::{Decode, DecodeError, Encode};
use crate::hash_concat;
use rand::Rng;

/// Safe prime modulus `p = 2q + 1` (62 bits).
pub const P: u64 = 0x3fff_ffff_ffff_d6bb;
/// Prime group order `q = (p - 1) / 2`.
pub const Q: u64 = 0x1fff_ffff_ffff_eb5d;
/// Generator of the order-`q` subgroup (`g = 2² mod p`).
pub const G: u64 = 4;

/// Modular multiplication in `Z_p` via 128-bit intermediates.
fn mul_mod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Modular exponentiation `base^exp mod p` by square-and-multiply.
fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= P;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// A public verification key (a group element).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PublicKey(pub u64);

/// A secret signing key (an exponent in `[1, q)`).
///
/// Deliberately does not implement `Debug`/`Display` with its value, and is
/// not `Copy`, mirroring hygiene conventions for real key material.
#[derive(Clone)]
pub struct SecretKey(u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Fiat–Shamir challenge `e = H(r ∥ y ∥ m) mod q`.
    pub e: u64,
    /// Response `s = k + x·e mod q`.
    pub s: u64,
}

crate::impl_codec_struct!(Signature { e, s });

impl Encode for PublicKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for PublicKey {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(PublicKey(u64::decode(input)?))
    }
}

/// A signing keypair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a keypair from the given RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> KeyPair {
        let x = rng.gen_range(1..Q);
        KeyPair::from_secret_exponent(x)
    }

    /// Derives a keypair deterministically from a seed.
    ///
    /// Handy for reproducible simulations: node `i` of an experiment always
    /// gets the same identity.
    pub fn from_seed(seed: u64) -> KeyPair {
        let h = hash_concat(&[b"stellar-keypair-seed", &seed.to_be_bytes()]);
        let x = 1 + h.prefix_u64() % (Q - 1);
        KeyPair::from_secret_exponent(x)
    }

    fn from_secret_exponent(x: u64) -> KeyPair {
        debug_assert!((1..Q).contains(&x));
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(pow_mod(G, x)),
        }
    }

    /// Returns the public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `msg`, producing a publicly verifiable signature.
    ///
    /// The nonce is derived deterministically from the secret key and the
    /// message (RFC 6979 style), so signing is reproducible and never reuses
    /// a nonce across distinct messages.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let kd = hash_concat(&[b"nonce", &self.secret.0.to_be_bytes(), msg]);
        let k = 1 + kd.prefix_u64() % (Q - 1);
        let r = pow_mod(G, k);
        let e = challenge(r, self.public, msg);
        let s = (k as u128 + mul_mod_q(self.secret.0, e) as u128) % Q as u128;
        Signature { e, s: s as u64 }
    }
}

/// Multiplication modulo the group order `q`.
fn mul_mod_q(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % Q as u128) as u64
}

/// Fiat–Shamir challenge hash, reduced mod `q`.
fn challenge(r: u64, public: PublicKey, msg: &[u8]) -> u64 {
    let h = hash_concat(&[b"schnorr", &r.to_be_bytes(), &public.0.to_be_bytes(), msg]);
    h.prefix_u64() % Q
}

/// Verifies `sig` over `msg` under `public`.
pub fn verify(public: PublicKey, msg: &[u8], sig: &Signature) -> bool {
    if sig.e >= Q || sig.s >= Q || public.0 == 0 || public.0 >= P {
        return false;
    }
    // r' = g^s * y^(-e) = g^s * y^(q - e)  (y has order q).
    let y_neg_e = pow_mod(public.0, Q - sig.e % Q);
    let r = mul_mod(pow_mod(G, sig.s), y_neg_e);
    challenge(r, public, msg) == sig.e
}

/// Verifies `sig` over a precomputed 32-byte hash under `public`.
///
/// Identical to `verify(public, hash.as_bytes(), sig)` but spelled so hot
/// paths that already hold the transaction hash (memoized in the envelope)
/// don't re-borrow through a temporary slice at every call site.
pub fn verify_hash(public: PublicKey, hash: &crate::Hash256, sig: &Signature) -> bool {
    verify(public, hash.as_bytes(), sig)
}

/// Convenience wrapper: signs the hash of an encodable structure.
pub fn sign_xdr<T: Encode>(keys: &KeyPair, value: &T) -> Signature {
    keys.sign(crate::hash_xdr(value).as_bytes())
}

/// Convenience wrapper: verifies a signature over the hash of a structure.
pub fn verify_xdr<T: Encode>(public: PublicKey, value: &T, sig: &Signature) -> bool {
    verify(public, crate::hash_xdr(value).as_bytes(), sig)
}

/// Deterministic Miller–Rabin primality check for `u64`.
///
/// With the witness set below, the test is *deterministic* (not
/// probabilistic) for all 64-bit integers; it backs the parameter
/// self-checks in this module's tests.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == small {
            return true;
        }
        if n.is_multiple_of(small) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_n(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = ((x as u128 * x as u128) % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn pow_mod_n(mut base: u64, mut exp: u64, n: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= n;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = ((acc as u128 * base as u128) % n as u128) as u64;
        }
        base = ((base as u128 * base as u128) % n as u128) as u64;
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameters_are_a_schnorr_group() {
        assert!(is_prime_u64(P), "p must be prime");
        assert!(is_prime_u64(Q), "q must be prime");
        assert_eq!(P, 2 * Q + 1, "p must be a safe prime");
        assert_eq!(pow_mod(G, Q), 1, "g must have order q");
        assert_ne!(G % P, 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let kp = KeyPair::generate(&mut rng);
            let msg = b"pay 100 USD to GABC...";
            let sig = kp.sign(msg);
            assert!(verify(kp.public(), msg, &sig));
        }
    }

    #[test]
    fn wrong_message_fails() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"message A");
        assert!(!verify(kp.public(), b"message B", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = KeyPair::from_seed(1);
        let kp2 = KeyPair::from_seed(2);
        let sig = kp1.sign(b"hello");
        assert!(!verify(kp2.public(), b"hello", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = KeyPair::from_seed(3);
        let mut sig = kp.sign(b"hello");
        sig.s ^= 1;
        assert!(!verify(kp.public(), b"hello", &sig));
        let mut sig2 = kp.sign(b"hello");
        sig2.e = (sig2.e + 1) % Q;
        assert!(!verify(kp.public(), b"hello", &sig2));
    }

    #[test]
    fn out_of_range_signature_rejected() {
        let kp = KeyPair::from_seed(4);
        let sig = Signature { e: Q, s: 0 };
        assert!(!verify(kp.public(), b"x", &sig));
        assert!(!verify(PublicKey(0), b"x", &kp.sign(b"x")));
        assert!(!verify(PublicKey(P), b"x", &kp.sign(b"x")));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = KeyPair::from_seed(42);
        let b = KeyPair::from_seed(42);
        assert_eq!(a.public(), b.public());
        assert_eq!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn signing_is_deterministic_but_message_dependent() {
        let kp = KeyPair::from_seed(9);
        assert_eq!(kp.sign(b"m1"), kp.sign(b"m1"));
        assert_ne!(kp.sign(b"m1"), kp.sign(b"m2"));
    }

    #[test]
    fn signature_codec_roundtrip() {
        let kp = KeyPair::from_seed(11);
        let sig = kp.sign(b"encode me");
        let decoded = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(decoded, sig);
        assert!(verify(kp.public(), b"encode me", &decoded));
    }

    #[test]
    fn miller_rabin_sanity() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64(3));
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64(0));
        assert!(is_prime_u64(2_147_483_647)); // 2^31 - 1
        assert!(!is_prime_u64(2_147_483_647 * 2 + 1));
        // Carmichael number 561 = 3·11·17 must be rejected.
        assert!(!is_prime_u64(561));
    }
}

//! Cryptographic substrate for the Stellar reproduction.
//!
//! This crate provides everything the consensus and ledger layers need from
//! cryptography, implemented from scratch so the workspace has no external
//! crypto dependencies:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, validated against published vectors.
//!   Hashing is load-bearing in Stellar (bucket hashing, transaction-set
//!   hashes, leader selection), so it is implemented for real.
//! * [`sign`] — a structurally faithful Schnorr signature scheme at toy
//!   parameters standing in for ed25519 (see `DESIGN.md`, substitutions).
//! * [`codec`] — a deterministic binary encoding (in the spirit of XDR,
//!   which production `stellar-core` uses) so that hashes of structures are
//!   well-defined and identical across nodes.
//! * [`hex`] — hex encoding for display and test vectors.
//!
//! The central type is [`Hash256`], a 32-byte digest used pervasively as a
//! content address (ledger headers, buckets, transaction sets, values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod hex;
pub mod sha256;
pub mod sign;

use std::fmt;

/// A 256-bit digest, the universal content address in this workspace.
///
/// `Hash256` values are produced by [`sha256::sha256`] (directly or via
/// [`hash_xdr`]) and are ordered lexicographically, which the protocol uses
/// for deterministic tie-breaking (e.g. picking among candidate transaction
/// sets with equal operation counts and fees).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash, used as the genesis "previous ledger" link.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 8 bytes as a big-endian integer.
    ///
    /// Used for hash-based tie-breaking and for mapping digests into numeric
    /// ranges (leader priorities).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes([
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5], self.0[6], self.0[7],
        ])
    }

    /// Renders the full digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Parses a 64-character hex string into a digest.
    ///
    /// Returns `None` if the input is not exactly 32 bytes of valid hex.
    pub fn from_hex(s: &str) -> Option<Hash256> {
        let bytes = hex::decode(s)?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Hash256(arr))
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show an 8-hex-char prefix; full digests are noisy in logs.
        write!(f, "Hash256({}…)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Hashes the deterministic encoding of any [`codec::Encode`] value.
///
/// This is the workspace's canonical "hash of a structure" operation,
/// mirroring `stellar-core`'s hash-of-XDR convention.
pub fn hash_xdr<T: codec::Encode + ?Sized>(value: &T) -> Hash256 {
    let mut buf = Vec::with_capacity(128);
    value.encode(&mut buf);
    sha256::sha256(&buf)
}

/// Hashes the concatenation of several byte strings, each length-prefixed.
///
/// Length prefixes make the combination injective (no ambiguity between
/// `("ab","c")` and `("a","bc")`).
pub fn hash_concat(parts: &[&[u8]]) -> Hash256 {
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(&(p.len() as u64).to_be_bytes());
        buf.extend_from_slice(p);
    }
    sha256::sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash256_hex_roundtrip() {
        let h = sha256::sha256(b"roundtrip");
        let s = h.to_hex();
        assert_eq!(Hash256::from_hex(&s), Some(h));
    }

    #[test]
    fn hash256_from_hex_rejects_bad_input() {
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex("abcd"), None); // too short
        let long = "ab".repeat(33);
        assert_eq!(Hash256::from_hex(&long), None); // too long
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut b = [0u8; 32];
        b[0] = 0x01;
        b[7] = 0x02;
        assert_eq!(Hash256(b).prefix_u64(), 0x0100_0000_0000_0002);
    }

    #[test]
    fn hash_concat_is_injective_on_boundaries() {
        let a = hash_concat(&[b"ab", b"c"]);
        let b = hash_concat(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_hash_is_all_zeroes() {
        assert_eq!(Hash256::ZERO.as_bytes(), &[0u8; 32]);
    }
}

//! Quality-tier quorum-set synthesis (paper §6.1, Fig. 6).
//!
//! After the 2019 incident, Stellar replaced hand-written nested quorum
//! sets with a mechanical synthesis: operators group validators by
//! *organization* and label each organization with a *quality*
//! (`Critical`, `High`, `Medium`, or `Low`). The synthesized structure is:
//!
//! * each organization becomes an inner set with a **51%** threshold over
//!   its own validators;
//! * organizations of one quality form a group with a **67%** threshold
//!   (**100%** for `Critical`);
//! * each group is one entry in the next-higher-quality group.
//!
//! Organizations at `High` and above are expected to publish history
//! archives (§6.1); that expectation is surfaced as a validation warning
//! here rather than enforced.

use stellar_scp::{NodeId, QuorumSet};

/// Trust classification of an organization (§6.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Quality {
    /// Lowest tier: grouped under medium with 67% threshold.
    Low,
    /// Middle tier.
    Medium,
    /// High tier; expected to publish history archives.
    High,
    /// Critical tier: 100% threshold — all critical entries required.
    Critical,
}

/// One organization: a named group of validators with a quality label.
#[derive(Clone, Debug)]
pub struct OrgConfig {
    /// Display name (e.g. "SDF", "SatoshiPay").
    pub name: String,
    /// The organization's validators.
    pub validators: Vec<NodeId>,
    /// Trust classification.
    pub quality: Quality,
    /// Whether the org publishes history archives.
    pub publishes_history: bool,
}

impl OrgConfig {
    /// Convenience constructor.
    pub fn new(name: &str, validators: Vec<NodeId>, quality: Quality) -> OrgConfig {
        OrgConfig {
            name: name.to_string(),
            validators,
            quality,
            publishes_history: quality >= Quality::High,
        }
    }

    /// The 51%-threshold inner set representing this organization.
    pub fn to_quorum_set(&self) -> QuorumSet {
        QuorumSet::majority(self.validators.clone())
    }
}

/// A warning produced while synthesizing a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigWarning {
    /// A High/Critical org does not publish history archives (§6.1).
    MissingHistoryArchive(String),
    /// An org has fewer than 3 validators, so losing one node halts it.
    TooFewValidators(String, usize),
}

/// Synthesizes the nested quorum set of Fig. 6 from org configurations.
///
/// Returns the quorum set plus any configuration warnings. Orgs are grouped
/// by quality; each group is an entry of the group one tier up; the
/// top-most non-empty tier is the root.
///
/// # Panics
///
/// Panics if `orgs` is empty or any org has no validators (meaningless
/// configurations that indicate caller bugs).
pub fn synthesize_quorum_set(orgs: &[OrgConfig]) -> (QuorumSet, Vec<ConfigWarning>) {
    assert!(!orgs.is_empty(), "no organizations configured");
    let mut warnings = Vec::new();
    for o in orgs {
        assert!(!o.validators.is_empty(), "org {} has no validators", o.name);
        if o.quality >= Quality::High && !o.publishes_history {
            warnings.push(ConfigWarning::MissingHistoryArchive(o.name.clone()));
        }
        if o.validators.len() < 3 {
            warnings.push(ConfigWarning::TooFewValidators(
                o.name.clone(),
                o.validators.len(),
            ));
        }
    }

    // Build from the bottom tier upward; each tier's group becomes an
    // entry in the tier above.
    let mut carried: Option<QuorumSet> = None;
    for quality in [
        Quality::Low,
        Quality::Medium,
        Quality::High,
        Quality::Critical,
    ] {
        let mut entries: Vec<QuorumSet> = orgs
            .iter()
            .filter(|o| o.quality == quality)
            .map(OrgConfig::to_quorum_set)
            .collect();
        if let Some(lower) = carried.take() {
            if entries.is_empty() {
                // Nothing at this tier: pass the lower group through.
                carried = Some(lower);
                continue;
            }
            entries.push(lower);
        }
        if entries.is_empty() {
            continue;
        }
        let n = entries.len() as u32;
        let threshold = match quality {
            // 100% of critical entries; 67% elsewhere (rounded up).
            Quality::Critical => n,
            _ => (2 * n).div_ceil(3).max(1),
        };
        carried = Some(QuorumSet {
            threshold,
            validators: vec![],
            inner: entries,
        });
    }
    let qset = carried.expect("at least one tier is non-empty");
    (qset, warnings)
}

/// Synthesizes per-node quorum sets for every validator of every org: each
/// validator gets the same Fig. 6 structure (production behaviour — the
/// synthesized configuration is shared).
pub fn synthesize_all(orgs: &[OrgConfig]) -> Vec<(NodeId, QuorumSet)> {
    let (qset, _) = synthesize_quorum_set(orgs);
    orgs.iter()
        .flat_map(|o| o.validators.iter().copied())
        .map(|v| (v, qset.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::{enjoys_quorum_intersection, FbaSystem};

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn three_org_setup(q: Quality) -> Vec<OrgConfig> {
        vec![
            OrgConfig::new("a", ids(0..3), q),
            OrgConfig::new("b", ids(3..6), q),
            OrgConfig::new("c", ids(6..9), q),
        ]
    }

    #[test]
    fn single_tier_uses_67_percent() {
        let (qset, _) = synthesize_quorum_set(&three_org_setup(Quality::High));
        assert_eq!(qset.inner.len(), 3);
        assert_eq!(qset.threshold, 2); // ceil(2*3/3) = 2
        for org in &qset.inner {
            assert_eq!(org.threshold, 2); // majority of 3
        }
    }

    #[test]
    fn critical_tier_uses_100_percent() {
        let (qset, _) = synthesize_quorum_set(&three_org_setup(Quality::Critical));
        assert_eq!(qset.threshold, 3);
    }

    #[test]
    fn tiers_nest_downward() {
        let mut orgs = three_org_setup(Quality::High);
        orgs.push(OrgConfig::new("d", ids(9..12), Quality::Medium));
        orgs.push(OrgConfig::new("e", ids(12..15), Quality::Medium));
        let (qset, _) = synthesize_quorum_set(&orgs);
        // Top level: 3 high orgs + 1 medium group = 4 entries.
        assert_eq!(qset.inner.len(), 4);
        assert_eq!(qset.threshold, 3); // ceil(8/3) = 3
        let medium_group = qset
            .inner
            .iter()
            .find(|e| e.inner.len() == 2)
            .expect("medium group nested");
        assert_eq!(medium_group.threshold, 2);
    }

    #[test]
    fn synthesized_config_enjoys_intersection() {
        let orgs = three_org_setup(Quality::High);
        let sys = FbaSystem::new(synthesize_all(&orgs));
        assert!(enjoys_quorum_intersection(&sys));
    }

    #[test]
    fn warnings_for_risky_orgs() {
        let mut org = OrgConfig::new("tiny", ids(0..2), Quality::High);
        org.publishes_history = false;
        let (_, warnings) =
            synthesize_quorum_set(&[org, OrgConfig::new("b", ids(3..6), Quality::High)]);
        assert!(warnings.contains(&ConfigWarning::MissingHistoryArchive("tiny".into())));
        assert!(warnings.contains(&ConfigWarning::TooFewValidators("tiny".into(), 2)));
    }

    #[test]
    fn empty_tier_passthrough() {
        // Only low-tier orgs: the low group is the root.
        let orgs = three_org_setup(Quality::Low);
        let (qset, _) = synthesize_quorum_set(&orgs);
        assert_eq!(qset.inner.len(), 3);
        assert_eq!(qset.threshold, 2);
    }

    #[test]
    fn is_well_formed() {
        let mut orgs = three_org_setup(Quality::Critical);
        orgs.extend(three_org_setup(Quality::Medium).into_iter().map(|mut o| {
            o.name += "-m";
            o.validators = o.validators.iter().map(|v| NodeId(v.0 + 20)).collect();
            o
        }));
        let (qset, _) = synthesize_quorum_set(&orgs);
        assert!(qset.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "no organizations")]
    fn empty_orgs_panics() {
        let _ = synthesize_quorum_set(&[]);
    }
}

//! Criticality detection (paper §6.2.2): warn *before* divergence.
//!
//! "Detecting that the network admits disjoint quorums is a step in the
//! right direction, but flags the danger uncomfortably late. … We therefore
//! extended the quorum-intersection checker to detect a condition we call
//! criticality: when the current collective configuration is one
//! misconfiguration away from a state that admits disjoint quorums."
//!
//! The checker simulates, for each organization in turn, a worst-case
//! misconfiguration — the organization's validators declaring themselves a
//! self-sufficient quorum and dropping every outside dependency — then
//! re-runs the inner intersection checker. Any organization whose simulated
//! misconfiguration splits the network is reported.

use crate::intersection::{find_disjoint_quorums, FbaSystem, IntersectionResult};
use std::collections::BTreeMap;
use stellar_scp::{NodeId, QuorumSet};

/// A grouping of nodes into organizations for criticality analysis.
pub type OrgMap = BTreeMap<String, Vec<NodeId>>;

/// Result of a criticality scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalityReport {
    /// Whether the configuration as-is already admits disjoint quorums.
    pub already_split: bool,
    /// Organizations whose single worst-case misconfiguration would admit
    /// disjoint quorums.
    pub critical_orgs: Vec<String>,
}

impl CriticalityReport {
    /// True when no org can single-handedly split the network.
    pub fn is_safe(&self) -> bool {
        !self.already_split && self.critical_orgs.is_empty()
    }
}

/// Deletes a set of (worst-case misconfigured / Byzantine) nodes from a
/// quorum set: slice entries they occupied become free for everyone.
///
/// This is the FBA "delete" operation: a node whose behaviour is arbitrary
/// can lend its vote to *both* sides of a split, which is modeled by
/// removing it from every slice and lowering the threshold accordingly.
/// An inner set whose threshold drops to zero is unconditionally satisfied
/// and likewise lowers its parent's threshold.
///
/// For well-formed inputs the residual threshold never exceeds the
/// remaining entry count. Malformed inputs (hand-written or cascade-
/// mangled sets whose threshold already exceeded their entries) would
/// leave an unsatisfiable residue that poisons every analysis downstream;
/// the threshold is deterministically clamped to the surviving entry
/// count instead, making deletion idempotent and total.
pub fn delete_nodes(q: &QuorumSet, bad: &std::collections::BTreeSet<NodeId>) -> QuorumSet {
    let mut threshold = i64::from(q.threshold);
    let mut validators = Vec::new();
    for v in &q.validators {
        if bad.contains(v) {
            threshold -= 1;
        } else {
            validators.push(*v);
        }
    }
    let mut inner = Vec::new();
    for i in &q.inner {
        let di = delete_nodes(i, bad);
        if di.threshold == 0 {
            threshold -= 1;
        } else {
            inner.push(di);
        }
    }
    let remaining = (validators.len() + inner.len()) as i64;
    QuorumSet {
        threshold: threshold.clamp(0, remaining) as u32,
        validators,
        inner,
    }
}

/// Scans the system for criticality (§6.2.2).
///
/// For each org in turn, its validators are given worst-case behaviour —
/// they are deleted from every quorum set (free votes for any side) and
/// removed from the system — and the intersection checker re-runs on what
/// remains. Orgs whose simulated misconfiguration admits disjoint quorums
/// are reported. The base configuration is also checked as-is.
pub fn check_criticality(sys: &FbaSystem, orgs: &OrgMap) -> CriticalityReport {
    let base = find_disjoint_quorums(sys);
    let already_split = matches!(base, IntersectionResult::Disjoint(_, _));
    let mut critical_orgs = Vec::new();
    for (name, members) in orgs {
        if members.is_empty() {
            continue;
        }
        let bad: std::collections::BTreeSet<NodeId> = members.iter().copied().collect();
        let sim = FbaSystem::new(
            sys.nodes
                .iter()
                .filter(|(n, _)| !bad.contains(n))
                .map(|(n, q)| (*n, delete_nodes(q, &bad))),
        );
        if matches!(
            find_disjoint_quorums(&sim),
            IntersectionResult::Disjoint(_, _)
        ) {
            critical_orgs.push(name.clone());
        }
    }
    CriticalityReport {
        already_split,
        critical_orgs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiers::{synthesize_all, OrgConfig, Quality};

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    fn org_map(orgs: &[OrgConfig]) -> OrgMap {
        orgs.iter()
            .map(|o| (o.name.clone(), o.validators.clone()))
            .collect()
    }

    #[test]
    fn five_org_tiered_config_is_not_critical() {
        // Five 3-validator orgs at 67%: one org misbehaving cannot split
        // the remaining 4-of-5 requirement.
        let orgs: Vec<OrgConfig> = (0..5)
            .map(|i| OrgConfig::new(&format!("org{i}"), ids(i * 3..i * 3 + 3), Quality::High))
            .collect();
        let sys = FbaSystem::new(synthesize_all(&orgs));
        let report = check_criticality(&sys, &org_map(&orgs));
        assert!(!report.already_split);
        assert!(
            report.is_safe(),
            "critical orgs: {:?}",
            report.critical_orgs
        );
    }

    #[test]
    fn two_org_config_is_critical() {
        // With only two orgs at 67% (= both required), either org
        // misconfiguring to self-quorum splits the network: the rogue org
        // forms a quorum alone while… actually the other org still needs
        // the rogue one, so check what the checker says — the rogue org's
        // self-quorum is disjoint from nothing unless the healthy org can
        // also form a quorum. Use three orgs at threshold 2 so the healthy
        // majority remains a quorum.
        let orgs: Vec<OrgConfig> = (0..3)
            .map(|i| OrgConfig::new(&format!("org{i}"), ids(i * 3..i * 3 + 3), Quality::High))
            .collect();
        let sys = FbaSystem::new(synthesize_all(&orgs));
        // Base config: top threshold 2-of-3 orgs ⇒ two disjoint "2 org"
        // coalitions cannot exist (they'd share an org), so base is safe…
        let report = check_criticality(&sys, &org_map(&orgs));
        assert!(!report.already_split);
        // …but any single org going rogue yields: rogue-org self quorum
        // (1 node) vs the other two orgs (a 2-of-3 quorum that includes
        // the rogue org? no — the other two orgs' slices need 2 org
        // entries, satisfiable by themselves). These are disjoint.
        assert_eq!(report.critical_orgs.len(), 3, "{report:?}");
    }

    #[test]
    fn already_split_reported() {
        let half = QuorumSet::threshold_of(2, ids(0..4));
        let sys = FbaSystem::new((0..4).map(|n| (NodeId(n), half.clone())));
        let report = check_criticality(&sys, &OrgMap::new());
        assert!(report.already_split);
    }

    #[test]
    fn delete_clamps_overweight_thresholds() {
        use std::collections::BTreeSet;
        // Malformed set: threshold 4 over 3 validators. Deleting one node
        // must not leave threshold 3 over 2 entries (unsatisfiable); the
        // clamp caps it at the surviving entry count.
        let q = QuorumSet {
            threshold: 4,
            validators: ids(0..3),
            inner: vec![],
        };
        let bad: BTreeSet<NodeId> = [NodeId(0)].into();
        let d = delete_nodes(&q, &bad);
        assert_eq!(d.validators.len(), 2);
        assert_eq!(d.threshold, 2, "clamped to remaining entries: {d:?}");
        // Idempotent: re-deleting the same node changes nothing.
        assert_eq!(delete_nodes(&d, &bad), d);
        // Nested malformed inner sets clamp too (and a clamped-to-zero
        // inner collapses into its parent like any satisfied entry).
        let nested = QuorumSet {
            threshold: 2,
            validators: ids(10..11),
            inner: vec![QuorumSet {
                threshold: 3,
                validators: ids(0..2),
                inner: vec![],
            }],
        };
        let d = delete_nodes(&nested, &bad);
        let inner = &d.inner[0];
        assert!(
            inner.threshold as usize <= inner.validators.len() + inner.inner.len(),
            "inner set left unsatisfiable: {d:?}"
        );
    }

    #[test]
    fn empty_orgs_are_skipped() {
        let orgs: Vec<OrgConfig> = (0..5)
            .map(|i| OrgConfig::new(&format!("org{i}"), ids(i * 3..i * 3 + 3), Quality::High))
            .collect();
        let sys = FbaSystem::new(synthesize_all(&orgs));
        let mut map = org_map(&orgs);
        map.insert("ghost".into(), vec![]);
        let report = check_criticality(&sys, &map);
        assert!(report.is_safe());
    }
}

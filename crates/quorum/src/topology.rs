//! Deterministic, seeded FBAS topology generation at internet scale.
//!
//! The production network the paper measures has tens of organizations;
//! analyzing the safety story at hundreds requires synthetic federations.
//! Following the randomized FBAS families of Gaul/Khoffi/Liesen/Stüber
//! (PAPERS.md), this module generates three families, all layered on the
//! [`crate::tiers`] organization model:
//!
//! * **Uniform** — the Fig. 6 synthesized configuration at scale: every
//!   validator shares one mechanically synthesized quorum set over all
//!   orgs. Symmetric, so the intersection checker decides it in closed
//!   form regardless of size.
//! * **TierWeighted** — a small top tier of mutually trusting orgs, a
//!   middle tier trusting the whole top tier plus sampled mid-tier peers,
//!   and a broad low tier trusting the top tier plus sampled mid-tier
//!   orgs. Heterogeneous per-org quorum sets; the quorum-bearing SCC is
//!   the top tier, which is what keeps 500-org instances checkable.
//! * **ScaleFree** — preferential attachment (Barabási–Albert style): a
//!   seed clique of orgs trusts each other, every later org trusts a set
//!   of earlier orgs sampled proportionally to how trusted they already
//!   are. Reproduces the centralization collapse Kim/Kwon/Kim observe.
//!
//! Generation is fully deterministic in the spec (family, sizes, seed):
//! identical specs yield byte-identical systems, which the cascade bench
//! twin-run gates rely on.

use crate::criticality::OrgMap;
use crate::intersection::FbaSystem;
use crate::tiers::{synthesize_all, ConfigWarning, OrgConfig, Quality};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use stellar_scp::{NodeId, QuorumSet};

/// Which randomized FBAS family to generate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyFamily {
    /// Fig. 6 synthesized configuration at scale (symmetric).
    Uniform,
    /// Small trusted top tier, sampled mid/low-tier trust (heterogeneous).
    TierWeighted,
    /// Preferential-attachment trust graph (heterogeneous, centralized).
    ScaleFree,
}

impl TopologyFamily {
    /// Stable lowercase label for reports and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyFamily::Uniform => "uniform",
            TopologyFamily::TierWeighted => "tier_weighted",
            TopologyFamily::ScaleFree => "scale_free",
        }
    }
}

/// A complete description of one generated federation.
#[derive(Clone, Copy, Debug)]
pub struct TopologySpec {
    /// Which family to generate.
    pub family: TopologyFamily,
    /// Number of organizations (≥ 3).
    pub n_orgs: usize,
    /// Validators per organization (≥ 1).
    pub validators_per_org: usize,
    /// Seed for all sampling decisions.
    pub seed: u64,
}

impl TopologySpec {
    /// Convenience constructor.
    pub fn new(
        family: TopologyFamily,
        n_orgs: usize,
        validators_per_org: usize,
        seed: u64,
    ) -> TopologySpec {
        TopologySpec {
            family,
            n_orgs,
            validators_per_org,
            seed,
        }
    }
}

/// The output of [`generate`]: orgs, per-node quorum sets, and the org
/// membership map the criticality/cascade analyses consume.
#[derive(Clone, Debug)]
pub struct GeneratedTopology {
    /// The spec this was generated from.
    pub spec: TopologySpec,
    /// Organizations in generation order (`org-0000`, `org-0001`, …).
    pub orgs: Vec<OrgConfig>,
    /// The per-node quorum-set system.
    pub system: FbaSystem,
    /// Synthesis warnings (Uniform family only; sampled families build
    /// their quorum sets directly).
    pub warnings: Vec<ConfigWarning>,
}

impl GeneratedTopology {
    /// Org-name → validator list, for `criticality`/cascade analyses.
    pub fn org_map(&self) -> OrgMap {
        self.orgs
            .iter()
            .map(|o| (o.name.clone(), o.validators.clone()))
            .collect()
    }

    /// Total validator count.
    pub fn n_validators(&self) -> usize {
        self.orgs.iter().map(|o| o.validators.len()).sum()
    }
}

/// Tier sizes for the weighted family: a top tier of `max(4, n/25)` orgs
/// (capped at 12 so the search domain stays small even at 500+ orgs), a
/// middle tier of ~30%, the rest low.
fn tier_sizes(n_orgs: usize) -> (usize, usize) {
    let top = (n_orgs / 25).clamp(4, 12).min(n_orgs);
    let mid = ((n_orgs - top) * 3 / 10).min(n_orgs - top);
    (top, mid)
}

/// Generates a federation from a spec. Deterministic: identical specs
/// yield identical outputs.
///
/// # Panics
///
/// Panics on degenerate specs (`n_orgs < 3` or `validators_per_org < 1`).
pub fn generate(spec: &TopologySpec) -> GeneratedTopology {
    assert!(spec.n_orgs >= 3, "need at least 3 orgs");
    assert!(spec.validators_per_org >= 1, "orgs need validators");
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x70b0_0106_0000_0000);
    let vpo = spec.validators_per_org;
    let (top, mid) = tier_sizes(spec.n_orgs);

    // Org i owns validators [i·vpo, (i+1)·vpo).
    let quality_of = |i: usize| -> Quality {
        if i < top {
            Quality::High
        } else if i < top + mid {
            Quality::Medium
        } else {
            Quality::Low
        }
    };
    let orgs: Vec<OrgConfig> = (0..spec.n_orgs)
        .map(|i| {
            let validators: Vec<NodeId> = (0..vpo).map(|v| NodeId((i * vpo + v) as u32)).collect();
            OrgConfig::new(&format!("org-{i:04}"), validators, quality_of(i))
        })
        .collect();

    let (system, warnings) = match spec.family {
        TopologyFamily::Uniform => {
            let (_, warnings) = crate::tiers::synthesize_quorum_set(&orgs);
            (FbaSystem::new(synthesize_all(&orgs)), warnings)
        }
        TopologyFamily::TierWeighted => {
            (tier_weighted_system(&orgs, top, mid, &mut rng), Vec::new())
        }
        TopologyFamily::ScaleFree => (scale_free_system(&orgs, &mut rng), Vec::new()),
    };

    GeneratedTopology {
        spec: *spec,
        orgs,
        system,
        warnings,
    }
}

/// 67%-threshold quorum set over the majority inner sets of `trusted`.
fn org_trust_qset(orgs: &[OrgConfig], trusted: &[usize]) -> QuorumSet {
    let inner: Vec<QuorumSet> = trusted.iter().map(|&i| orgs[i].to_quorum_set()).collect();
    let n = inner.len() as u32;
    QuorumSet {
        threshold: (2 * n).div_ceil(3).max(1),
        validators: vec![],
        inner,
    }
}

/// Samples `k` distinct members of `pool` (order-insensitive result,
/// deterministic in the rng state).
fn sample_distinct(pool: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut shuffled = pool.to_vec();
    shuffled.shuffle(rng);
    shuffled.truncate(k.min(pool.len()));
    shuffled.sort_unstable();
    shuffled
}

fn tier_weighted_system(orgs: &[OrgConfig], top: usize, mid: usize, rng: &mut StdRng) -> FbaSystem {
    let n = orgs.len();
    let top_orgs: Vec<usize> = (0..top).collect();
    let mid_orgs: Vec<usize> = (top..top + mid).collect();
    let mut per_org_qset: Vec<QuorumSet> = Vec::with_capacity(n);
    for i in 0..n {
        let trusted: Vec<usize> = if i < top {
            // Top tier: mutual full trust (including self).
            top_orgs.clone()
        } else if i < top + mid {
            // Mid tier: whole top tier + 2–4 sampled mid peers + self.
            let peers: Vec<usize> = mid_orgs.iter().copied().filter(|&p| p != i).collect();
            let k = if peers.is_empty() {
                0
            } else {
                rng.gen_range(2usize..=4).min(peers.len())
            };
            let mut t = top_orgs.clone();
            t.extend(sample_distinct(&peers, k, rng));
            t.push(i);
            t.sort_unstable();
            t
        } else {
            // Low tier: whole top tier + 1–3 sampled mid orgs + self.
            let k = if mid_orgs.is_empty() {
                0
            } else {
                rng.gen_range(1usize..=3).min(mid_orgs.len())
            };
            let mut t = top_orgs.clone();
            t.extend(sample_distinct(&mid_orgs, k, rng));
            t.push(i);
            t.sort_unstable();
            t
        };
        per_org_qset.push(org_trust_qset(orgs, &trusted));
    }
    FbaSystem::new(orgs.iter().enumerate().flat_map(|(i, o)| {
        let q = per_org_qset[i].clone();
        o.validators.iter().map(move |v| (*v, q.clone()))
    }))
}

fn scale_free_system(orgs: &[OrgConfig], rng: &mut StdRng) -> FbaSystem {
    let n = orgs.len();
    let m0 = 4.min(n); // seed clique size
    let attach = 3usize; // trust edges per newcomer
                         // trust_count[i] = how many orgs include org i in their slices
                         // (preferential-attachment weight).
    let mut trust_count = vec![1u64; n];
    let mut trusted_sets: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let trusted: Vec<usize> = if i < m0 {
            (0..m0).collect()
        } else {
            // Weighted sampling without replacement over orgs [0, i).
            let mut picked: Vec<usize> = vec![i]; // always trust self
            let mut weights: Vec<u64> = (0..i).map(|j| trust_count[j]).collect();
            for _ in 0..attach.min(i) {
                let total: u64 = weights.iter().sum();
                if total == 0 {
                    break;
                }
                let mut roll = rng.gen_range(0u64..total);
                let mut choice = 0usize;
                for (j, w) in weights.iter().enumerate() {
                    if roll < *w {
                        choice = j;
                        break;
                    }
                    roll -= *w;
                }
                picked.push(choice);
                weights[choice] = 0;
            }
            picked.sort_unstable();
            picked
        };
        for &t in &trusted {
            trust_count[t] += 1;
        }
        trusted_sets.push(trusted);
    }
    let per_org_qset: Vec<QuorumSet> = trusted_sets
        .iter()
        .map(|t| org_trust_qset(orgs, t))
        .collect();
    FbaSystem::new(orgs.iter().enumerate().flat_map(|(i, o)| {
        let q = per_org_qset[i].clone();
        o.validators.iter().map(move |v| (*v, q.clone()))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::{find_disjoint_quorums_with, CheckerOptions, IntersectionResult};

    fn spec(family: TopologyFamily, n: usize, seed: u64) -> TopologySpec {
        TopologySpec::new(family, n, 3, seed)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in [
            TopologyFamily::Uniform,
            TopologyFamily::TierWeighted,
            TopologyFamily::ScaleFree,
        ] {
            let a = generate(&spec(family, 60, 7));
            let b = generate(&spec(family, 60, 7));
            assert_eq!(a.system.nodes, b.system.nodes, "{family:?}");
            let c = generate(&spec(family, 60, 8));
            if family != TopologyFamily::Uniform {
                assert_ne!(
                    a.system.nodes, c.system.nodes,
                    "{family:?} must vary with the seed"
                );
            }
        }
    }

    #[test]
    fn all_families_enjoy_intersection_at_modest_scale() {
        for family in [
            TopologyFamily::Uniform,
            TopologyFamily::TierWeighted,
            TopologyFamily::ScaleFree,
        ] {
            let topo = generate(&spec(family, 40, 11));
            let (res, stats) = find_disjoint_quorums_with(&topo.system, &CheckerOptions::default());
            assert_eq!(
                res,
                IntersectionResult::Intersecting,
                "{family:?}: {stats:?}"
            );
        }
    }

    #[test]
    fn tier_weighted_search_domain_is_the_top_tier() {
        let topo = generate(&spec(TopologyFamily::TierWeighted, 100, 3));
        let (top, _) = tier_sizes(100);
        let (res, stats) = find_disjoint_quorums_with(&topo.system, &CheckerOptions::default());
        assert_eq!(res, IntersectionResult::Intersecting);
        assert!(
            stats.domain_nodes <= top * 3,
            "domain {} should shrink to the top tier ({} orgs)",
            stats.domain_nodes,
            top
        );
    }

    #[test]
    fn uniform_family_hits_the_symmetric_fast_path() {
        let topo = generate(&spec(TopologyFamily::Uniform, 200, 1));
        let (res, stats) = find_disjoint_quorums_with(&topo.system, &CheckerOptions::default());
        assert_eq!(res, IntersectionResult::Intersecting);
        assert!(stats.symmetric);
        assert_eq!(stats.branches, 0);
    }

    #[test]
    fn five_hundred_org_tier_weighted_checks_fast() {
        let topo = generate(&spec(TopologyFamily::TierWeighted, 500, 42));
        assert_eq!(topo.n_validators(), 1500);
        let start = std::time::Instant::now();
        let (res, stats) = find_disjoint_quorums_with(&topo.system, &CheckerOptions::default());
        assert_eq!(res, IntersectionResult::Intersecting, "{stats:?}");
        assert!(
            start.elapsed().as_secs() < 60,
            "500-org check too slow: {:?} ({stats:?})",
            start.elapsed()
        );
    }

    #[test]
    fn org_map_matches_org_configs() {
        let topo = generate(&spec(TopologyFamily::TierWeighted, 20, 5));
        let map = topo.org_map();
        assert_eq!(map.len(), 20);
        assert_eq!(map["org-0000"], topo.orgs[0].validators);
    }
}
